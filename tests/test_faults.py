"""Fault-tolerance tests: the executor's three recovery paths (worker
exception, worker death, per-job hang) in serial and multi-worker modes,
bounded retries, cached-through quarantine decisions, crash-consistency of
the result cache, and the adopters' skipped-job / ``infra_error`` surfacing
-- all driven by the deterministic :class:`repro.runtime.FaultPlan`."""

import os
import warnings
from pathlib import Path

import pytest

from repro.runtime import (
    FAULT_CRASH,
    FAULT_HANG,
    FAULT_RAISE,
    MAX_CHUNKSIZE,
    FaultPlan,
    InjectedFault,
    JobTimeoutError,
    ResultCache,
    WorkerCrashError,
    auto_chunksize,
    content_key,
    default_workers,
    run_jobs,
)
from repro.runtime.faults import PHASE_TIMEOUT, PHASE_WORKER, PHASE_WORKER_DEATH

JOBS = [f"job_{i}" for i in range(8)]


# ---------------------------------------------------------------------- #
# worker functions (module-level so they pickle)
# ---------------------------------------------------------------------- #


def stamp(job):
    return {"job": job, "ok": True}


def record_and_stamp(job, context):
    """Leaves one marker file per executed job (to prove warm runs skip work)."""
    Path(context["dir"], f"{job}.ran").write_text("1")
    return {"job": job}


def raise_on_job_2(job):
    if job == "job_2":
        raise ValueError(f"boom {job}")
    return stamp(job)


def corpus_job_name(job):
    """Fault key for corpus build jobs: ``(family, params, name, seed)``."""
    return job[2]


def assert_unaffected_jobs_match(outcomes, clean, faulted: set[str]):
    """Quarantine must be surgical: exactly ``faulted`` fails, the rest are
    byte-identical to the fault-free run."""
    assert len(outcomes) == len(clean)
    for job, outcome, expected in zip(JOBS, outcomes, clean):
        if job in faulted:
            assert not outcome.ok and outcome.result is None
            assert outcome.failure is not None
        else:
            assert outcome.ok and outcome.failure is None
            assert outcome.result == expected


# ---------------------------------------------------------------------- #
# recovery path 1: the worker function raises
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("workers", [1, 4])
def test_quarantine_isolates_a_raised_exception(tmp_path, workers):
    plan = FaultPlan(tmp_path / "plan").inject("job_3", FAULT_RAISE)
    outcomes = run_jobs(
        JOBS, stamp, workers=workers, on_error="quarantine", fault_plan=plan
    )
    assert_unaffected_jobs_match(outcomes, run_jobs(JOBS, stamp), {"job_3"})
    failure = outcomes[3].failure
    assert failure.phase == PHASE_WORKER
    assert failure.exception_type == "InjectedFault"
    assert "job_3" in failure.message
    assert "InjectedFault" in failure.traceback
    assert outcomes[3].attempts == 1


# ---------------------------------------------------------------------- #
# recovery path 2: the worker process dies mid-job
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("workers,isolate", [(1, True), (3, False)])
def test_quarantine_survives_a_worker_crash(tmp_path, workers, isolate):
    plan = FaultPlan(tmp_path / "plan").inject("job_2", FAULT_CRASH)
    outcomes = run_jobs(
        JOBS,
        stamp,
        workers=workers,
        isolate=isolate,
        on_error="quarantine",
        fault_plan=plan,
    )
    assert_unaffected_jobs_match(outcomes, run_jobs(JOBS, stamp), {"job_2"})
    assert outcomes[2].failure.phase == PHASE_WORKER_DEATH
    assert outcomes[2].failure.exception_type == "WorkerCrashError"


# ---------------------------------------------------------------------- #
# recovery path 3: the job hangs past its timeout
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("workers", [1, 3])
def test_quarantine_reaps_a_hung_job(tmp_path, workers):
    plan = FaultPlan(tmp_path / "plan").inject("job_5", FAULT_HANG, hang_seconds=60.0)
    outcomes = run_jobs(
        JOBS,
        stamp,
        workers=workers,
        on_error="quarantine",
        timeout=0.5,
        fault_plan=plan,
    )
    assert_unaffected_jobs_match(outcomes, run_jobs(JOBS, stamp), {"job_5"})
    assert outcomes[5].failure.phase == PHASE_TIMEOUT
    assert outcomes[5].failure.exception_type == "JobTimeoutError"


# ---------------------------------------------------------------------- #
# bounded retries: flakes recover, hard faults are quarantined
# ---------------------------------------------------------------------- #


def test_flaky_raise_retries_to_an_identical_success(tmp_path):
    plan = FaultPlan(tmp_path / "plan").inject("job_1", FAULT_RAISE, times=2)
    outcomes = run_jobs(
        JOBS, stamp, on_error="quarantine", max_attempts=3, fault_plan=plan
    )
    assert all(outcome.ok for outcome in outcomes)
    # Retries never change a successful result's value.
    assert [outcome.result for outcome in outcomes] == run_jobs(JOBS, stamp)
    assert outcomes[1].attempts == 3
    assert all(o.attempts == 1 for i, o in enumerate(outcomes) if i != 1)


def test_flaky_raise_recovers_in_raise_mode_too(tmp_path):
    plan = FaultPlan(tmp_path / "plan").inject("job_1", FAULT_RAISE, times=1)
    results = run_jobs(JOBS, stamp, max_attempts=2, fault_plan=plan)
    assert results == run_jobs(JOBS, stamp)


def test_crash_then_succeed_recovers_across_a_pool_rebuild(tmp_path):
    plan = FaultPlan(tmp_path / "plan").inject("job_0", FAULT_CRASH, times=1)
    results = run_jobs(JOBS, stamp, workers=2, max_attempts=2, fault_plan=plan)
    assert results == run_jobs(JOBS, stamp)


def test_exhausted_retries_still_quarantine(tmp_path):
    plan = FaultPlan(tmp_path / "plan").inject("job_4", FAULT_RAISE)  # every invocation
    outcomes = run_jobs(
        JOBS, stamp, on_error="quarantine", max_attempts=3, fault_plan=plan
    )
    assert not outcomes[4].ok and outcomes[4].attempts == 3


# ---------------------------------------------------------------------- #
# raise mode: first exhausted failure aborts, with the right exception
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("workers", [1, 3])
def test_raise_mode_propagates_the_original_exception(workers):
    with pytest.raises(ValueError, match="boom job_2"):
        run_jobs(JOBS, raise_on_job_2, workers=workers)


def test_raise_mode_propagates_injected_faults(tmp_path):
    plan = FaultPlan(tmp_path / "plan").inject("job_0", FAULT_RAISE)
    with pytest.raises(InjectedFault):
        run_jobs(JOBS[:2], stamp, fault_plan=plan)


def test_raise_mode_surfaces_timeouts_and_crashes_as_typed_errors(tmp_path):
    hang = FaultPlan(tmp_path / "hang").inject("job_0", FAULT_HANG, hang_seconds=60.0)
    with pytest.raises(JobTimeoutError):
        run_jobs(JOBS[:2], stamp, timeout=0.4, fault_plan=hang)
    crash = FaultPlan(tmp_path / "crash").inject("job_0", FAULT_CRASH)
    with pytest.raises(WorkerCrashError):
        run_jobs(JOBS[:2], stamp, isolate=True, fault_plan=crash)


# ---------------------------------------------------------------------- #
# cached-through failures
# ---------------------------------------------------------------------- #


def test_quarantine_decisions_are_cached_through(tmp_path):
    markers = tmp_path / "markers"
    markers.mkdir()
    context = {"dir": str(markers)}
    key_fn = lambda job: content_key("faults/v1", job)  # noqa: E731
    plan = FaultPlan(tmp_path / "plan").inject("job_3", FAULT_RAISE)

    cold = run_jobs(
        JOBS, record_and_stamp, context=context, cache=ResultCache(tmp_path / "cache"),
        key_fn=key_fn, on_error="quarantine", fault_plan=plan,
    )
    assert not cold[3].ok and sum(outcome.ok for outcome in cold) == len(JOBS) - 1

    for marker in markers.glob("*.ran"):
        marker.unlink()
    warm_cache = ResultCache(tmp_path / "cache")
    warm = run_jobs(
        JOBS, record_and_stamp, context=context, cache=warm_cache,
        key_fn=key_fn, on_error="quarantine", fault_plan=plan,
    )
    # Same outcomes (including the quarantine), with zero re-execution.
    assert warm == cold
    assert warm[3].failure.summary() == cold[3].failure.summary()
    assert list(markers.glob("*.ran")) == []
    assert warm_cache.hits == len(JOBS) and warm_cache.misses == 0


# ---------------------------------------------------------------------- #
# result-cache crash consistency
# ---------------------------------------------------------------------- #


def test_corrupt_cache_entries_read_as_misses_and_are_overwritten(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = content_key("v1", "x")
    cache.put(key, {"answer": 1})
    entry = next((tmp_path / "cache").glob("*/*/*.json"))
    entry.write_text('{"answer": 1')  # truncated mid-write by a crash

    reopened = ResultCache(tmp_path / "cache")
    assert reopened.get(key) is None and reopened.misses == 1
    reopened.put(key, {"answer": 2})
    assert reopened.get(key) == {"answer": 2}


def test_orphaned_tmp_files_are_invisible_and_swept_on_open(tmp_path):
    root = tmp_path / "cache"
    cache = ResultCache(root)
    key = content_key("v1", "x")
    cache.put(key, {"answer": 1})
    orphan = root / key[:2] / f"{key}.json.tmp99999"
    orphan.write_text('{"answer":')  # a killed writer's leftover

    # Never counted, never returned.
    assert len(ResultCache(root)) == 1
    assert ResultCache(root).get(key) == {"answer": 1}
    # A *fresh* tmp file (possibly a live writer's) survives reopening...
    assert orphan.exists()
    # ...but once it is stale, the next open sweeps it.
    backdated = os.stat(orphan).st_mtime - ResultCache.STALE_TMP_SECONDS - 1
    os.utime(orphan, (backdated, backdated))
    ResultCache(root)
    assert not orphan.exists()
    assert ResultCache(root).get(key) == {"answer": 1}


# ---------------------------------------------------------------------- #
# satellites: worker-override warning, chunk-size cap
# ---------------------------------------------------------------------- #


def test_default_workers_warns_once_per_bad_override(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "banana")
    with pytest.warns(RuntimeWarning, match="banana"):
        assert default_workers() >= 1
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # the second call must stay silent
        assert default_workers() >= 1


def test_auto_chunksize_is_capped():
    assert auto_chunksize(100_000, 8) == MAX_CHUNKSIZE
    assert auto_chunksize(0, 4) == 1
    assert auto_chunksize(100, 4) == 100 // 16


# ---------------------------------------------------------------------- #
# adopters: skipped-sample records and infra_error verdicts
# ---------------------------------------------------------------------- #


def test_corpus_generator_quarantines_failed_builds(tmp_path):
    from repro.corpus.generator import CorpusConfig, CorpusGenerator

    clean = CorpusGenerator(CorpusConfig(design_count=6)).generate()
    victim = clean.samples[2].name
    plan = FaultPlan(tmp_path / "plan", key_fn=corpus_job_name).inject(
        victim, FAULT_RAISE
    )
    corpus = CorpusGenerator(
        CorpusConfig(design_count=6, on_error="quarantine"), fault_plan=plan
    ).generate()
    assert [s.name for s in corpus.samples] == [
        s.name for s in clean.samples if s.name != victim
    ]
    (record,) = corpus.skipped
    assert record["stage"] == "corpus" and record["name"] == victim
    assert record["exception_type"] == "InjectedFault"


def test_stage2_runner_quarantines_failed_samples(tmp_path):
    from repro.corpus.generator import CorpusConfig, CorpusGenerator
    from repro.dataaug.stage1 import run_stage1
    from repro.dataaug.stage2 import Stage2Config, Stage2Runner

    compiled = run_stage1(
        CorpusGenerator(CorpusConfig(design_count=6)).generate()
    ).compiled
    assert len(compiled) >= 2
    victim = compiled[0].name
    plan = FaultPlan(tmp_path / "plan").inject(victim, FAULT_RAISE)
    config = Stage2Config(random_cycles=16, max_bugs_per_design=2, on_error="quarantine")
    faulted = Stage2Runner(config, fault_plan=plan).run(compiled)
    clean = Stage2Runner(config).run(compiled)

    (record,) = faulted.skipped
    assert record["stage"] == "stage2" and record["name"] == victim
    # Every surviving sample's output is untouched by the quarantine.
    clean_names = {e.name for e in clean.sva_bug if e.design_name != victim}
    assert {e.name for e in faulted.sva_bug} == clean_names


def test_pipeline_surfaces_quarantined_jobs_in_statistics(tmp_path):
    from repro.dataaug.pipeline import DataAugmentationPipeline, PipelineConfig

    clean = DataAugmentationPipeline(PipelineConfig.small()).run()
    victim = clean.sva_bug_train[0].name
    plan = FaultPlan(tmp_path / "plan").inject(victim, FAULT_RAISE)
    config = PipelineConfig.small()
    config.on_error = "quarantine"
    datasets = DataAugmentationPipeline(config, fault_plan=plan).run()

    (record,) = datasets.statistics.skipped_jobs
    assert record["stage"] == "stage3" and record["name"] == victim
    assert datasets.statistics.cot_generated == clean.statistics.cot_generated - 1
    entry = next(e for e in datasets.sva_bug_train if e.name == victim)
    assert entry.cot is None and entry.cot_valid is False


def test_quarantine_mode_without_faults_is_byte_identical():
    """Graceful degradation must be free when nothing fails: the quarantine
    machinery with zero faults produces the exact datasets of raise mode."""
    from repro.dataaug.pipeline import DataAugmentationPipeline, PipelineConfig

    base = DataAugmentationPipeline(PipelineConfig.small()).run()
    config = PipelineConfig.small()
    config.on_error = "quarantine"
    quarantined = DataAugmentationPipeline(config).run()
    assert [e.to_dict() for e in quarantined.sva_bug_train] == [
        e.to_dict() for e in base.sva_bug_train
    ]
    assert [e.to_dict() for e in quarantined.sva_eval_machine] == [
        e.to_dict() for e in base.sva_eval_machine
    ]
    assert vars(quarantined.statistics) == vars(base.statistics)
    assert quarantined.statistics.skipped_jobs == []


def test_verification_quarantine_yields_infra_error_verdicts(tmp_path):
    from repro.eval.executor import VerificationJob, run_verification_jobs
    from repro.eval.verifier import CandidateFix

    fixes = (CandidateFix(1, "assign y = x;"), CandidateFix(2, "assign y = ~x;"))
    jobs = [
        VerificationJob(
            case_name=name, buggy_source="not verilog", fixes=fixes,
            seeds=(11, 12), cycles=8,
        )
        for name in ("case_a", "case_b")
    ]
    plan = FaultPlan(tmp_path / "plan").inject("case_a", FAULT_RAISE)
    shards = run_verification_jobs(jobs, on_error="quarantine", fault_plan=plan)
    clean = run_verification_jobs(jobs[1:])

    assert [v.status for v in shards[0].verdicts] == ["infra_error", "infra_error"]
    assert shards[0].verdicts[0].seeds == (11, 12)
    assert shards[0].verdicts[0].cycles == 8
    assert "InjectedFault" in shards[0].verdicts[0].detail
    # The unaffected case verified normally, identically to a clean run.
    assert [v.to_dict() for v in shards[1].verdicts] == [
        v.to_dict() for v in clean[0].verdicts
    ]
    assert all(v.status != "infra_error" for v in shards[1].verdicts)


def test_pass_rates_exclude_infra_error_cases():
    from repro.eval.harness import CandidateOutcome, CaseResult, EvalReport
    from repro.eval.verifier import RepairVerdict

    def case(name, verdict):
        return CaseResult(
            name=name, design_name="d", family="f", length_bin="0-50",
            bug_type_labels=["Direct"], verification_seeds=(1,), mining_seed=0,
            candidates=[
                CandidateOutcome(
                    rank=1, line_number=1, fixed_line="x", confidence=1.0,
                    verdict=verdict,
                )
            ],
        )

    passing = case("a", RepairVerdict(status="pass", exercised=True))
    infra = case("b", RepairVerdict(status="infra_error"))
    report = EvalReport(engine="stub", ks=(1,), cases=[passing, infra])
    assert infra.infra_error and not passing.infra_error
    # The infra case is excluded from the denominator, not scored as a miss.
    assert report.pass_rates == {"pass@1": 1.0}
    summary = report.summary()
    assert summary["infra_error_cases"] == 1
    assert summary["cases"] == 2
    assert summary["verdicts"]["infra_error"] == 1
