"""repro.runtime tests: executor determinism, seeding, worker defaults and
the content-addressed result cache -- plus the guard that keeps bespoke
multiprocessing pools from creeping back into the migrated modules."""

import random
import zlib
from pathlib import Path

import pytest

from repro.runtime import (
    DEFAULT_WORKER_CAP,
    ResultCache,
    content_key,
    default_workers,
    derive_seed,
    run_jobs,
)

SRC = Path(__file__).resolve().parent.parent / "src"


# ---------------------------------------------------------------------- #
# worker functions (module-level so they pickle)
# ---------------------------------------------------------------------- #


def square(job):
    return job * job

def seeded_draw(job, context):
    """A deterministic-by-derivation random draw: the per-job seed comes
    from the job identity, never from a shared stream."""
    rng = random.Random(derive_seed(context["seed"], job))
    return {"name": job, "value": rng.randint(0, 10**9)}


def record_call(job, context):
    """Leaves one marker file per executed job (to prove cache hits skip work)."""
    marker = Path(context["dir"]) / f"{job}.ran"
    marker.write_text("1")
    return {"job": job}


# ---------------------------------------------------------------------- #
# executor
# ---------------------------------------------------------------------- #


def test_run_jobs_preserves_submission_order():
    jobs = list(range(20))
    assert run_jobs(jobs, square, workers=1) == [j * j for j in jobs]
    assert run_jobs(jobs, square, workers=4) == [j * j for j in jobs]


def test_run_jobs_is_worker_count_invariant_with_derived_seeds():
    jobs = [f"design_{i:03d}" for i in range(12)]
    context = {"seed": 99}
    serial = run_jobs(jobs, seeded_draw, workers=1, context=context)
    fanned = run_jobs(jobs, seeded_draw, workers=3, context=context)
    assert serial == fanned
    # ...and independent of job order (modulo the reordering itself).
    reversed_out = run_jobs(list(reversed(jobs)), seeded_draw, workers=2, context=context)
    assert reversed_out == list(reversed(serial))


def test_run_jobs_handles_empty_and_single_job_lists():
    assert run_jobs([], square, workers=4) == []
    assert run_jobs([7], square, workers=4) == [49]


def test_derive_seed_matches_the_stage2_formula():
    assert derive_seed(11, "sample_a") == 11 ^ zlib.crc32(b"sample_a")
    assert derive_seed(11, "sample_a") != derive_seed(11, "sample_b")
    assert derive_seed(11, "a", "b") != derive_seed(11, "ab")


# ---------------------------------------------------------------------- #
# result cache
# ---------------------------------------------------------------------- #


def test_result_cache_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = content_key("v1", "input")
    assert cache.get(key) is None and cache.misses == 1
    cache.put(key, {"answer": 42})
    assert cache.get(key) == {"answer": 42} and cache.hits == 1
    assert len(cache) == 1
    # Content-addressed: any input change gives a different key.
    assert key != content_key("v1", "input2")
    assert key != content_key("v2", "input")
    assert key != content_key("v1", "inp", "ut")


def test_run_jobs_cache_serves_warm_runs_without_recomputing(tmp_path):
    jobs = [f"j{i}" for i in range(6)]
    context = {"dir": str(tmp_path / "markers")}
    Path(context["dir"]).mkdir()
    key_fn = lambda job: content_key("test/v1", job)  # noqa: E731

    cold_cache = ResultCache(tmp_path / "cache")
    cold = run_jobs(jobs, record_call, workers=2, context=context,
                    cache=cold_cache, key_fn=key_fn)
    assert cold == [{"job": job} for job in jobs]
    assert len(list(Path(context["dir"]).glob("*.ran"))) == 6
    assert cold_cache.misses == 6

    for marker in Path(context["dir"]).glob("*.ran"):
        marker.unlink()
    warm_cache = ResultCache(tmp_path / "cache")
    warm = run_jobs(jobs, record_call, workers=2, context=context,
                    cache=warm_cache, key_fn=key_fn)
    assert warm == cold
    assert warm_cache.hits == 6 and warm_cache.misses == 0
    assert list(Path(context["dir"]).glob("*.ran")) == []  # nothing re-ran


def test_run_jobs_cache_requires_key_fn(tmp_path):
    with pytest.raises(ValueError):
        run_jobs([1], square, cache=ResultCache(tmp_path))


# ---------------------------------------------------------------------- #
# worker-count default
# ---------------------------------------------------------------------- #


def test_default_workers_env_override_and_cap(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert default_workers() == 3
    monkeypatch.setenv("REPRO_WORKERS", "10000")
    assert default_workers() == DEFAULT_WORKER_CAP
    monkeypatch.setenv("REPRO_WORKERS", "0")
    assert default_workers() == 1
    monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
    assert 1 <= default_workers() <= DEFAULT_WORKER_CAP
    monkeypatch.delenv("REPRO_WORKERS")
    assert 1 <= default_workers() <= DEFAULT_WORKER_CAP


# ---------------------------------------------------------------------- #
# migration guard
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "module",
    [
        "repro/dataaug/stage2.py",
        "repro/dataaug/stage1.py",
        "repro/dataaug/stage3.py",
        "repro/corpus/generator.py",
        "repro/eval/executor.py",
    ],
)
def test_migrated_modules_have_no_bespoke_pools(module):
    """Every fan-out must route through repro.runtime -- no hand-rolled
    ``multiprocessing`` pools outside the executor itself."""
    text = (SRC / module).read_text()
    assert "multiprocessing" not in text, module
    assert "run_jobs" in text, module
