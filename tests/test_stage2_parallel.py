"""Stage-2 fan-out tests: worker count must never change the output."""

from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.dataaug.pipeline import DataAugmentationPipeline, PipelineConfig
from repro.dataaug.stage1 import run_stage1
from repro.dataaug.stage2 import Stage2Config, Stage2Runner


def fingerprint(result):
    return (
        [
            (e.name, e.buggy_line, e.golden_line, e.logs, tuple(e.failing_assertions))
            for e in result.sva_bug
        ],
        [(e.name, e.buggy_line, e.golden_line) for e in result.verilog_bug],
        result.candidate_svas,
        result.validated_svas,
        result.injected_bugs,
        result.rejected_not_compiling,
        result.designs_without_valid_svas,
    )


def compiled_samples(seed: int = 42, count: int = 6):
    corpus = CorpusGenerator(
        CorpusConfig(seed=seed, design_count=count, corrupted_fraction=0.2)
    ).generate()
    return run_stage1(corpus).compiled


def test_parallel_equals_serial():
    samples = compiled_samples()
    serial = Stage2Runner(
        Stage2Config(seed=5, random_cycles=20, max_bugs_per_design=3, workers=1)
    ).run(samples)
    parallel = Stage2Runner(
        Stage2Config(seed=5, random_cycles=20, max_bugs_per_design=3, workers=2)
    ).run(samples)
    assert fingerprint(serial) == fingerprint(parallel)
    assert serial.injected_bugs > 0


def test_result_independent_of_sample_order():
    """Per-sample injector seeding decouples mutants from batch ordering."""
    samples = compiled_samples()
    config = Stage2Config(seed=5, random_cycles=20, max_bugs_per_design=3)
    forward = Stage2Runner(config).run(samples)
    backward = Stage2Runner(config).run(list(reversed(samples)))
    assert sorted(e.name for e in forward.sva_bug) == sorted(e.name for e in backward.sva_bug)
    assert sorted(e.name for e in forward.verilog_bug) == sorted(
        e.name for e in backward.verilog_bug
    )


def test_small_pipeline_end_to_end():
    datasets = DataAugmentationPipeline(PipelineConfig.small(seed=7)).run()
    stats = datasets.statistics
    assert stats.corpus_samples > 0
    assert stats.validated_svas > 0
    assert stats.sva_bug_entries == len(datasets.sva_bug_train) + len(
        datasets.sva_eval_machine
    )
    # The split shares no design between train and eval.
    train_designs = {e.design_name for e in datasets.sva_bug_train}
    eval_designs = {e.design_name for e in datasets.sva_eval_machine}
    assert not (train_designs & eval_designs)
