"""Tests for the columnar trace layer and the vectorised checking engine.

Three contracts are pinned here:

* ``Trace.columns()`` / ``DiffTrace.columns()`` (diff-derived and
  simulator-recorded) agree element-for-element with the row-oriented
  sampled values, and a quiet design's DiffTrace builds its columns
  without materialising per-cycle sample dicts;
* the vectorised checker path is outcome-identical to the per-cycle
  closure path and the tree-walking oracle across every template family
  and for injected mutants (including failing reports), and actually
  engages (this suite fails if the vector lowering silently refuses
  everything);
* the ``Trace.render`` fixes: no name truncation, clear error for unknown
  names.
"""

import numpy as np
import pytest

from repro.bugs.injector import BugInjector, InjectionConfig
from repro.corpus.templates import all_families
from repro.hdl.lint import compile_source
from repro.sim.engine import SimulationError, Simulator, SimulatorOptions
from repro.sim.stimulus import StimulusGenerator
from repro.sim.trace import INT64_COLUMN_MAX_WIDTH
from repro.sva.checker import AssertionChecker
from repro.sva.compile import CompiledAssertionChecker
from repro.sva.generator import insert_assertions, mine_assertions, template_assertion_blocks

FAMILIES = all_families()


def augmented_design(family, prefix="col"):
    artifact = family.build(f"{prefix}_{family.name}", **family.parameter_grid[0])
    golden = compile_source(artifact.source)
    if not golden.ok or golden.design is None:
        return None, None
    mining_trace = Simulator(golden.design).run(
        StimulusGenerator(golden.design, seed=7).mixed_stimulus(random_cycles=24).vectors
    )
    candidates = template_assertion_blocks(artifact.template_svas, artifact.family)
    candidates.extend(mine_assertions(golden.design, mining_trace, max_assertions=5))
    if not candidates:
        return None, None
    augmented = insert_assertions(artifact.source, candidates)
    result = compile_source(augmented)
    if not result.ok or result.design is None:
        return None, None
    return augmented, result.design


def simulate(design, seed=11, cycles=24, record_columns=False):
    vectors = StimulusGenerator(design, seed=seed).mixed_stimulus(random_cycles=cycles).vectors
    options = SimulatorOptions(record_columns=record_columns)
    return Simulator(design, options).run(vectors)


def assert_columns_match_samples(trace, names):
    columns = trace.columns(names)
    reference = trace.materialized()
    assert columns.cycles == len(reference)
    for name in names:
        expected_v = [s.sampled(name).value for s in reference.samples]
        expected_x = [s.sampled(name).xmask for s in reference.samples]
        assert columns.values[name].tolist() == expected_v, name
        assert columns.xmasks[name].tolist() == expected_x, name
        assert columns.widths[name] == reference.samples[0].sampled(name).width


# --------------------------------------------------------------------------- #
# columns differential
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("family", FAMILIES[:10], ids=[f.name for f in FAMILIES[:10]])
def test_columns_match_sampled_values(family):
    """Diff-derived, recorded and dict-backed columns all equal the samples."""
    _, design = augmented_design(family)
    if design is None:
        pytest.skip("family yields no augmented design")
    names = sorted(design.signals)
    # DiffTrace, columns derived from the recorded diffs.
    diff_trace = simulate(design)
    assert_columns_match_samples(diff_trace, names)
    # DiffTrace with simulator-recorded column events.
    recorded_trace = simulate(design, record_columns=True)
    assert recorded_trace.records_columns
    assert_columns_match_samples(recorded_trace, names)
    # Fully materialised dict-backed trace.
    assert_columns_match_samples(simulate(design).materialized(), names)


def test_recorded_and_derived_columns_identical():
    _, design = augmented_design(FAMILIES[0], prefix="rec")
    if design is None:
        pytest.skip("family yields no augmented design")
    names = sorted(design.signals)
    derived = simulate(design).columns(names)
    recorded = simulate(design, record_columns=True).columns(names)
    for name in names:
        assert np.array_equal(derived.values[name], recorded.values[name])
        assert np.array_equal(derived.xmasks[name], recorded.xmasks[name])


QUIET_SOURCE = """
module quiet(input wire clk, input wire [3:0] a, output reg [3:0] b);
    always @(posedge clk) begin
        b <= a;
    end
endmodule
"""


def test_difftrace_columns_do_not_densify():
    """A quiet design's columns must come from diffs, not materialised dicts."""
    design = compile_source(QUIET_SOURCE).design
    assert design is not None
    # Constant input: after the first cycle nothing changes.
    trace = Simulator(design).run([{"a": 5}] * 40)
    columns = trace.columns(["a", "b"])
    assert trace._cache == [], "columns() materialised per-cycle samples"
    assert columns.values["a"].tolist() == [5] * 40
    assert columns.values["b"].tolist()[2:] == [5] * 38
    # The recorded-buffer path must not densify either.
    recorded = Simulator(design, SimulatorOptions(record_columns=True)).run([{"a": 5}] * 40)
    recorded_columns = recorded.columns(["b"])
    assert recorded._cache == []
    assert recorded_columns.values["b"].tolist() == columns.values["b"].tolist()


def test_columns_unknown_signal_raises_clear_error():
    design = compile_source(QUIET_SOURCE).design
    trace = Simulator(design).run([{"a": 1}] * 4)
    with pytest.raises(KeyError, match="not in trace"):
        trace.columns(["a", "ghost"])
    with pytest.raises(KeyError, match="no column"):
        trace.columns(["a"]).signal("b")


WIDE_SOURCE = """
module wide(input wire clk, input wire [70:0] a, output reg [70:0] b);
    always @(posedge clk) begin
        b <= a;
    end
    property p_follow;
        @(posedge clk) 1'b1 |-> $past(a) == b;
    endproperty
    a_follow: assert property (p_follow);
endmodule
"""


def test_wide_signals_use_object_columns_and_closure_fallback():
    """>63-bit signals degrade to object columns; the checker falls back."""
    design = compile_source(WIDE_SOURCE).design
    assert design is not None
    big = (1 << 70) | 3
    trace = Simulator(design).run([{"a": big}] * 8)
    columns = trace.columns(["a"])
    assert columns.values["a"].dtype == object
    assert columns.values["a"].tolist() == [big] * 8
    checker = CompiledAssertionChecker(design)
    lowered = list(checker._lowered.values())
    assert all(entry is not None and entry.vector_fns is None for entry in lowered)
    report = checker.check(trace)
    oracle = AssertionChecker(design).check(trace)
    assert (
        report.outcomes["a_follow"].comparison_key()
        == oracle.outcomes["a_follow"].comparison_key()
    )
    assert report.outcomes["a_follow"].passes > 0


# --------------------------------------------------------------------------- #
# vectorised checker differential
# --------------------------------------------------------------------------- #


def assert_three_way_identical(design, trace):
    oracle = AssertionChecker(design).check(trace)
    vectorised = CompiledAssertionChecker(design).check(trace)
    closure = CompiledAssertionChecker(design, vectorise=False).check(trace)
    assert sorted(oracle.outcomes) == sorted(vectorised.outcomes) == sorted(closure.outcomes)
    for name in oracle.outcomes:
        a = oracle.outcomes[name].comparison_key()
        b = vectorised.outcomes[name].comparison_key()
        c = closure.outcomes[name].comparison_key()
        assert a == b == c, f"assertion '{name}' diverges between checking paths"


@pytest.mark.parametrize("family", FAMILIES, ids=[f.name for f in FAMILIES])
def test_vectorised_outcomes_identical(family):
    _, design = augmented_design(family, prefix="vec")
    if design is None or not design.assertions:
        pytest.skip("family yields no checkable assertions")
    checker = CompiledAssertionChecker(design)
    vectorised = [
        entry for entry in checker._lowered.values()
        if entry is not None and entry.vector_fns is not None
    ]
    assert vectorised, "vector lowering refused every assertion of the family"
    # The vectorised path must engage on both diff-backed and dict-backed
    # traces (different columns() implementations).
    diff_trace = simulate(design, seed=12, cycles=32, record_columns=True)
    assert_three_way_identical(design, diff_trace)
    assert_three_way_identical(design, simulate(design, seed=13, cycles=32).materialized())


def test_vectorised_mutant_outcomes_identical():
    """Buggy designs (where assertions actually fail) must also agree."""
    injector = BugInjector(InjectionConfig(seed=23, max_bugs_per_design=2))
    checked = failing = 0
    for family in FAMILIES[:10]:
        source, design = augmented_design(family, prefix="vmut")
        if design is None or not design.assertions:
            continue
        for bug in injector.inject(f"vmut_{family.name}", source, design):
            buggy = compile_source(bug.buggy_source)
            if not buggy.ok or buggy.design is None:
                continue
            try:
                trace = simulate(buggy.design, seed=9, record_columns=True)
            except SimulationError:
                continue
            assert_three_way_identical(buggy.design, trace)
            checked += 1
            if not AssertionChecker(buggy.design).check(trace).passed:
                failing += 1
    assert checked >= 5
    assert failing >= 1, "no mutant produced a failing report; test lost its teeth"


def test_check_assertion_public_entry_point():
    """The oracle's single-assertion entry point is public and consistent."""
    _, design = augmented_design(FAMILIES[0], prefix="pub")
    if design is None or not design.assertions:
        pytest.skip("family yields no checkable assertions")
    trace = simulate(design)
    oracle = AssertionChecker(design)
    spec = design.assertions[0]
    outcome = oracle.check_assertion(spec, trace)
    assert outcome.comparison_key() == oracle.check(trace).outcomes[spec.name].comparison_key()


# --------------------------------------------------------------------------- #
# render fixes
# --------------------------------------------------------------------------- #


LONG_NAMES_SOURCE = """
module longnames(
    input wire clk,
    input wire [3:0] a_very_long_signal_name_one,
    output reg [3:0] a_very_long_signal_name_two
);
    always @(posedge clk) begin
        a_very_long_signal_name_two <= a_very_long_signal_name_one;
    end
endmodule
"""


def test_render_does_not_truncate_long_names():
    design = compile_source(LONG_NAMES_SOURCE).design
    trace = Simulator(design).run([{"a_very_long_signal_name_one": 3}] * 4)
    rendered = trace.materialized().render(
        ["a_very_long_signal_name_one", "a_very_long_signal_name_two"]
    )
    # Both full names must be present and therefore distinguishable.
    assert "a_very_long_signal_name_one" in rendered
    assert "a_very_long_signal_name_two" in rendered


def test_render_unknown_name_raises_value_error():
    design = compile_source(LONG_NAMES_SOURCE).design
    trace = Simulator(design).run([{"a_very_long_signal_name_one": 3}] * 4)
    with pytest.raises(ValueError, match="cannot render"):
        trace.materialized().render(["no_such_signal"])
