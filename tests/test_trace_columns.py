"""Tests for the columnar trace layer and the vectorised checking engine.

Four contracts are pinned here:

* ``Trace.columns()`` / ``DiffTrace.columns()`` (diff-derived and
  simulator-recorded) agree element-for-element with the row-oriented
  sampled values, are memoised per trace (invalidated on append), and a
  quiet design's DiffTrace builds its columns without materialising
  per-cycle sample dicts;
* the four checking engines -- attempt tensor, vectorised series + Python
  walk, per-cycle closures, tree-walking oracle -- are outcome-identical
  across every template family and for injected mutants (including
  failing reports), and the tensor actually engages (this suite fails if
  the lowering silently refuses everything);
* adversarial attempt shapes (dense antecedent starts, attempts spanning
  the trace end, ``disable iff`` pulses mid-attempt, pre-trace ``$past``)
  and ragged-length stacked batches stay verdict-identical too;
* the ``Trace.render`` fixes: no name truncation, clear error for unknown
  names.
"""

import pickle

import numpy as np
import pytest

from repro.bugs.injector import BugInjector, InjectionConfig
from repro.corpus.templates import all_families
from repro.hdl.lint import compile_source
from repro.sim.engine import SimulationError, Simulator, SimulatorOptions
from repro.sim.stimulus import StimulusGenerator
from repro.sim.trace import INT64_COLUMN_MAX_WIDTH
from repro.sva.checker import AssertionChecker
from repro.sva.compile import CompiledAssertionChecker
from repro.sva.generator import insert_assertions, mine_assertions, template_assertion_blocks

FAMILIES = all_families()


def augmented_design(family, prefix="col"):
    artifact = family.build(f"{prefix}_{family.name}", **family.parameter_grid[0])
    golden = compile_source(artifact.source)
    if not golden.ok or golden.design is None:
        return None, None
    mining_trace = Simulator(golden.design).run(
        StimulusGenerator(golden.design, seed=7).mixed_stimulus(random_cycles=24).vectors
    )
    candidates = template_assertion_blocks(artifact.template_svas, artifact.family)
    candidates.extend(mine_assertions(golden.design, mining_trace, max_assertions=5))
    if not candidates:
        return None, None
    augmented = insert_assertions(artifact.source, candidates)
    result = compile_source(augmented)
    if not result.ok or result.design is None:
        return None, None
    return augmented, result.design


def simulate(design, seed=11, cycles=24, record_columns=False):
    vectors = StimulusGenerator(design, seed=seed).mixed_stimulus(random_cycles=cycles).vectors
    options = SimulatorOptions(record_columns=record_columns)
    return Simulator(design, options).run(vectors)


def assert_columns_match_samples(trace, names):
    columns = trace.columns(names)
    reference = trace.materialized()
    assert columns.cycles == len(reference)
    for name in names:
        expected_v = [s.sampled(name).value for s in reference.samples]
        expected_x = [s.sampled(name).xmask for s in reference.samples]
        assert columns.values[name].tolist() == expected_v, name
        assert columns.xmasks[name].tolist() == expected_x, name
        assert columns.widths[name] == reference.samples[0].sampled(name).width


# --------------------------------------------------------------------------- #
# columns differential
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("family", FAMILIES[:10], ids=[f.name for f in FAMILIES[:10]])
def test_columns_match_sampled_values(family):
    """Diff-derived, recorded and dict-backed columns all equal the samples."""
    _, design = augmented_design(family)
    if design is None:
        pytest.skip("family yields no augmented design")
    names = sorted(design.signals)
    # DiffTrace, columns derived from the recorded diffs.
    diff_trace = simulate(design)
    assert_columns_match_samples(diff_trace, names)
    # DiffTrace with simulator-recorded column events.
    recorded_trace = simulate(design, record_columns=True)
    assert recorded_trace.records_columns
    assert_columns_match_samples(recorded_trace, names)
    # Fully materialised dict-backed trace.
    assert_columns_match_samples(simulate(design).materialized(), names)


def test_recorded_and_derived_columns_identical():
    _, design = augmented_design(FAMILIES[0], prefix="rec")
    if design is None:
        pytest.skip("family yields no augmented design")
    names = sorted(design.signals)
    derived = simulate(design).columns(names)
    recorded = simulate(design, record_columns=True).columns(names)
    for name in names:
        assert np.array_equal(derived.values[name], recorded.values[name])
        assert np.array_equal(derived.xmasks[name], recorded.xmasks[name])


QUIET_SOURCE = """
module quiet(input wire clk, input wire [3:0] a, output reg [3:0] b);
    always @(posedge clk) begin
        b <= a;
    end
endmodule
"""


def test_difftrace_columns_do_not_densify():
    """A quiet design's columns must come from diffs, not materialised dicts."""
    design = compile_source(QUIET_SOURCE).design
    assert design is not None
    # Constant input: after the first cycle nothing changes.
    trace = Simulator(design).run([{"a": 5}] * 40)
    columns = trace.columns(["a", "b"])
    assert trace._cache == [], "columns() materialised per-cycle samples"
    assert columns.values["a"].tolist() == [5] * 40
    assert columns.values["b"].tolist()[2:] == [5] * 38
    # The recorded-buffer path must not densify either.
    recorded = Simulator(design, SimulatorOptions(record_columns=True)).run([{"a": 5}] * 40)
    recorded_columns = recorded.columns(["b"])
    assert recorded._cache == []
    assert recorded_columns.values["b"].tolist() == columns.values["b"].tolist()


def test_columns_unknown_signal_raises_clear_error():
    design = compile_source(QUIET_SOURCE).design
    trace = Simulator(design).run([{"a": 1}] * 4)
    with pytest.raises(KeyError, match="not in trace"):
        trace.columns(["a", "ghost"])
    with pytest.raises(KeyError, match="no column"):
        trace.columns(["a"]).signal("b")


WIDE_SOURCE = """
module wide(input wire clk, input wire [70:0] a, output reg [70:0] b);
    always @(posedge clk) begin
        b <= a;
    end
    property p_follow;
        @(posedge clk) 1'b1 |-> $past(a) == b;
    endproperty
    a_follow: assert property (p_follow);
endmodule
"""


def test_wide_signals_use_object_columns_and_closure_fallback():
    """>63-bit signals degrade to object columns; the checker falls back."""
    design = compile_source(WIDE_SOURCE).design
    assert design is not None
    big = (1 << 70) | 3
    trace = Simulator(design).run([{"a": big}] * 8)
    columns = trace.columns(["a"])
    assert columns.values["a"].dtype == object
    assert columns.values["a"].tolist() == [big] * 8
    checker = CompiledAssertionChecker(design)
    lowered = list(checker._lowered.values())
    assert all(entry is not None and entry.vector_fns is None for entry in lowered)
    report = checker.check(trace)
    oracle = AssertionChecker(design).check(trace)
    assert (
        report.outcomes["a_follow"].comparison_key()
        == oracle.outcomes["a_follow"].comparison_key()
    )
    assert report.outcomes["a_follow"].passes > 0


# --------------------------------------------------------------------------- #
# vectorised checker differential
# --------------------------------------------------------------------------- #


def assert_four_way_identical(design, trace):
    """attempt-tensor vs vectorised+walk vs closure vs tree-walker."""
    oracle = AssertionChecker(design).check(trace)
    tensor = CompiledAssertionChecker(design).check(trace)
    walk = CompiledAssertionChecker(design, attempt_tensor=False).check(trace)
    closure = CompiledAssertionChecker(design, vectorise=False).check(trace)
    assert (
        sorted(oracle.outcomes)
        == sorted(tensor.outcomes)
        == sorted(walk.outcomes)
        == sorted(closure.outcomes)
    )
    for name in oracle.outcomes:
        a = oracle.outcomes[name].comparison_key()
        b = tensor.outcomes[name].comparison_key()
        c = walk.outcomes[name].comparison_key()
        d = closure.outcomes[name].comparison_key()
        assert a == b == c == d, f"assertion '{name}' diverges between checking paths"


@pytest.mark.parametrize("family", FAMILIES, ids=[f.name for f in FAMILIES])
def test_vectorised_outcomes_identical(family):
    _, design = augmented_design(family, prefix="vec")
    if design is None or not design.assertions:
        pytest.skip("family yields no checkable assertions")
    checker = CompiledAssertionChecker(design)
    vectorised = [
        entry for entry in checker._lowered.values()
        if entry is not None and entry.vector_fns is not None
    ]
    assert vectorised, "vector lowering refused every assertion of the family"
    # The vectorised path must engage on both diff-backed and dict-backed
    # traces (different columns() implementations).
    diff_trace = simulate(design, seed=12, cycles=32, record_columns=True)
    assert_four_way_identical(design, diff_trace)
    assert_four_way_identical(design, simulate(design, seed=13, cycles=32).materialized())


def test_vectorised_mutant_outcomes_identical():
    """Buggy designs (where assertions actually fail) must also agree."""
    injector = BugInjector(InjectionConfig(seed=23, max_bugs_per_design=2))
    checked = failing = 0
    for family in FAMILIES[:10]:
        source, design = augmented_design(family, prefix="vmut")
        if design is None or not design.assertions:
            continue
        for bug in injector.inject(f"vmut_{family.name}", source, design):
            buggy = compile_source(bug.buggy_source)
            if not buggy.ok or buggy.design is None:
                continue
            try:
                trace = simulate(buggy.design, seed=9, record_columns=True)
            except SimulationError:
                continue
            assert_four_way_identical(buggy.design, trace)
            checked += 1
            if not AssertionChecker(buggy.design).check(trace).passed:
                failing += 1
    assert checked >= 5
    assert failing >= 1, "no mutant produced a failing report; test lost its teeth"


def test_check_assertion_public_entry_point():
    """The oracle's single-assertion entry point is public and consistent."""
    _, design = augmented_design(FAMILIES[0], prefix="pub")
    if design is None or not design.assertions:
        pytest.skip("family yields no checkable assertions")
    trace = simulate(design)
    oracle = AssertionChecker(design)
    spec = design.assertions[0]
    outcome = oracle.check_assertion(spec, trace)
    assert outcome.comparison_key() == oracle.check(trace).outcomes[spec.name].comparison_key()


def test_attempt_tensor_engages_and_is_observable():
    """Vectorised assertions run the tensor by default, and the demotions
    (knob off, closure series) are named in the engine report."""
    _, design = augmented_design(FAMILIES[0], prefix="eng")
    if design is None or not design.assertions:
        pytest.skip("family yields no checkable assertions")
    tensor = CompiledAssertionChecker(design)
    report = tensor.engine_report()
    assert report["attempt_engines"]["tensor"] > 0
    for choice in tensor.engine_choices.values():
        if choice["engine"] == "vectorised":
            assert choice["attempt_engine"] == "tensor"
            assert choice["attempt_reason"] is None
    walk = CompiledAssertionChecker(design, attempt_tensor=False)
    for choice in walk.engine_choices.values():
        if choice["engine"] == "vectorised":
            assert choice["attempt_engine"] == "walk"
            assert choice["attempt_reason"] == "attempt tensor disabled"
    assert walk.engine_report()["attempt_fallback_reasons"].get(
        "attempt tensor disabled", 0
    ) > 0
    closure = CompiledAssertionChecker(design, vectorise=False)
    for choice in closure.engine_choices.values():
        if choice["engine"] == "closure":
            assert choice["attempt_engine"] == "walk"
            assert choice["attempt_reason"].startswith("series engine is closure")
    assert closure.engine_report()["attempt_engines"]["tensor"] == 0


# --------------------------------------------------------------------------- #
# adversarial attempt shapes and ragged stacked batches
# --------------------------------------------------------------------------- #


ADVERSARIAL_SOURCE = """
module adversarial(
    input wire clk,
    input wire rst,
    input wire req,
    input wire [3:0] data,
    output reg [3:0] acc
);
    always @(posedge clk) begin
        if (rst) acc <= 4'd0;
        else acc <= acc + data;
    end
    // Dense antecedent starts: with req held high, every cycle opens an
    // attempt whose multi-element antecedent overlaps its neighbours'.
    property p_dense;
        @(posedge clk) disable iff (rst) req ##1 req |-> ##1 req ##2 req;
    endproperty
    a_dense: assert property (p_dense);
    // Deep $past: the first three cycles compare against pre-trace x.
    property p_past;
        @(posedge clk) disable iff (rst) req |=> data != $past(data, 3);
    endproperty
    a_past: assert property (p_past);
    // Long consequent tail: late attempts always span the trace end.
    property p_tail;
        @(posedge clk) req ##2 req |-> ##1 req ##3 req ##3 req;
    endproperty
    a_tail: assert property (p_tail);
    // No antecedent: every non-disabled cycle is checked directly.
    property p_flat;
        @(posedge clk) disable iff (rst) !req || data <= 4'd15;
    endproperty
    a_flat: assert property (p_flat);
endmodule
"""


def adversarial_design():
    result = compile_source(ADVERSARIAL_SOURCE)
    assert result.ok and result.design is not None, result.render()
    return result.design


def adversarial_trace(design, cycles, hold=True, pulse_at=()):
    """A trace with dense req runs, optional mid-trace disable pulses."""
    vectors = []
    for i in range(cycles):
        vectors.append(
            {
                "rst": 1 if i in pulse_at else 0,
                # hold=True keeps req high (dense overlapping attempts);
                # otherwise req toggles in runs of three against one low.
                "req": 1 if hold or (i % 4) != 3 else 0,
                "data": (5 * i + 2) % 16,
            }
        )
    return Simulator(design).run(vectors)


def test_adversarial_attempt_shapes_four_way_identical():
    design = adversarial_design()
    tensor = CompiledAssertionChecker(design)
    assert all(
        choice["attempt_engine"] == "tensor"
        for choice in tensor.engine_choices.values()
    ), tensor.engine_choices
    traces = [
        # Dense starts, attempts spanning the trace end (long tails).
        adversarial_trace(design, 20),
        # Disable pulses mid-attempt: spans crossing cycles 6 and 13 flip
        # from fail/pass to disabled, exactly once per bucket transition.
        adversarial_trace(design, 24, pulse_at=(6, 13)),
        # Sparse req with pulses: vacuous/pending/disabled all populated.
        adversarial_trace(design, 17, hold=False, pulse_at=(2, 15)),
        # Shorter than the deepest $past: pre-trace unknowns dominate.
        adversarial_trace(design, 3),
        # Degenerate single-cycle and empty traces.
        adversarial_trace(design, 1),
        adversarial_trace(design, 0),
    ]
    for trace in traces:
        assert_four_way_identical(design, trace)
    # The shapes must actually exercise every bucket somewhere, or this
    # test has no teeth.
    oracle = AssertionChecker(design)
    totals = {"failures": 0, "vacuous": 0, "pending": 0, "disabled": 0, "passes": 0}
    for trace in traces:
        for outcome in oracle.check(trace).outcomes.values():
            totals["failures"] += len(outcome.failures)
            totals["vacuous"] += outcome.vacuous
            totals["pending"] += outcome.pending
            totals["disabled"] += outcome.disabled
            totals["passes"] += outcome.passes
    assert all(count > 0 for count in totals.values()), totals


def test_ragged_stacked_batch_matches_per_trace_and_oracle():
    """check_batch over ragged-length traces (the stacked 2-D path) must be
    outcome-identical to per-trace checks and to the tree-walker."""
    design = adversarial_design()
    checker = CompiledAssertionChecker(design)
    oracle = AssertionChecker(design)
    traces = [
        adversarial_trace(design, 23, pulse_at=(5,)),
        adversarial_trace(design, 7),
        adversarial_trace(design, 0),
        adversarial_trace(design, 16, hold=False, pulse_at=(9, 10)),
        adversarial_trace(design, 1),
    ]
    batched = checker.check_batch(traces)
    assert len(batched) == len(traces)
    for trace, via_batch in zip(traces, batched):
        single = checker.check(trace)
        reference = oracle.check(trace)
        assert sorted(via_batch.outcomes) == sorted(reference.outcomes)
        for name in reference.outcomes:
            assert (
                via_batch.outcomes[name].comparison_key()
                == single.outcomes[name].comparison_key()
                == reference.outcomes[name].comparison_key()
            ), f"assertion '{name}' diverges on the stacked batch path"


def test_stacked_batch_on_template_families():
    """Seed-stacked batches across template families stay verdict-identical."""
    checked = 0
    for family in FAMILIES[:6]:
        _, design = augmented_design(family, prefix="stack")
        if design is None or not design.assertions:
            continue
        checker = CompiledAssertionChecker(design)
        traces = [
            simulate(design, seed=60 + i, cycles=12 + 9 * i, record_columns=True)
            for i in range(3)
        ]
        batched = checker.check_batch(traces)
        oracle = AssertionChecker(design)
        for trace, via_batch in zip(traces, batched):
            reference = oracle.check(trace)
            for name in reference.outcomes:
                assert (
                    via_batch.outcomes[name].comparison_key()
                    == reference.outcomes[name].comparison_key()
                ), f"assertion '{name}' diverges on the stacked batch path"
        checked += 1
    assert checked >= 3


# --------------------------------------------------------------------------- #
# columns memoisation
# --------------------------------------------------------------------------- #


def test_columns_are_memoised_per_name_tuple():
    design = compile_source(QUIET_SOURCE).design
    trace = Simulator(design).run([{"a": 5}] * 10)
    assert trace.columns_cached(["a"]) is None
    first = trace.columns(["a"])
    assert trace.columns(["a"]) is first
    assert trace.columns_cached(["a"]) is first
    # A different name tuple is a different memo entry.
    both = trace.columns(["a", "b"])
    assert both is not first
    assert trace.columns(["a", "b"]) is both
    assert trace.columns(["a"]) is first


def test_columns_memo_invalidated_on_append():
    from repro.sim.trace import Trace, TraceSample
    from repro.sim.values import LogicValue

    def sample(cycle, value):
        held = {"a": LogicValue.from_int(value, 4)}
        return TraceSample(cycle=cycle, pre_edge=held, post_edge=held)

    trace = Trace(signals=["a"])
    trace.append(sample(0, 3))
    first = trace.columns(["a"])
    assert first.values["a"].tolist() == [3]
    trace.append(sample(1, 9))
    rebuilt = trace.columns(["a"])
    assert rebuilt is not first
    assert rebuilt.values["a"].tolist() == [3, 9]


def test_difftrace_columns_memo_invalidated_by_recording():
    design = compile_source(QUIET_SOURCE).design
    trace = Simulator(design).run([{"a": 5}] * 6)
    first = trace.columns(["a", "b"])
    assert trace.columns(["a", "b"]) is first
    # Recording one more cycle through the DiffTrace API must invalidate.
    trace.append_diffs({}, {})
    rebuilt = trace.columns(["a", "b"])
    assert rebuilt is not first
    assert rebuilt.cycles == first.cycles + 1


def test_columns_memo_dropped_on_pickle():
    design = compile_source(QUIET_SOURCE).design
    trace = Simulator(design).run([{"a": 5}] * 6).materialized()
    built = trace.columns(["a"])
    restored = pickle.loads(pickle.dumps(trace))
    assert "_columns_memo" not in restored.__dict__
    assert restored.columns(["a"]).values["a"].tolist() == built.values["a"].tolist()


# --------------------------------------------------------------------------- #
# render fixes
# --------------------------------------------------------------------------- #


LONG_NAMES_SOURCE = """
module longnames(
    input wire clk,
    input wire [3:0] a_very_long_signal_name_one,
    output reg [3:0] a_very_long_signal_name_two
);
    always @(posedge clk) begin
        a_very_long_signal_name_two <= a_very_long_signal_name_one;
    end
endmodule
"""


def test_render_does_not_truncate_long_names():
    design = compile_source(LONG_NAMES_SOURCE).design
    trace = Simulator(design).run([{"a_very_long_signal_name_one": 3}] * 4)
    rendered = trace.materialized().render(
        ["a_very_long_signal_name_one", "a_very_long_signal_name_two"]
    )
    # Both full names must be present and therefore distinguishable.
    assert "a_very_long_signal_name_one" in rendered
    assert "a_very_long_signal_name_two" in rendered


def test_render_unknown_name_raises_value_error():
    design = compile_source(LONG_NAMES_SOURCE).design
    trace = Simulator(design).run([{"a_very_long_signal_name_one": 3}] * 4)
    with pytest.raises(ValueError, match="cannot render"):
        trace.materialized().render(["no_such_signal"])
