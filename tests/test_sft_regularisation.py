"""Regression: SFT L2 keeps the collinear localisation weights sane.

``assigns_failing_signal`` is a subset indicator of ``is_assignment``; at
smoke scale (the ~10-design small pipeline) the unregularised MLE parks a
large negative weight on it -- down-ranking exactly the lines a
verification engineer reads first (see ROADMAP).  The per-step localisation
ridge (``SftConfig.localisation_l2``) must keep that weight non-negative
without touching the fix head.
"""

import pytest

from repro.dataaug.pipeline import DataAugmentationPipeline, PipelineConfig
from repro.model.assertsolver_model import AssertSolverModel
from repro.model.features import LOCALISATION_FEATURE_NAMES
from repro.model.sft import SftConfig

AFS = LOCALISATION_FEATURE_NAMES.index("assigns_failing_signal")


@pytest.fixture(scope="module")
def datasets():
    return DataAugmentationPipeline(PipelineConfig.small()).run()


def train(datasets, config=None):
    model = AssertSolverModel(seed=2025)
    model.pretrain(datasets.verilog_pt)
    report = model.supervised_finetune(
        datasets.sva_bug_train, datasets.verilog_bug, config=config
    )
    return model, report


def test_assigns_failing_signal_weight_stays_positive(datasets):
    """The default config must not learn to penalise assigning a signal the
    failing assertion samples -- the regression the ridge exists to stop."""
    model, report = train(datasets)
    assert model.policy.weights.localisation[AFS] > 0.0
    # The fix head is not collinear and is deliberately left unregularised.
    assert report.final_fix_accuracy == pytest.approx(1.0)


def test_unregularised_training_reproduces_the_pathology(datasets):
    """Documents *why* the knob exists: with the ridge off, the collinear
    weight goes (strongly) negative on the small corpus.  If this ever stops
    failing without the ridge, the default can be revisited."""
    model, _ = train(datasets, SftConfig(localisation_l2=0.0))
    assert model.policy.weights.localisation[AFS] < 0.0
