"""Unit tests for 4-state values and expression evaluation (x-propagation)."""

from repro.hdl import ast
from repro.sim.evaluator import Evaluator
from repro.sim.values import LogicValue, concat, merge_bits, replicate


def lv(value: int, width: int) -> LogicValue:
    return LogicValue.from_int(value, width)


def xv(width: int) -> LogicValue:
    return LogicValue.unknown(width)


class TestLogicValue:
    def test_from_int_wraps_two_complement(self):
        assert lv(-1, 4).to_int() == 0b1111
        assert lv(16, 4).to_int() == 0
        assert lv(300, 8).to_int() == 300 % 256

    def test_known_bits_under_xmask_are_cleared(self):
        value = LogicValue(value=0b1111, xmask=0b0101, width=4)
        assert value.value == 0b1010
        assert value.xmask == 0b0101
        assert value.has_unknown

    def test_truthiness(self):
        assert lv(2, 4).truth().equals(LogicValue.from_int(1, 1))
        assert lv(0, 4).truth().equals(LogicValue.from_int(0, 1))
        # All-zero known bits with any x bit: truth is unknown.
        assert LogicValue(value=0, xmask=0b0010, width=4).truth().has_unknown
        # A known 1 bit wins even when other bits are x.
        assert LogicValue(value=0b0001, xmask=0b0010, width=4).truth().is_true()

    def test_to_signed(self):
        assert lv(0b1111, 4).to_signed() == -1
        assert lv(0b0111, 4).to_signed() == 7

    def test_resize_truncates_and_extends(self):
        assert lv(0b1011, 4).resized(2).to_int() == 0b11
        assert lv(0b11, 2).resized(6).to_int() == 0b11
        # Resize keeps x positions that survive the truncation.
        wide = LogicValue(value=0, xmask=0b1000, width=4)
        assert wide.resized(3).is_fully_known
        assert wide.resized(4).has_unknown

    def test_bit_and_slice_out_of_range_read_x(self):
        value = lv(0b1010, 4)
        assert value.bit(1).to_int() == 1
        assert value.bit(9).has_unknown
        assert value.slice(2, 1).to_int() == 0b01
        assert value.slice(5, 3).xmask == 0b110  # bits 4..5 beyond width

    def test_concat_and_replicate(self):
        joined = concat([lv(0b10, 2), lv(0b01, 2)])
        assert joined.width == 4 and joined.to_int() == 0b1001
        assert replicate(3, lv(0b1, 1)).to_int() == 0b111
        with_x = concat([xv(1), lv(0b1, 1)])
        assert with_x.xmask == 0b10 and with_x.value == 0b01

    def test_merge_bits(self):
        merged = merge_bits(lv(0b0000, 4), lv(0b11, 2), 2, 1)
        assert merged.to_int() == 0b0110
        merged_x = merge_bits(lv(0b1111, 4), xv(1), 0, 0)
        assert merged_x.xmask == 0b0001 and merged_x.value == 0b1110


def evaluate(expr: ast.Expression, env: dict[str, LogicValue]) -> LogicValue:
    return Evaluator(env).evaluate(expr)


def binary(op: str, left: LogicValue, right: LogicValue) -> LogicValue:
    env = {"a": left, "b": right}
    return evaluate(ast.Binary(op=op, left=ast.Identifier("a"), right=ast.Identifier("b")), env)


def unary(op: str, operand: LogicValue) -> LogicValue:
    return evaluate(ast.Unary(op=op, operand=ast.Identifier("a")), {"a": operand})


class TestEvaluatorXPropagation:
    def test_arithmetic_poisons_on_x(self):
        result = binary("+", lv(3, 4), xv(4))
        assert result.has_unknown and result.xmask == 0b1111

    def test_arithmetic_known(self):
        assert binary("+", lv(9, 4), lv(9, 4)).to_int() == 2  # wraps at width 4
        assert binary("-", lv(0, 4), lv(1, 4)).to_int() == 0b1111
        assert binary("*", lv(5, 8), lv(7, 8)).to_int() == 35
        assert binary("/", lv(9, 8), lv(0, 8)).has_unknown  # div by zero -> x

    def test_logical_short_circuit_dominates_x(self):
        # 0 && x == 0, 1 || x == 1 (Verilog truth table).
        assert binary("&&", lv(0, 1), xv(1)).is_false()
        assert binary("||", lv(1, 1), xv(1)).is_true()
        assert binary("&&", lv(1, 1), xv(1)).has_unknown
        assert binary("||", lv(0, 1), xv(1)).has_unknown

    def test_equality(self):
        assert binary("==", lv(5, 4), lv(5, 4)).is_true()
        assert binary("==", lv(5, 4), xv(4)).has_unknown
        # Case equality compares x positions literally.
        assert binary("===", xv(4), xv(4)).is_true()
        assert binary("!==", xv(4), lv(0, 4)).is_true()

    def test_relational(self):
        assert binary("<", lv(3, 4), lv(7, 4)).is_true()
        assert binary(">=", lv(3, 4), xv(4)).has_unknown

    def test_ternary_merges_identical_branches_under_x(self):
        expr = ast.Ternary(
            condition=ast.Identifier("c"),
            if_true=ast.Identifier("a"),
            if_false=ast.Identifier("b"),
        )
        env = {"c": xv(1), "a": lv(5, 4), "b": lv(5, 4)}
        assert evaluate(expr, env).to_int() == 5
        env["b"] = lv(6, 4)
        assert evaluate(expr, env).has_unknown

    def test_reductions(self):
        assert unary("&", lv(0b111, 3)).is_true()
        assert unary("&", lv(0b101, 3)).is_false()
        assert unary("|", lv(0, 3)).is_false()
        assert unary("|", lv(0b100, 3)).is_true()
        assert unary("^", lv(0b1011, 4)).is_true()  # three ones -> odd parity
        assert unary("^", lv(0b1001, 4)).is_false()
        assert unary("&", xv(3)).has_unknown

    def test_countones_and_onehot(self):
        def call(name: str, value: LogicValue) -> LogicValue:
            return evaluate(
                ast.SystemCall(name=name, args=[ast.Identifier("a")]), {"a": value}
            )

        assert call("$countones", lv(0b1011, 4)).to_int() == 3
        assert call("$countones", xv(4)).has_unknown
        assert call("$onehot", lv(0b0100, 4)).is_true()
        assert call("$onehot", lv(0b0110, 4)).is_false()
        assert call("$onehot0", lv(0, 4)).is_true()
        assert call("$onehot0", lv(0b0110, 4)).is_false()

    def test_shift_keeps_left_operand_width(self):
        assert binary("<<", lv(0b0101, 4), lv(1, 2)).to_int() == 0b1010
        result = binary("<<", lv(0b0101, 4), xv(2))
        assert result.width == 4 and result.xmask == 0b1111
