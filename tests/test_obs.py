"""Observability tests: span tracing, metrics, worker telemetry shipping,
fault counters, cache stats, engine-choice recording, the run-report CLI --
and the contract that makes all of it safe: datasets and eval reports are
byte-identical with tracing on or off."""

import json
import os
import time
from dataclasses import replace

import pytest

from repro.dataaug.pipeline import DataAugmentationPipeline, PipelineConfig
from repro.eval.harness import EvalConfig, EvalHarness
from repro.hdl.lint import compile_source
from repro.model.assertsolver_model import AssertSolverModel
from repro.obs import (
    NULL_TRACER,
    TRACE_SCHEMA,
    MetricsRegistry,
    Tracer,
    annotate,
    get_tracer,
    labeled,
    phase,
    read_trace,
    resolve_trace_path,
    scoped_registry,
    set_tracer,
    split_label,
    write_chrome_trace,
    write_trace,
)
from repro.obs.__main__ import main as obs_main
from repro.runtime import (
    FAULT_HANG,
    FAULT_RAISE,
    FaultPlan,
    ResultCache,
    content_key,
    run_jobs,
)
from repro.runtime.faults import PHASE_WORKER
from repro.sim.engine import Simulator
from repro.sim.stimulus import StimulusGenerator
from repro.sva.compile import CompiledAssertionChecker
from repro.sva.generator import (
    insert_assertions,
    mine_assertions,
    template_assertion_blocks,
)


@pytest.fixture(autouse=True)
def _ambient_restored():
    """No test may leak an ambient tracer into the rest of the suite."""
    previous = get_tracer()
    yield
    set_tracer(previous)


def dataset_bytes(datasets) -> str:
    """Canonical byte-level snapshot of all four splits + statistics."""
    return json.dumps(
        {
            "verilog_pt": [vars(entry) for entry in datasets.verilog_pt],
            "verilog_bug": [entry.to_dict() for entry in datasets.verilog_bug],
            "sva_bug_train": [entry.to_dict() for entry in datasets.sva_bug_train],
            "sva_eval_machine": [entry.to_dict() for entry in datasets.sva_eval_machine],
            "statistics": vars(datasets.statistics),
        },
        sort_keys=True,
    )


# ---------------------------------------------------------------------- #
# worker functions (module-level so they pickle)
# ---------------------------------------------------------------------- #


def tag_and_double(job):
    annotate(tag=f"t{job}")
    return job * 2


def stamp(job):
    return {"job": job, "ok": True}


# ---------------------------------------------------------------------- #
# the tracer and its persistence
# ---------------------------------------------------------------------- #


def test_tracer_nesting_and_jsonl_roundtrip(tmp_path):
    tracer = Tracer()
    with tracer.span("outer", kind="test"):
        with tracer.span("inner") as inner:
            inner.set(extra=3)
        tracer.annotate(late=True)  # lands on the still-open outer span
    registry = MetricsRegistry()
    registry.inc("c", 2)
    registry.observe("h_s", 0.5)

    path = write_trace(tmp_path / "t.jsonl", tracer, metrics=registry, meta={"kind": "x"})
    data = read_trace(path)

    assert data.meta["schema"] == TRACE_SCHEMA
    assert data.meta["kind"] == "x"
    assert {"cpu_count", "platform", "python"} <= set(data.meta["host"])
    # Spans close inner-first; attrs and nesting windows survive the roundtrip.
    assert [span.name for span in data.spans] == ["inner", "outer"]
    inner_span, outer_span = data.spans
    assert inner_span.attrs == {"extra": 3}
    assert outer_span.attrs == {"kind": "test", "late": True}
    assert outer_span.start_s <= inner_span.start_s
    assert outer_span.duration_s >= inner_span.duration_s
    assert all(span.pid == os.getpid() for span in data.spans)
    assert data.metrics["counters"] == {"c": 2}
    assert data.metrics["histograms"]["h_s"]["count"] == 1


def test_chrome_trace_export_is_loadable_json(tmp_path):
    tracer = Tracer()
    with tracer.span("stage", n=1):
        pass
    path = write_chrome_trace(tmp_path / "t.chrome.json", tracer.spans)
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ms"
    (event,) = payload["traceEvents"]
    assert event["ph"] == "X" and event["name"] == "stage"
    assert event["args"] == {"n": 1}
    assert event["dur"] >= 0 and event["pid"] == event["tid"]


def test_null_tracer_is_the_free_ambient_default():
    assert get_tracer() is NULL_TRACER
    assert not NULL_TRACER.enabled and NULL_TRACER.spans == ()
    # One reusable no-op span: no allocation per instrumentation point.
    assert NULL_TRACER.span("a", x=1) is NULL_TRACER.span("b")
    with NULL_TRACER.span("c") as span:
        span.set(ignored=True)
    NULL_TRACER.annotate(ignored=True)
    NULL_TRACER.absorb([], job=0)
    assert NULL_TRACER.spans == ()


def test_resolve_trace_path_prefers_explicit_over_env(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert resolve_trace_path(None) is None
    monkeypatch.setenv("REPRO_TRACE", "/tmp/env.jsonl")
    assert resolve_trace_path(None) == "/tmp/env.jsonl"
    assert resolve_trace_path("/tmp/flag.jsonl") == "/tmp/flag.jsonl"


# ---------------------------------------------------------------------- #
# metrics
# ---------------------------------------------------------------------- #


def test_metrics_merge_is_exact():
    left, right = MetricsRegistry(), MetricsRegistry()
    left.inc("jobs", 3)
    right.inc("jobs", 4)
    left.set_gauge("workers", 1)
    right.set_gauge("workers", 8)
    for value in (0.5, 1.5):
        left.observe("wall_s", value)
    right.observe("wall_s", 4.0)

    left.merge(right.snapshot())
    assert left.counter("jobs") == 7
    assert left.gauges["workers"] == 8  # gauges take the incoming value
    assert left.histograms["wall_s"] == {"count": 3, "sum": 6.0, "min": 0.5, "max": 4.0}


def test_labeled_metric_keys_roundtrip():
    key = labeled("sva.vector_fallback", "width 64\nexceeds limit")
    assert key == "sva.vector_fallback[width 64 exceeds limit]"
    assert split_label(key) == ("sva.vector_fallback", "width 64 exceeds limit")
    assert split_label("plain.counter") == ("plain.counter", None)


def test_phase_records_span_and_duration_histogram():
    tracer = Tracer()
    set_tracer(tracer)
    with scoped_registry() as registry:
        with phase("verify.compile", case="x"):
            pass
    (span,) = tracer.spans
    assert span.name == "verify.compile" and span.attrs == {"case": "x"}
    assert registry.histograms["verify.compile_s"]["count"] == 1


# ---------------------------------------------------------------------- #
# worker telemetry ships through run_jobs
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("workers", [1, 2])
def test_worker_spans_ship_back_through_run_jobs(workers):
    tracer = Tracer()
    with scoped_registry():
        results = run_jobs(list(range(6)), tag_and_double, workers=workers, tracer=tracer)
    assert results == [0, 2, 4, 6, 8, 10]

    run_span = next(span for span in tracer.spans if span.name == "run_jobs")
    assert run_span.attrs["jobs"] == 6
    job_spans = sorted(
        (span for span in tracer.spans if span.name == "job"),
        key=lambda span: span.attrs["job"],
    )
    assert [span.attrs["job"] for span in job_spans] == list(range(6))
    # Worker-side ambient annotate() lands on the shipped job span, and the
    # re-based timeline keeps every job inside the run_jobs window.
    for span in job_spans:
        assert span.attrs["tag"] == f"t{span.attrs['job']}"
        assert span.attrs["ok"] is True
        assert span.start_s >= run_span.start_s - 1e-6


def test_retry_and_quarantine_counters_match_the_fault_plan(tmp_path):
    jobs = [f"job_{i}" for i in range(6)]
    plan = (
        FaultPlan(tmp_path / "plan")
        .inject("job_1", FAULT_RAISE, times=2)  # recovers on the third attempt
        .inject("job_4", FAULT_RAISE)  # every attempt fails -> quarantined
    )
    with scoped_registry() as registry:
        outcomes = run_jobs(
            jobs, stamp, on_error="quarantine", max_attempts=3, fault_plan=plan
        )
    assert outcomes[1].ok and outcomes[1].attempts == 3
    assert not outcomes[4].ok and outcomes[4].attempts == 3
    # retries == sum(attempts - 1) over all jobs; exactly the JobOutcome view.
    assert registry.counter("runtime.retries") == sum(o.attempts - 1 for o in outcomes)
    assert registry.counter("runtime.quarantined") == sum(not o.ok for o in outcomes)
    assert registry.counter(labeled("runtime.failure", PHASE_WORKER)) == 1


def test_timeout_counter_matches_the_fault_plan(tmp_path):
    jobs = [f"job_{i}" for i in range(3)]
    plan = FaultPlan(tmp_path / "plan").inject("job_2", FAULT_HANG, hang_seconds=60.0)
    with scoped_registry() as registry:
        outcomes = run_jobs(
            jobs, stamp, on_error="quarantine", timeout=0.5, fault_plan=plan
        )
    assert not outcomes[2].ok and outcomes[2].failure.exception_type == "JobTimeoutError"
    assert registry.counter("runtime.timeouts") == 1
    assert registry.counter("runtime.quarantined") == 1


# ---------------------------------------------------------------------- #
# byte-identity: telemetry never touches the data path
# ---------------------------------------------------------------------- #


def test_pipeline_datasets_identical_traced_or_untraced(tmp_path):
    untraced = DataAugmentationPipeline(PipelineConfig.small(seed=31, workers=1)).run()
    serial_trace = tmp_path / "serial.jsonl"
    pooled_trace = tmp_path / "pooled.jsonl"
    traced_serial = DataAugmentationPipeline(
        replace(PipelineConfig.small(seed=31, workers=1), trace_path=str(serial_trace))
    ).run()
    traced_pooled = DataAugmentationPipeline(
        replace(PipelineConfig.small(seed=31, workers=2), trace_path=str(pooled_trace))
    ).run()

    assert dataset_bytes(untraced) == dataset_bytes(traced_serial)
    assert dataset_bytes(untraced) == dataset_bytes(traced_pooled)

    data = read_trace(pooled_trace)
    names = {span.name for span in data.spans}
    assert {"pipeline", "pipeline.corpus", "pipeline.stage2", "run_jobs", "job"} <= names
    assert data.meta["kind"] == "pipeline"
    assert data.metrics["histograms"]["pipeline.stage2_s"]["count"] == 1


def test_eval_report_identical_traced_or_untraced(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    datasets = DataAugmentationPipeline(PipelineConfig.small(seed=31)).run()
    assert datasets.sva_eval_machine
    config = EvalConfig(seed=2027, ks=(1, 2), verification_seeds=1, workers=1)

    def summary_of(harness_config) -> str:
        model = AssertSolverModel(seed=31)
        report = EvalHarness(harness_config).run(model, datasets.sva_eval_machine)
        return json.dumps(report.summary(), sort_keys=True)

    plain = summary_of(config)
    flag_trace = tmp_path / "flag.jsonl"
    assert summary_of(replace(config, trace_path=str(flag_trace))) == plain
    data = read_trace(flag_trace)
    names = {span.name for span in data.spans}
    assert {"eval", "eval.propose", "eval.verify", "eval.score"} <= names
    assert data.meta["kind"] == "eval"

    # REPRO_TRACE is the env fallback: same report, trace written to the env path.
    env_trace = tmp_path / "env.jsonl"
    monkeypatch.setenv("REPRO_TRACE", str(env_trace))
    assert summary_of(config) == plain
    assert env_trace.exists()
    assert {"eval", "verify.compile"} <= {s.name for s in read_trace(env_trace).spans}


# ---------------------------------------------------------------------- #
# cache stats
# ---------------------------------------------------------------------- #


def test_result_cache_stats_and_counters(tmp_path):
    with scoped_registry() as registry:
        cache = ResultCache(tmp_path / "cache")
        key = content_key("stats", "v1")
        assert cache.get(key) is None  # cold miss
        cache.put(key, {"value": 7})
        assert cache.get(key) == {"value": 7}  # hit
        cache._path(key).write_text("{not json")  # truncated-write survivor
        assert cache.get(key) is None  # corrupt counts as miss + corrupt
    assert cache.stats() == {
        "hits": 1, "misses": 2, "corrupt_entries": 1, "stale_tmp_swept": 0,
    }
    assert registry.counter("runtime.cache.hits") == 1
    assert registry.counter("runtime.cache.misses") == 2
    assert registry.counter("runtime.cache.corrupt_entries") == 1


def test_result_cache_sweeps_stale_tmp_files(tmp_path):
    root = tmp_path / "cache"
    ResultCache(root)
    orphan = root / "ab" / "deadbeef.json.tmp999"
    orphan.parent.mkdir(parents=True, exist_ok=True)
    orphan.write_text("partial")
    ancient = time.time() - 2 * ResultCache.STALE_TMP_SECONDS
    os.utime(orphan, (ancient, ancient))
    fresh = orphan.with_name("cafef00d.json.tmp1000")
    fresh.write_text("live writer")  # recent: must never be raced

    reopened = ResultCache(root)
    assert not orphan.exists() and fresh.exists()
    assert reopened.stats()["stale_tmp_swept"] == 1


# ---------------------------------------------------------------------- #
# checker engine choices are recorded, never silent
# ---------------------------------------------------------------------- #


def _assertion_design():
    from repro.corpus.templates import all_families

    for family in all_families():
        artifact = family.build(f"obs_{family.name}", **family.parameter_grid[0])
        golden = compile_source(artifact.source)
        if not golden.ok or golden.design is None:
            continue
        trace = Simulator(golden.design).run(
            StimulusGenerator(golden.design, seed=1).mixed_stimulus(random_cycles=24).vectors
        )
        candidates = template_assertion_blocks(artifact.template_svas, artifact.family)
        candidates.extend(mine_assertions(golden.design, trace, max_assertions=5))
        if not candidates:
            continue
        result = compile_source(insert_assertions(artifact.source, candidates))
        if result.ok and result.design is not None and result.design.assertions:
            return result.design
    raise RuntimeError("no template family produced an assertion-bearing design")


def test_engine_choices_are_recorded_per_assertion():
    design = _assertion_design()
    with scoped_registry() as registry:
        checker = CompiledAssertionChecker(design)
    assert set(checker.engine_choices) == {spec.name for spec in design.assertions}
    for choice in checker.engine_choices.values():
        assert choice["engine"] in ("vectorised", "closure", "tree_walker")
        if choice["engine"] == "vectorised":
            assert choice["reason"] is None
    report = checker.engine_report()
    assert sum(report["engines"].values()) == len(design.assertions)
    assert report["assertions"] == checker.engine_choices
    lowered = sum(
        registry.counter(f"sva.lower.{engine}")
        for engine in ("vectorised", "closure", "tree_walker")
    )
    assert lowered == len(design.assertions)


def test_disabling_vectorisation_records_the_reason():
    design = _assertion_design()
    with scoped_registry() as registry:
        checker = CompiledAssertionChecker(design, vectorise=False)
    demoted = [c for c in checker.engine_choices.values() if c["engine"] == "closure"]
    assert demoted, "vectorise=False must demote at least one assertion"
    assert all(c["reason"] == "vectorisation disabled" for c in demoted)
    key = labeled("sva.vector_fallback", "vectorisation disabled")
    assert registry.counter(key) == len(demoted)


def test_attempt_engine_choices_are_recorded_per_assertion():
    """The attempt layer's choice (tensor vs walk) is as visible as the
    series engine's: counters at lowering, labeled fallback reasons, and
    per-assertion fields in engine_report() -- no silent demotion."""
    design = _assertion_design()
    with scoped_registry() as registry:
        checker = CompiledAssertionChecker(design)
    for choice in checker.engine_choices.values():
        assert choice["attempt_engine"] in ("tensor", "walk", "tree_walker")
        if choice["attempt_engine"] == "tensor":
            assert choice["attempt_reason"] is None
        else:
            assert choice["attempt_reason"]
    report = checker.engine_report()
    assert sum(report["attempt_engines"].values()) == len(design.assertions)
    assert report["attempt_engines"]["tensor"] == registry.counter("sva.attempt.tensor")
    assert report["attempt_engines"]["tensor"] > 0

    with scoped_registry() as registry:
        walk_checker = CompiledAssertionChecker(design, attempt_tensor=False)
    demoted = [
        c
        for c in walk_checker.engine_choices.values()
        if c["attempt_engine"] == "walk" and c["attempt_reason"] == "attempt tensor disabled"
    ]
    assert demoted, "attempt_tensor=False must demote at least one assertion"
    key = labeled("sva.attempt_fallback", "attempt tensor disabled")
    assert registry.counter(key) == len(demoted)
    assert walk_checker.engine_report()["attempt_fallback_reasons"][
        "attempt tensor disabled"
    ] == len(demoted)


# ---------------------------------------------------------------------- #
# the run-report CLI
# ---------------------------------------------------------------------- #


def _write_sample_trace(path) -> None:
    tracer = Tracer()
    with tracer.span("pipeline"):
        with tracer.span("job", job=0):
            pass
    registry = MetricsRegistry()
    registry.inc("runtime.cache.hits", 3)
    registry.inc("runtime.cache.misses", 1)
    registry.inc("sva.lower.vectorised", 2)
    registry.inc(labeled("sva.vector_fallback", "width 64 exceeds limit"))
    registry.inc("sva.attempt.tensor", 2)
    registry.inc("sva.attempt.walk", 1)
    registry.inc(labeled("sva.attempt_fallback", "attempt tensor disabled"))
    write_trace(path, tracer, metrics=registry, meta={"kind": "test"})


def test_cli_summarize_renders_a_run_report(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    _write_sample_trace(trace)
    assert obs_main(["summarize", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "run report" in out
    assert "pipeline" in out and "hit rate" in out
    assert "width 64 exceeds limit" in out
    assert "attempt engines" in out and "tensor 2" in out
    assert "attempt tensor disabled" in out


def test_cli_export_chrome_writes_next_to_the_trace(tmp_path):
    trace = tmp_path / "run.jsonl"
    _write_sample_trace(trace)
    assert obs_main(["export-chrome", str(trace)]) == 0
    exported = trace.with_suffix(".chrome.json")
    events = json.loads(exported.read_text())["traceEvents"]
    assert {event["name"] for event in events} == {"pipeline", "job"}


def test_cli_reports_a_missing_trace(tmp_path, capsys):
    assert obs_main(["summarize", str(tmp_path / "absent.jsonl")]) == 2
    assert "absent.jsonl" in capsys.readouterr().err


# ---------------------------------------------------------------------- #
# static-analysis telemetry (repro.analyze)
# ---------------------------------------------------------------------- #


def test_summarize_renders_static_analysis_section(tmp_path, capsys):
    trace = tmp_path / "screened.jsonl"
    tracer = Tracer()
    with tracer.span("eval"):
        pass
    registry = MetricsRegistry()
    registry.inc("analyze.cone.skip", 5)
    registry.inc("analyze.cone.overlap", 2)
    registry.inc("analyze.screen.reject", 1)
    registry.inc("analyze.pass.dead-code", 3)
    registry.inc("analyze.pass.width-truncation", 1)
    registry.inc("stage2.cone_skips", 4)
    write_trace(trace, tracer, metrics=registry, meta={"kind": "eval"})

    assert obs_main(["summarize", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "static analysis:" in out
    assert "5 cone skips" in out and "2 cone overlaps" in out and "1 lint rejects" in out
    assert "stage2 mutants classified without simulation: 4" in out
    assert "dead-code" in out and "width-truncation" in out
    # Consumed by the dedicated section: never duplicated under "other counters".
    assert "analyze.cone.skip:" not in out
    assert "stage2.cone_skips:" not in out


def test_screened_verifier_emits_counters_and_identical_verdicts():
    from repro.eval.verifier import CandidateFix, SemanticVerifier, VerifierConfig

    source = """
module obsx (input wire clk, input wire en, output reg [3:0] n, output wire hi);
    assign hi = (n > 4'd8);
    always @(posedge clk) begin
        if (en) n <= n + 4'd1;
        else n <= 4'd0;
    end
    a_zero: assert property (@(posedge clk) !en |=> n == 4'd0);
endmodule
"""
    fix = CandidateFix(line_number=3, fixed_line="    assign hi = (n > 4'd9);")
    with scoped_registry() as registry:
        screened = SemanticVerifier(VerifierConfig(cycles=16, static_screen="full"))
        verdict = screened.verify(source, fix, (3, 4))
        assert verdict.provenance == "cone_skip"
        assert registry.counter("analyze.cone.skip") == 1
        # The per-pass phase timings ride the standard histogram channel, so
        # `summarize` lists them under "phase durations" with no extra wiring.
        snapshot = registry.snapshot()
        assert "verify.screen_s" in snapshot["histograms"]

    with scoped_registry():
        off = SemanticVerifier(VerifierConfig(cycles=16, static_screen="off"))
        baseline = off.verify(source, fix, (3, 4))
    screened_payload = verdict.to_dict()
    baseline_payload = baseline.to_dict()
    assert screened_payload.pop("provenance") == "cone_skip"
    assert baseline_payload.pop("provenance") == "simulated"
    assert screened_payload == baseline_payload
