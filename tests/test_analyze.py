"""Unit tests for the static-analysis subsystem (repro.analyze).

Covers the signal dataflow graph (def/use chains, cones, cycle detection),
the pass framework (registry, lint/analysis tiers, individual pass
behaviour), the unification of the historical lint checks with the
framework, and the ``python -m repro.analyze`` CLI.
"""

import pytest

from repro.analyze import (
    AnalysisContext,
    SignalDfg,
    build_dfg,
    get_pass,
    lint_passes,
    register_pass,
    registered_passes,
    run_passes,
)
from repro.analyze.__main__ import main as analyze_main
from repro.artifacts import ArtifactStore
from repro.hdl.errors import Severity
from repro.hdl.lint import compile_source

COUNTER = """
module counter (
    input wire clk,
    input wire rst_n,
    input wire en,
    output reg [3:0] count,
    output wire at_max
);
    assign at_max = (count == 4'd15);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) count <= 4'd0;
        else if (en) count <= count + 4'd1;
    end
    property p_hold;
        @(posedge clk) disable iff (!rst_n) !en |=> count == $past(count);
    endproperty
    a_hold: assert property (p_hold);
endmodule
"""


def design_of(text):
    result = compile_source(text)
    assert result.ok and result.design is not None, result.render()
    return result.design


# --------------------------------------------------------------------------- #
# the dataflow graph
# --------------------------------------------------------------------------- #


def test_dfg_defs_uses_and_cones():
    design = design_of(COUNTER)
    dfg = build_dfg(design)

    assert {node.kind for node in dfg.nodes} == {"assign", "seq"}
    (assign_node,) = dfg.defs_of["at_max"]
    assert assign_node.kind == "assign"
    assert "count" in assign_node.uses
    (seq_node,) = dfg.defs_of["count"]
    # Sensitivity-list signals count as uses: editing them must dirty the node.
    assert {"clk", "rst_n", "en", "count"} <= seq_node.uses

    # Fan-out inverts fan-in.
    assert "at_max" in dfg.fan_out["count"]
    assert "count" in dfg.fan_in["at_max"]

    (spec,) = design.assertions
    cone = dfg.assertion_cone(spec)
    # Body signals, their fan-in, the clock and the disable-iff signal.
    assert {"en", "count", "clk", "rst_n"} <= cone
    # at_max feeds nothing the assertion observes.
    assert "at_max" not in cone
    assert dfg.assertion_cones() == {"a_hold": cone}


def test_dfg_cone_matches_design_cone_of_influence():
    design = design_of(COUNTER)
    dfg = build_dfg(design)
    roots = {"count", "en"}
    assert dfg.fan_in_cone(roots) == design.cone_of_influence(roots)


def test_dfg_detects_combinational_cycles_with_path():
    design = design_of(
        """
        module loopy (input wire a, output wire x);
            wire y;
            assign x = y & a;
            assign y = x | a;
        endmodule
        """
    )
    dfg = build_dfg(design)
    cycles = dfg.combinational_cycles()
    assert len(cycles) == 1
    path = cycles[0]
    assert path[0] == path[-1]
    assert set(path) == {"x", "y"}
    # An acyclic design reports none.
    assert build_dfg(design_of(COUNTER)).combinational_cycles() == ()


def test_dfg_node_keys_diff_under_edit():
    base = build_dfg(design_of(COUNTER))
    patched = build_dfg(design_of(COUNTER.replace("4'd15", "4'd14")))
    base_keys = base.node_keys()
    patched_keys = patched.node_keys()
    changed = {
        key
        for key in set(base_keys) | set(patched_keys)
        if base_keys.get(key, 0) != patched_keys.get(key, 0)
    }
    # Exactly the at_max assign differs, in both directions.
    assert len(changed) == 2
    touched = set()
    for dfg in (base, patched):
        for key in changed:
            touched |= dfg.defs_of_key(key)
    assert touched == {"at_max"}


def test_artifact_store_caches_dataflow_by_fingerprint():
    store = ArtifactStore()
    design = design_of(COUNTER)
    twin = design_of(COUNTER)
    first = store.dataflow(design)
    assert store.dataflow(design) is first
    assert store.dataflow(twin) is first  # content-addressed, not object-addressed


# --------------------------------------------------------------------------- #
# the pass framework
# --------------------------------------------------------------------------- #


def test_registry_contains_stable_pass_ids():
    ids = [p.pass_id for p in registered_passes()]
    assert len(ids) == len(set(ids))
    expected_lint = {
        "undeclared-signal",
        "input-driven",
        "multiple-drivers",
        "undriven",
        "system-functions",
        "assignment-style",
    }
    expected_analysis = {
        "dead-code",
        "width-truncation",
        "latch-inference",
        "comb-loop",
        "unknown-reachability",
    }
    assert {p.pass_id for p in registered_passes() if p.lint} == expected_lint
    assert {p.pass_id for p in registered_passes() if not p.lint} == expected_analysis
    assert {p.pass_id for p in lint_passes()} == expected_lint
    assert get_pass("dead-code").lint is False
    with pytest.raises(KeyError):
        get_pass("no-such-pass")


def test_register_pass_rejects_duplicate_ids():
    with pytest.raises(ValueError):

        @register_pass("dead-code", "duplicate")
        def _dup(context, sink):  # pragma: no cover - never runs
            pass


def test_analysis_passes_never_gate_compilation():
    # dead-write + latch-inference bait that must still compile cleanly.
    result = compile_source(
        """
        module quiet (input wire a, input wire b, output reg q);
            reg scratch;
            always @(*) begin
                if (a) q = b;
            end
            always @(*) scratch = a & b;
        endmodule
        """
    )
    assert result.ok, result.render()
    sink = run_passes(result.design)
    assert any(diag.code == "latch-inferred" for diag in sink.diagnostics)
    assert any(diag.code == "dead-write" for diag in sink.diagnostics)


def test_dead_code_pass_flags_unread_writes_and_unreachable_branches():
    design = design_of(
        """
        module deadly (input wire clk, input wire a, output reg q);
            reg unused_r;
            always @(posedge clk) unused_r <= a;
            always @(posedge clk) begin
                if (1'b0) q <= 1'b1;
                else q <= a;
            end
        endmodule
        """
    )
    sink = run_passes(design, passes=[get_pass("dead-code")])
    codes = [diag.code for diag in sink.diagnostics]
    assert "dead-write" in codes
    assert "unreachable-branch" in codes
    dead = next(d for d in sink.diagnostics if d.code == "dead-write")
    assert "unused_r" in dead.message
    assert dead.line > 0


def test_width_truncation_pass_flags_wide_rhs_but_not_flexible_literals():
    design = design_of(
        """
        module widths (input wire [3:0] a, input wire [3:0] b,
                       output wire narrow, output reg [3:0] count);
            assign narrow = a & b;
            always @(*) count = count + 1;
        endmodule
        """
    )
    sink = run_passes(design, passes=[get_pass("width-truncation")])
    assert len(sink.diagnostics) == 1
    diag = sink.diagnostics[0]
    assert diag.code == "width-truncation"
    assert "narrow" in diag.message
    # `count + 1` must NOT warn: unsized literals adapt to context.


def test_unknown_reachability_names_uninitialised_in_cone_registers():
    design = design_of(
        """
        module floaty (input wire clk, input wire d, output reg q);
            always @(posedge clk) q <= d;
            a_q: assert property (@(posedge clk) q |-> d);
        endmodule
        """
    )
    sink = run_passes(design, passes=[get_pass("unknown-reachability")])
    assert [diag.code for diag in sink.diagnostics] == ["unknown-reachability"]
    assert "a_q" in sink.diagnostics[0].message

    # A reset gives the register a constant init path: no warning.
    reset_design = design_of(
        """
        module grounded (input wire clk, input wire rst_n, input wire d, output reg q);
            always @(posedge clk or negedge rst_n) begin
                if (!rst_n) q <= 1'b0;
                else q <= d;
            end
            a_q: assert property (@(posedge clk) disable iff (!rst_n) q |-> d);
        endmodule
        """
    )
    sink = run_passes(reset_design, passes=[get_pass("unknown-reachability")])
    assert sink.diagnostics == []


def test_comb_loop_pass_reports_cycle_path():
    design = design_of(
        """
        module loopy (input wire a, output wire x);
            wire y;
            assign x = y & a;
            assign y = x | a;
        endmodule
        """
    )
    sink = run_passes(design, passes=[get_pass("comb-loop")])
    assert len(sink.diagnostics) == 1
    diag = sink.diagnostics[0]
    assert diag.code == "comb-loop"
    assert diag.severity is Severity.WARNING
    assert "->" in diag.message
    assert diag.line > 0


def test_lint_tier_matches_compile_source_diagnostics():
    """lint_design via the framework keeps the historical codes and gate."""
    result = compile_source(
        """
        module broken (input wire a, output wire q);
            assign q = nosuch & a;
        endmodule
        """
    )
    assert not result.ok
    assert any(d.code == "undeclared-signal" for d in result.errors)

    # The S1 span fix: multiple-driver diagnostics carry a real line now.
    warned = compile_source(
        """
        module doubled (input wire a, input wire b, output wire q);
            assign q = a;
            assign q = b;
        endmodule
        """
    )
    assert warned.ok
    multi = [d for d in warned.diagnostics if d.code == "multiple-drivers"]
    assert multi and all(d.line > 0 for d in multi)


def test_analysis_context_lazy_dfg(tmp_path):
    design = design_of(COUNTER)
    context = AnalysisContext(design)
    assert context._dfg is None
    assert isinstance(context.dfg, SignalDfg)
    assert context.dfg is context.dfg


def test_pass_counters_land_in_registry():
    from repro.obs import MetricsRegistry, set_registry

    previous = set_registry(MetricsRegistry())
    try:
        design = design_of(
            """
            module quiet (input wire a, output reg q);
                always @(*) begin
                    if (a) q = 1'b1;
                end
            endmodule
            """
        )
        run_passes(design, passes=[get_pass("latch-inference")])
        from repro.obs import get_registry

        counters = get_registry().snapshot()["counters"]
        assert counters.get("analyze.pass.latch-inference", 0) >= 1
    finally:
        set_registry(previous)


# --------------------------------------------------------------------------- #
# the CLI
# --------------------------------------------------------------------------- #


def test_cli_list_passes(capsys):
    assert analyze_main(["--list-passes"]) == 0
    out = capsys.readouterr().out
    assert "dead-code" in out
    assert "[lint]" in out and "[analysis]" in out


def test_cli_reports_cones_and_diagnostics(tmp_path, capsys):
    path = tmp_path / "counter.v"
    path.write_text(COUNTER)
    assert analyze_main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "a_hold" in out
    assert "combinational loops: none" in out

    bad = tmp_path / "bad.v"
    bad.write_text("module bad (output wire q);\n    assign q = nosuch;\nendmodule\n")
    assert analyze_main([str(bad)]) == 1
    assert analyze_main([str(tmp_path / "missing.v")]) == 2
