"""repro.eval tests: verifier verdicts, independent seeds, worker-count and
cache determinism of the benchmark harness, and semantic challenging-case
mining."""

import pytest

from repro.dataaug.datasets import SvaBugEntry
from repro.dataaug.pipeline import DataAugmentationPipeline, PipelineConfig
from repro.eval.cache import VerdictCache, verdict_key
from repro.eval.harness import EvalConfig, EvalHarness
from repro.eval.reports import read_split, write_reports
from repro.eval.verifier import (
    CandidateFix,
    SemanticVerifier,
    derive_verification_seeds,
)
from repro.model.assertsolver_model import AssertSolverModel
from repro.model.challenging import collect_challenging_cases, response_is_correct
from repro.model.response import RepairEngine, RepairResponse
from repro.model.sft import SftConfig


@pytest.fixture(scope="module")
def datasets():
    return DataAugmentationPipeline(PipelineConfig.small()).run()


@pytest.fixture(scope="module")
def sft_model(datasets):
    model = AssertSolverModel(seed=97)
    model.pretrain(datasets.verilog_pt)
    model.supervised_finetune(
        datasets.sva_bug_train, datasets.verilog_bug, config=SftConfig(epochs=4)
    )
    return model


def eval_config(**overrides) -> EvalConfig:
    defaults = dict(seed=2027, ks=(1, 3), verification_seeds=2)
    defaults.update(overrides)
    return EvalConfig(**defaults)


# ---------------------------------------------------------------------- #
# verifier
# ---------------------------------------------------------------------- #


def test_golden_fix_passes_and_unrepaired_design_fails(datasets):
    """The two verifier anchors: applying the golden line repairs every
    held-out case, and leaving the buggy line in place never counts."""
    verifier = SemanticVerifier()
    assert datasets.sva_eval_machine
    for entry in datasets.sva_eval_machine:
        seeds = derive_verification_seeds(entry.name, entry.stimulus_seed)
        golden = verifier.verify(
            entry.buggy_source,
            CandidateFix(entry.line_number, entry.golden_line, entry.buggy_line),
            seeds,
        )
        assert golden.passed, (entry.name, golden.status, golden.detail)
        assert golden.exercised, entry.name
        noop = verifier.verify(
            entry.buggy_source,
            CandidateFix(entry.line_number, entry.buggy_line, entry.buggy_line),
            seeds,
        )
        assert noop.status == "assertion_fail", (entry.name, noop.status)
        assert noop.failing_assertions


def test_broken_fix_is_a_compile_failure(datasets):
    entry = datasets.sva_eval_machine[0]
    verifier = SemanticVerifier()
    verdict = verifier.verify(
        entry.buggy_source,
        CandidateFix(entry.line_number, "this is not verilog (", entry.buggy_line),
        derive_verification_seeds(entry.name, entry.stimulus_seed),
    )
    assert verdict.status == "compile_fail"
    assert verdict.detail


def test_out_of_range_fix_is_not_applicable(datasets):
    entry = datasets.sva_eval_machine[0]
    verdict = SemanticVerifier().verify(
        entry.buggy_source,
        CandidateFix(10_000, "x <= 0;"),
        derive_verification_seeds(entry.name, entry.stimulus_seed),
    )
    assert verdict.status == "not_applicable"


def test_verification_seeds_never_reuse_the_mining_seed(datasets):
    for mining_seed in (0, 1, 2127, 0x7FFFFFFF):
        seeds = derive_verification_seeds("some_case", mining_seed, count=4)
        assert mining_seed not in seeds
        assert len(set(seeds)) == 4
        # Deterministic: same name, same seeds.
        assert seeds == derive_verification_seeds("some_case", mining_seed, count=4)
    for entry in datasets.all_sva_entries:
        assert entry.stimulus_seed not in derive_verification_seeds(
            entry.name, entry.stimulus_seed
        )


def test_verifier_cycles_override_controls_stimulus_length():
    """Per-call cycle budgets (used for per-entry stimulus_cycles) are
    honoured and keyed separately in the caches."""
    entry = semantic_entry()
    verifier = SemanticVerifier()
    seeds = derive_verification_seeds(entry.name, entry.stimulus_seed)
    fix = CandidateFix(entry.line_number, entry.golden_line, entry.buggy_line)
    short = verifier.verify(entry.buggy_source, fix, seeds, cycles=8)
    default = verifier.verify(entry.buggy_source, fix, seeds)
    assert short.cycles == 8 and short.passed
    assert default.cycles == 48 and default.passed


def test_verdict_cache_round_trip(tmp_path):
    cache = VerdictCache(tmp_path / "cache")
    key = verdict_key("patched src", (1, 2), 48, 2, "v1")
    assert cache.get(key) is None
    cache.put(key, {"status": "pass"})
    assert cache.get(key) == {"status": "pass"}
    # The key is content-addressed: any input change gives a different key.
    assert key != verdict_key("patched src2", (1, 2), 48, 2, "v1")
    assert key != verdict_key("patched src", (1, 3), 48, 2, "v1")
    assert key != verdict_key("patched src", (1, 2), 64, 2, "v1")
    assert key != verdict_key("patched src", (1, 2), 48, 3, "v1")
    assert key != verdict_key("patched src", (1, 2), 48, 2, "v2")


def test_cache_keys_on_the_patched_source_not_the_fix():
    """Two fixes with identical (line_number, fixed_line) that relocate to
    *different* lines via bug_line must never share a verdict."""
    entry = semantic_entry()
    verifier = SemanticVerifier()
    seeds = derive_verification_seeds(entry.name, entry.stimulus_seed)
    relocated_ok = verifier.verify(
        entry.buggy_source,
        CandidateFix(10_000, "else y <= a | b;", bug_line="else y <= a & b;"),
        seeds,
    )
    relocated_broken = verifier.verify(
        entry.buggy_source,
        CandidateFix(10_000, "else y <= a | b;", bug_line="if (!rst_n) y <= 4'd0;"),
        seeds,
    )
    assert relocated_ok.status == "pass" and relocated_ok.applied_line_number == 10
    assert relocated_broken.status == "compile_fail"
    assert relocated_broken.applied_line_number == 9


# ---------------------------------------------------------------------- #
# harness determinism
# ---------------------------------------------------------------------- #


def test_harness_is_worker_count_invariant(datasets, sft_model):
    serial = EvalHarness(eval_config(workers=1)).run(sft_model, datasets.sva_eval_machine)
    fanned = EvalHarness(eval_config(workers=4)).run(sft_model, datasets.sva_eval_machine)
    assert serial.summary() == fanned.summary()
    assert [case.to_dict() for case in serial.cases] == [case.to_dict() for case in fanned.cases]


def test_harness_is_cache_state_invariant(datasets, sft_model, tmp_path):
    cache_dir = tmp_path / "verdicts"
    cold = EvalHarness(eval_config(cache_dir=cache_dir)).run(sft_model, datasets.sva_eval_machine)
    warm = EvalHarness(eval_config(cache_dir=cache_dir, workers=2)).run(
        sft_model, datasets.sva_eval_machine
    )
    assert cold.summary() == warm.summary()
    assert [case.to_dict() for case in cold.cases] == [case.to_dict() for case in warm.cases]
    assert cold.cache_misses > 0
    assert warm.cache_misses == 0 and warm.cache_hits == cold.cache_misses


def test_harness_is_checker_backend_invariant(datasets, sft_model):
    """The checker backend reaches the verification workers and cannot
    change any outcome -- forcing the tree-walking oracle through the full
    harness path must reproduce the compiled run byte for byte."""
    compiled = EvalHarness(eval_config()).run(sft_model, datasets.sva_eval_machine)
    oracle = EvalHarness(eval_config(checker_backend="interp", workers=2)).run(
        sft_model, datasets.sva_eval_machine
    )
    assert compiled.summary() == oracle.summary()
    assert [case.to_dict() for case in compiled.cases] == [
        case.to_dict() for case in oracle.cases
    ]


def test_forced_oracle_backend_does_not_reuse_compiled_cache(datasets, sft_model, tmp_path):
    """A differential re-run with the tree-walking oracle must re-verify:
    serving it the compiled run's cached verdicts would mask divergences."""
    cache_dir = tmp_path / "verdicts"
    compiled = EvalHarness(eval_config(cache_dir=cache_dir)).run(
        sft_model, datasets.sva_eval_machine
    )
    oracle = EvalHarness(eval_config(cache_dir=cache_dir, checker_backend="interp")).run(
        sft_model, datasets.sva_eval_machine
    )
    assert compiled.cache_misses > 0
    assert oracle.cache_misses == compiled.cache_misses  # nothing served cross-backend
    assert compiled.summary() == oracle.summary()


def test_harness_is_entry_order_invariant(datasets, sft_model):
    forward = EvalHarness(eval_config()).run(sft_model, datasets.sva_eval_machine)
    backward = EvalHarness(eval_config()).run(
        sft_model, list(reversed(datasets.sva_eval_machine))
    )
    assert forward.summary() == backward.summary()


def test_reports_round_trip(datasets, sft_model, tmp_path):
    report = EvalHarness(eval_config()).run(sft_model, datasets.sva_eval_machine)
    paths = write_reports(report, tmp_path / "out", split=datasets.sva_eval_machine)
    assert paths["summary"].exists() and paths["cases"].exists()
    import json

    summary = json.loads(paths["summary"].read_text())
    assert summary["schema"] == "repro_eval/v1"
    assert "pass@1" in summary and "pass@3" in summary
    assert summary["cases"] == len(datasets.sva_eval_machine)
    restored = read_split(paths["split"])
    assert [e.to_dict() for e in restored] == [
        e.to_dict() for e in sorted(datasets.sva_eval_machine, key=lambda e: e.name)
    ]


def test_propose_topk_is_distinct_ranked_and_deterministic(datasets, sft_model):
    from repro.model.case import RepairCase

    case = RepairCase.from_entry(datasets.sva_eval_machine[0])
    first = sft_model.propose_topk(case, k=5)
    second = sft_model.propose_topk(case, k=5, seed=12345)  # seed must not matter
    assert [(r.line_number, r.fixed_line) for r in first] == [
        (r.line_number, r.fixed_line) for r in second
    ]
    keys = {(r.line_number, " ".join(r.fixed_line.split())) for r in first}
    assert len(keys) == len(first)
    confidences = [r.confidence for r in first]
    assert confidences == sorted(confidences, reverse=True)


# ---------------------------------------------------------------------- #
# semantic challenging-case mining
# ---------------------------------------------------------------------- #

_SEM_BUGGY = """module semor(
    input wire clk,
    input wire rst_n,
    input wire [3:0] a,
    input wire [3:0] b,
    output reg [3:0] y
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) y <= 4'd0;
        else y <= a & b;
    end
    property p_or;
        @(posedge clk) disable iff (!rst_n) $past(rst_n) |-> y == ($past(a) | $past(b));
    endproperty
    a_or: assert property (p_or) else $error("or mismatch");
endmodule
"""


def semantic_entry() -> SvaBugEntry:
    return SvaBugEntry(
        name="semor_sb0",
        design_name="semor",
        family="hand",
        origin="machine",
        spec="y registers the bitwise OR of a and b.",
        golden_source=_SEM_BUGGY.replace("a & b", "a | b"),
        buggy_source=_SEM_BUGGY,
        logs="simulation of semor: 1 assertion(s) failed\n"
        'failed assertion semor.a_or at cycle 5: "or mismatch"',
        failing_assertions=["a_or"],
        line_number=10,
        golden_line="        else y <= a | b;",
        buggy_line="        else y <= a & b;",
        edit_kind="op",
        is_conditional=False,
        is_direct=True,
        stimulus_seed=123,
    )


class ScriptedEngine(RepairEngine):
    """Returns a fixed response list regardless of sampling parameters."""

    name = "scripted"

    def __init__(self, responses):
        self._responses = responses

    def propose(self, case, samples=20, temperature=0.2, seed=0):
        return list(self._responses)


def test_semantic_correctness_accepts_equivalent_rewrites():
    entry = semantic_entry()
    verifier = SemanticVerifier()
    commuted = RepairResponse(
        bug_line="else y <= a & b;", fixed_line="else y <= b | a;", line_number=10
    )
    wrong = RepairResponse(
        bug_line="else y <= a & b;", fixed_line="else y <= a ^ b;", line_number=10
    )
    # Textually `b | a` differs from the golden `a | b`, but it behaves
    # identically -- the semantic check must accept it...
    assert response_is_correct(entry, commuted, verifier=verifier)
    # ...while the pre-verifier textual check alone would have rejected it.
    assert not response_is_correct(entry, commuted, verifier=None)
    assert not response_is_correct(entry, wrong, verifier=verifier)


def test_vacuous_pass_is_not_a_correct_repair():
    """A rewrite that stops the assertion from ever firing simulates cleanly
    but repairs nothing: it must not count for mining or for pass@k."""
    entry = semantic_entry()
    verifier = SemanticVerifier()
    vacuous = RepairResponse(
        bug_line="@(posedge clk) disable iff (!rst_n) $past(rst_n) |-> y == ($past(a) | $past(b));",
        fixed_line="@(posedge clk) disable iff (!rst_n) 1'b0 |-> y == 4'd0;",
        line_number=13,
    )
    seeds = derive_verification_seeds(entry.name, entry.stimulus_seed)
    verdict = verifier.verify(
        entry.buggy_source,
        CandidateFix(vacuous.line_number, vacuous.fixed_line, vacuous.bug_line),
        seeds,
    )
    assert verdict.passed and not verdict.exercised
    assert not response_is_correct(entry, vacuous, verifier=verifier)

    from repro.eval.harness import CandidateOutcome, CaseResult

    case = CaseResult(
        name=entry.name,
        design_name=entry.design_name,
        family=entry.family,
        length_bin=entry.length_bin,
        bug_type_labels=entry.bug_type_labels,
        verification_seeds=seeds,
        mining_seed=entry.stimulus_seed,
        candidates=[
            CandidateOutcome(
                rank=1,
                line_number=vacuous.line_number,
                fixed_line=vacuous.fixed_line,
                confidence=1.0,
                verdict=verdict,
            )
        ],
    )
    assert case.first_pass_rank is None and not case.passed_at(1)


def test_challenging_cases_are_mined_by_behaviour():
    entry = semantic_entry()
    engine = ScriptedEngine(
        [
            RepairResponse(
                bug_line="else y <= a & b;", fixed_line="else y <= b | a;", line_number=10
            ),
            RepairResponse(
                bug_line="else y <= a & b;", fixed_line="else y <= a ^ b;", line_number=10
            ),
            RepairResponse(  # duplicate of the wrong one: deduplicated before verification
                bug_line="else y <= a & b;", fixed_line="else y <= a ^ b;", line_number=10
            ),
        ]
    )
    triples, stats = collect_challenging_cases(engine, [entry], samples=3)
    assert stats == {"evaluated": 1, "challenging": 1, "incorrect_responses": 1}
    assert len(triples) == 1
    negatives = triples[0].negatives
    assert negatives == [(10, "else y <= a ^ b;")]
