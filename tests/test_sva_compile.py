"""Differential tests: the compiled SVA checker must match the tree-walker.

Every corpus template family's representative design is augmented with its
template + mined assertions, simulated on seeded stimulus, and checked by
both backends; outcomes must agree field for field -- attempts, antecedent
matches, passes, vacuous/pending/disabled counts and every failure's start
and failing cycle.  Injected mutants exercise the failure paths the golden
designs never reach.

The file also carries the regression tests for the two sampled-value
semantics fixes: ``$past(x, DEPTH)`` with a parameter depth, and the width
of the pre-cycle-0 unknown for non-identifier ``$past`` arguments.
"""

import pytest

from repro.bugs.injector import BugInjector, InjectionConfig
from repro.corpus.templates import all_families
from repro.hdl import ast
from repro.hdl.elaborate import AssertionSpec
from repro.hdl.lint import compile_source
from repro.sim.compile import CompileError
from repro.sim.engine import SimulationError, Simulator
from repro.sim.stimulus import StimulusGenerator
from repro.sva.checker import (
    AssertionChecker,
    CheckerBackend,
    check_assertions,
    infer_expression_width,
    sampled_past_depth,
)
from repro.sva.compile import CompiledAssertionChecker
from repro.sva.generator import insert_assertions, mine_assertions, template_assertion_blocks

FAMILIES = all_families()


def outcome_fields(outcome):
    return outcome.comparison_key()


def assert_reports_identical(design, trace):
    interp = AssertionChecker(design).check(trace)
    compiled = CheckerBackend(design, backend="compiled").check(trace)
    walk = CompiledAssertionChecker(design, attempt_tensor=False).check(trace)
    closure = CompiledAssertionChecker(design, vectorise=False).check(trace)
    assert sorted(interp.outcomes) == sorted(compiled.outcomes) == sorted(closure.outcomes)
    for name in interp.outcomes:
        assert outcome_fields(interp.outcomes[name]) == outcome_fields(
            compiled.outcomes[name]
        ), f"assertion '{name}' diverges between checker backends"
        assert outcome_fields(interp.outcomes[name]) == outcome_fields(
            walk.outcomes[name]
        ), f"assertion '{name}' diverges on the walk (attempt_tensor=False) path"
        assert outcome_fields(interp.outcomes[name]) == outcome_fields(
            closure.outcomes[name]
        ), f"assertion '{name}' diverges on the closure (vectorise=False) path"


def augmented_design(family, prefix="dut"):
    """(source, design) of the family's representative with assertions inserted."""
    artifact = family.build(f"{prefix}_{family.name}", **family.parameter_grid[0])
    golden = compile_source(artifact.source)
    if not golden.ok or golden.design is None:
        return None, None
    mining_trace = Simulator(golden.design).run(
        StimulusGenerator(golden.design, seed=7).mixed_stimulus(random_cycles=24).vectors
    )
    candidates = template_assertion_blocks(artifact.template_svas, artifact.family)
    candidates.extend(mine_assertions(golden.design, mining_trace, max_assertions=5))
    if not candidates:
        return None, None
    augmented = insert_assertions(artifact.source, candidates)
    result = compile_source(augmented)
    if not result.ok or result.design is None:
        return None, None
    return augmented, result.design


@pytest.mark.parametrize("family", FAMILIES, ids=[f.name for f in FAMILIES])
def test_family_outcomes_identical(family):
    _, design = augmented_design(family)
    if design is None or not design.assertions:
        pytest.skip("family yields no checkable assertions")
    vectors = StimulusGenerator(design, seed=8).mixed_stimulus(random_cycles=32).vectors
    assert_reports_identical(design, Simulator(design).run(vectors))


@pytest.mark.parametrize("backend", ["compiled", "walk", "closure", "interp"])
def test_check_batch_matches_per_trace_check(backend):
    """One batched pass over several seed traces (the verifier's shape) must
    be outcome-identical to checking each trace individually, in order.

    The ``compiled`` leg exercises the stacked (seed x cycle) tensor pass;
    ragged trace lengths make the padding/masking load-bearing."""
    checked = 0
    for family in FAMILIES[:8]:
        _, design = augmented_design(family, prefix=f"batch_{backend}")
        if design is None or not design.assertions:
            continue
        if backend == "closure":
            checker = CompiledAssertionChecker(design, vectorise=False)
        elif backend == "walk":
            checker = CompiledAssertionChecker(design, attempt_tensor=False)
        else:
            checker = CheckerBackend(design, backend=backend)
        traces = [
            Simulator(design).run(
                StimulusGenerator(design, seed=40 + index)
                .mixed_stimulus(random_cycles=24 - 7 * index)
                .vectors
            )
            for index in range(3)
        ]
        batched = checker.check_batch(traces)
        singles = [checker.check(trace) for trace in traces]
        assert len(batched) == len(singles)
        for one, via_batch in zip(singles, batched):
            assert list(one.outcomes) == list(via_batch.outcomes)
            for name in one.outcomes:
                assert outcome_fields(one.outcomes[name]) == outcome_fields(
                    via_batch.outcomes[name]
                ), f"assertion '{name}' diverges between check and check_batch"
        checked += 1
    assert checked >= 4


@pytest.mark.parametrize("seed", [13, 29])
def test_mutant_outcomes_identical(seed):
    """Buggy designs (where assertions actually fail) must also agree."""
    injector = BugInjector(InjectionConfig(seed=seed, max_bugs_per_design=2))
    checked = failing = 0
    for family in FAMILIES[:12]:
        source, design = augmented_design(family, prefix=f"mut{seed}")
        if design is None or not design.assertions:
            continue
        for bug in injector.inject(f"mut{seed}_{family.name}", source, design):
            buggy = compile_source(bug.buggy_source)
            if not buggy.ok or buggy.design is None:
                continue
            try:
                trace = Simulator(buggy.design).run(
                    StimulusGenerator(buggy.design, seed=9)
                    .mixed_stimulus(random_cycles=24)
                    .vectors
                )
            except SimulationError:
                continue
            assert_reports_identical(buggy.design, trace)
            checked += 1
            if not AssertionChecker(buggy.design).check(trace).passed:
                failing += 1
    assert checked >= 5
    assert failing >= 1, "no mutant produced a failing report; test lost its teeth"


# --------------------------------------------------------------------------- #
# backend dispatch
# --------------------------------------------------------------------------- #


SHIFT2_SOURCE = """
module shift2 #(parameter DEPTH = 2) (
    input wire clk,
    input wire rst_n,
    input wire [3:0] a,
    output reg [3:0] b,
    output reg [3:0] c
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            b <= 4'd0;
            c <= 4'd0;
        end else begin
            b <= a;
            c <= b;
        end
    end
    property p_depth;
        @(posedge clk) disable iff (!rst_n) 1'b1 |-> c == $past(a, DEPTH);
    endproperty
    a_depth: assert property (p_depth);
    property p_one;
        @(posedge clk) disable iff (!rst_n) 1'b1 |-> c == $past(a);
    endproperty
    a_one: assert property (p_one);
    property p_width;
        @(posedge clk) !(($past(a ^ b) === 1'bx));
    endproperty
    a_width: assert property (p_width);
endmodule
"""


def shift2_design():
    result = compile_source(SHIFT2_SOURCE)
    assert result.ok and result.design is not None, result.render()
    return result.design


def shift2_trace(design, cycles=24):
    # Reset for two cycles, then feed a distinct value every cycle so a
    # depth-1 and a depth-2 $past can never agree by accident.
    vectors = [{"rst_n": 0, "a": 0}, {"rst_n": 0, "a": 0}]
    vectors += [{"rst_n": 1, "a": (3 * i + 1) % 16} for i in range(cycles)]
    return Simulator(design).run(vectors)


def test_checker_backend_factory_dispatch():
    design = shift2_design()
    assert isinstance(CheckerBackend(design, backend="interp"), AssertionChecker)
    assert isinstance(CheckerBackend(design, backend="auto"), CompiledAssertionChecker)
    assert isinstance(CheckerBackend(design, backend="compiled"), CompiledAssertionChecker)
    with pytest.raises(ValueError):
        CheckerBackend(design, backend="fpga")


def test_check_assertions_caches_checker_in_artifact_store():
    # The lowered checker lives in the process-wide artifact cache keyed by
    # content fingerprint -- not as a hidden attribute pinned on the design
    # object -- so repeat checks reuse one lowering, the design still
    # pickles, and even a *fresh elaboration* of the same source hits.
    import pickle

    from repro.artifacts import default_store

    design = shift2_design()
    trace = shift2_trace(design)
    first = check_assertions(design, trace)
    assert "_checker_backend_cache" not in design.__dict__
    checker = default_store().checker(design)
    second = check_assertions(design, trace)
    assert default_store().checker(design) is checker
    assert default_store().checker(shift2_design()) is checker
    pickle.dumps(design)
    for name in first.outcomes:
        assert outcome_fields(first.outcomes[name]) == outcome_fields(second.outcomes[name])


def test_strict_compiled_backend_rejects_unloweable_assertions():
    # Every lint-accepted construct lowers, so fabricate a spec referencing
    # an undeclared signal (the tree-walker's EvalError -> unknown path):
    # strict mode must surface the lowering failure instead of silently
    # tree-walking, and auto must fall back per assertion and still agree.
    design = shift2_design()
    ghost = AssertionSpec(
        name="a_ghost",
        clock=design.assertions[0].clock,
        disable_iff=None,
        body=ast.SvaProperty(
            antecedent=None,
            consequent=ast.SvaSequence(
                elements=[ast.SequenceElement(delay=0, expr=ast.Identifier("no_such_signal"))]
            ),
        ),
    )
    design.assertions.append(ghost)
    with pytest.raises(CompileError):
        CheckerBackend(design, backend="compiled")
    trace = shift2_trace(design)
    assert_reports_identical_auto(design, trace)
    # The unknown reference never evaluates to a hard failure on either side.
    report = CheckerBackend(design, backend="auto").check(trace)
    assert not report.outcomes["a_ghost"].failures


def assert_reports_identical_auto(design, trace):
    interp = AssertionChecker(design).check(trace)
    compiled = CheckerBackend(design, backend="auto").check(trace)
    for name in interp.outcomes:
        assert outcome_fields(interp.outcomes[name]) == outcome_fields(
            compiled.outcomes[name]
        )


def test_subset_checking_matches_tree_walker():
    design = shift2_design()
    trace = shift2_trace(design)
    subset = design.assertions[:1]
    interp = AssertionChecker(design).check(trace, assertions=subset)
    compiled = CheckerBackend(design).check(trace, assertions=subset)
    assert sorted(interp.outcomes) == sorted(compiled.outcomes) == [subset[0].name]
    for name in interp.outcomes:
        assert outcome_fields(interp.outcomes[name]) == outcome_fields(compiled.outcomes[name])


# --------------------------------------------------------------------------- #
# $past semantics regressions
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ["interp", "auto"])
def test_past_parameter_depth_is_honoured(backend):
    """``$past(a, DEPTH)`` with ``parameter DEPTH = 2`` must look 2 back.

    Before the fix both backends silently used depth 1 for any non-literal
    depth argument, which made ``a_depth`` behave exactly like ``a_one``;
    with a fresh input value every cycle the two are now distinguishable:
    the true 2-deep relation holds, the 1-deep one fails.
    """
    design = shift2_design()
    report = CheckerBackend(design, backend=backend).check(shift2_trace(design))
    depth2 = report.outcomes["a_depth"]
    depth1 = report.outcomes["a_one"]
    assert depth2.antecedent_matches > 4
    assert not depth2.failures, [f.render() for f in depth2.failures]
    assert depth1.failures, "depth-1 comparison should fail on a 2-deep pipeline"


def test_past_depth_constant_folding():
    design = shift2_design()
    spec = next(s for s in design.assertions if s.name == "a_depth")
    call = next(
        node
        for element in spec.body.consequent.elements
        for node in element.expr.walk()
        if isinstance(node, ast.SystemCall) and node.name == "$past"
    )
    assert sampled_past_depth(call, design.parameters) == 2
    # Non-constant depth (a signal) falls back to the SVA default of 1.
    signal_depth = ast.SystemCall(name="$past", args=[ast.Identifier("a"), ast.Identifier("b")])
    assert sampled_past_depth(signal_depth, design.parameters) == 1


@pytest.mark.parametrize("backend", ["interp", "auto"])
def test_past_pre_trace_unknown_has_expression_width(backend):
    """Pre-cycle-0 ``$past(a ^ b)`` must be a 4-bit x, not a 1-bit x.

    ``a_width`` asserts ``!($past(a ^ b) === 1'bx)``: with the old 1-bit
    unknown the case-equality held at cycle 0 and the assertion failed; a
    4-bit unknown is not case-equal to ``1'bx``, so every cycle passes.
    """
    design = shift2_design()
    report = CheckerBackend(design, backend=backend).check(shift2_trace(design))
    width = report.outcomes["a_width"]
    assert not width.failures, [f.render() for f in width.failures]
    assert width.passes == width.attempts


def test_infer_expression_width():
    design = shift2_design()
    a, b = ast.Identifier("a"), ast.Identifier("b")
    assert infer_expression_width(a, design) == 4
    assert infer_expression_width(ast.Binary(op="+", left=a, right=b), design) == 4
    assert infer_expression_width(ast.Binary(op="==", left=a, right=b), design) == 1
    assert infer_expression_width(ast.Unary(op="&", operand=a), design) == 1
    assert infer_expression_width(ast.Concat(parts=[a, b]), design) == 8
    assert infer_expression_width(ast.SystemCall(name="$past", args=[a]), design) == 4
    assert infer_expression_width(ast.SystemCall(name="$rose", args=[a]), design) == 1
    assert infer_expression_width(ast.Identifier("DEPTH"), design) == 32
