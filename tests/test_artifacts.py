"""Differential suite for the compiled-artifact cache (repro.artifacts).

The hard invariant this file pins: **incremental relowering is
byte-identical to full recompilation** -- simulator traces, per-assertion
verdicts, and whole eval reports must not change with cache state, cache
tier, worker count, or relowering base.  The sweep covers every template
family crossed with one representative mutation per mutation kind, so
every lowering construct the corpus can produce goes through the
incremental path at least once.

Plus the store mechanics: fingerprint stability, the LRU bound/eviction
behaviour, the on-disk elaboration tier, and the two-level ResultCache
sharding with legacy-layout read-through.
"""

import json

import pytest

from repro.artifacts import (
    ArtifactStore,
    design_canonical_text,
    design_fingerprint,
)
from repro.bugs.mutators import enumerate_mutations
from repro.corpus.templates import all_families
from repro.eval.executor import VerificationJob, run_verification_jobs
from repro.eval.verifier import CandidateFix, SemanticVerifier, VerifierConfig
from repro.hdl.lint import compile_source
from repro.sim.compile import CompiledSimulator, compile_design
from repro.sim.engine import SimulatorOptions
from repro.sim.stimulus import StimulusGenerator
from repro.sva.checker import CheckerBackend
from repro.sva.generator import insert_assertions, template_assertion_blocks

CYCLES = 24


def build_family_case(family):
    """(augmented source, design) for one template family, or None.

    The source carries the family's template SVAs so the checker half of
    the differential is exercised too.
    """
    artifact = family.build("dut_x", **family.parameter_grid[0])
    source = artifact.source
    blocks = template_assertion_blocks(artifact.template_svas, artifact.family)
    if blocks:
        source = insert_assertions(source, blocks)
    result = compile_source(source)
    if not result.ok or result.design is None:
        result = compile_source(artifact.source)
        source = artifact.source
    if not result.ok or result.design is None:
        return None
    return source, result.design


def representative_mutants(source, design):
    """One compiling mutant source per (mutation kind) found in ``source``."""
    signals = sorted(design.signals)
    lines = source.splitlines()
    chosen: dict[str, str] = {}
    for number, line in enumerate(lines, start=1):
        for candidate in enumerate_mutations(line, signals):
            if candidate.edit_kind in chosen:
                continue
            mutated = list(lines)
            mutated[number - 1] = candidate.buggy_line
            mutant = "\n".join(mutated)
            check = compile_source(mutant)
            if check.ok and check.design is not None:
                chosen[candidate.edit_kind] = mutant
    return chosen


def run_trace(design, compiled, seed=7):
    vectors = StimulusGenerator(design, seed=seed).mixed_stimulus(
        random_cycles=CYCLES
    ).vectors
    options = SimulatorOptions(record_columns=True)
    return CompiledSimulator(design, options=options, compiled=compiled).run(vectors)


def report_keys(report):
    return {name: outcome.comparison_key() for name, outcome in report.outcomes.items()}


# --------------------------------------------------------------------------- #
# fingerprints
# --------------------------------------------------------------------------- #


def test_fingerprint_is_stable_across_elaborations_and_splits_mutants():
    for family in all_families():
        case = build_family_case(family)
        if case is None:
            continue
        source, design = case
        again = compile_source(source).design
        assert design_fingerprint(design) == design_fingerprint(again), family.name
        for mutant in representative_mutants(source, design).values():
            mutant_design = compile_source(mutant).design
            assert design_fingerprint(mutant_design) != design_fingerprint(design), (
                family.name,
                design_canonical_text(mutant_design),
            )


# --------------------------------------------------------------------------- #
# the differential sweep: every family x every mutation kind
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("family", all_families(), ids=lambda f: f.name)
def test_incremental_relowering_is_byte_identical(family):
    """Full vs incremental lowering: identical traces and identical verdicts."""
    case = build_family_case(family)
    if case is None:
        pytest.skip(f"{family.name}: no compilable case")
    source, design = case
    base_compiled = compile_design(design)
    base_checker = CheckerBackend(design)
    mutants = representative_mutants(source, design)
    if not mutants:
        pytest.skip(f"{family.name}: no compiling mutants")
    reused_anywhere = 0
    for kind, mutant_source in sorted(mutants.items()):
        mutant = compile_source(mutant_source).design
        full = compile_design(mutant)
        incremental = compile_design(mutant, base=base_compiled)
        # Mutations that touch declarations or widths may legitimately
        # force a full relower (relower_fallback_reason set); the identity
        # below must hold either way.
        reused_anywhere += incremental.relower_nodes_reused
        full_trace = run_trace(mutant, full)
        incremental_trace = run_trace(mutant, incremental)
        assert full_trace.materialized() == incremental_trace.materialized(), (
            family.name,
            kind,
        )
        if mutant.assertions:
            full_check = CheckerBackend(mutant)
            incremental_check = CheckerBackend(mutant, base=base_checker)
            assert report_keys(incremental_check.check(incremental_trace)) == report_keys(
                full_check.check(full_trace)
            ), (family.name, kind)
            assert incremental_check.engine_choices == full_check.engine_choices
    # The sweep must actually exercise the reuse path, not fall back
    # everywhere: across this family's mutants some closures were reused.
    assert reused_anywhere > 0, family.name


def test_incompatible_base_falls_back_to_full_lowering():
    result = compile_source(
        "module dut_a(input wire clk, input wire [3:0] a, output wire [3:0] q);\n"
        "  assign q = a + 4'd1;\nendmodule\n"
    )
    other = compile_source(
        "module dut_a(input wire clk, input wire [7:0] a, output wire [7:0] q);\n"
        "  assign q = a + 8'd1;\nendmodule\n"
    )
    base = compile_design(result.design)
    relowered = compile_design(other.design, base=base)
    assert relowered.relower_fallback_reason == "signal widths changed"
    assert relowered.relower_nodes_reused == 0


# --------------------------------------------------------------------------- #
# eval-report differential: artifact mode / tier / workers change nothing
# --------------------------------------------------------------------------- #


def eval_jobs():
    jobs = []
    for family in all_families()[:3]:
        case = build_family_case(family)
        if case is None:
            continue
        source, design = case
        mutants = representative_mutants(source, design)
        if not mutants:
            continue
        buggy = sorted(mutants.items())[0][1]
        buggy_lines = buggy.splitlines()
        golden_lines = source.splitlines()
        diff_line = next(
            i
            for i, (a, b) in enumerate(zip(golden_lines, buggy_lines), start=1)
            if a != b
        )
        fixes = (
            CandidateFix(diff_line, golden_lines[diff_line - 1], buggy_lines[diff_line - 1]),
            CandidateFix(diff_line, buggy_lines[diff_line - 1], buggy_lines[diff_line - 1]),
            CandidateFix(10_000, "assign nonsense = 1;", ""),
        )
        jobs.append(
            VerificationJob(
                case_name=f"case_{family.name}",
                buggy_source=buggy,
                fixes=fixes,
                seeds=(3, 5),
                cycles=CYCLES,
            )
        )
    assert jobs
    return jobs


def verdict_dicts(shards):
    return [[v.to_dict() for v in shard.verdicts] for shard in shards]


def test_eval_reports_invariant_to_artifact_mode_tier_and_workers(tmp_path):
    jobs = eval_jobs()
    baseline = verdict_dicts(
        run_verification_jobs(jobs, workers=1, artifact_mode="off")
    )
    assert any(
        verdict["status"] == "pass" for shard in baseline for verdict in shard
    )
    variants = [
        dict(workers=1, artifact_mode="incremental"),
        dict(workers=2, artifact_mode="incremental"),
        dict(
            workers=1,
            artifact_mode="incremental",
            artifact_dir=tmp_path / "artifacts",
        ),
        dict(
            workers=2,
            artifact_mode="incremental",
            artifact_dir=tmp_path / "artifacts",  # warm disk tier
            cache_dir=tmp_path / "verdicts",
        ),
    ]
    for options in variants:
        assert verdict_dicts(run_verification_jobs(jobs, **options)) == baseline, options


def test_verifier_base_artifacts_are_compiled_once_per_case(tmp_path):
    job = eval_jobs()[0]
    store = ArtifactStore()
    verifier = SemanticVerifier(
        config=VerifierConfig(cycles=CYCLES), artifacts=store
    )
    for fix in job.fixes:
        verifier.verify(job.buggy_source, fix, job.seeds)
    # The buggy base was elaborated and lowered exactly once, then memoised.
    assert len(verifier._bases) == 1
    before = store.stats()
    verifier.verify(job.buggy_source, job.fixes[0], job.seeds)
    assert store.stats()["misses"] == before["misses"]


# --------------------------------------------------------------------------- #
# the in-process LRU: bound, eviction, recompute
# --------------------------------------------------------------------------- #


def numbered_design(index):
    return compile_source(
        f"module dut_{index}(input wire clk, input wire [3:0] a, output wire [3:0] q);\n"
        f"  assign q = a + 4'd{index};\nendmodule\n"
    ).design


def test_lru_bound_evicts_and_recomputes():
    store = ArtifactStore(max_entries=2)
    designs = [numbered_design(i) for i in range(1, 4)]
    compiled = [store.compiled_design(d) for d in designs]
    assert all(c is not None for c in compiled)
    assert len(store) == 2
    assert store.evictions >= 1
    # The evicted design recomputes transparently (a fresh object, same
    # behaviour), and the most-recently-used entry is still cached.
    assert store.compiled_design(designs[2]) is compiled[2]
    recomputed = store.compiled_design(designs[0])
    assert recomputed is not None and recomputed is not compiled[0]


def test_lru_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_ARTIFACT_LRU", "1")
    store = ArtifactStore()
    assert store.max_entries == 1
    monkeypatch.setenv("REPRO_ARTIFACT_LRU", "not-a-number")
    from repro.artifacts import DEFAULT_LRU_ENTRIES

    assert ArtifactStore().max_entries == DEFAULT_LRU_ENTRIES


def test_uncompilable_designs_are_negative_cached():
    # The interpreter-only path: a design the compiled backend rejects is
    # probed once and then served the cached rejection.
    source = (
        "module dut_x(input wire clk, output reg q);\n"
        "  initial q = 0;\n"
        "  always @(posedge clk) q <= ~q;\nendmodule\n"
    )
    design = compile_source(source).design
    store = ArtifactStore()
    first = store.compiled_design(design)
    second = store.compiled_design(design)
    if first is None:
        assert second is None
        assert store.hits == 1
    else:  # the backend learned this construct; the cache must still hit
        assert second is first


# --------------------------------------------------------------------------- #
# the on-disk elaboration tier
# --------------------------------------------------------------------------- #


def test_disk_tier_shares_elaborations_and_compile_failures(tmp_path):
    source = (
        "module dut_x(input wire clk, input wire [3:0] a, output wire [3:0] q);\n"
        "  assign q = a + 4'd1;\nendmodule\n"
    )
    bad_source = "module dut_x(input wire clk;\nendmodule\n"
    writer = ArtifactStore(disk=tmp_path / "tier")
    design, error = writer.elaborate_source(source)
    assert design is not None and error == ""
    _, bad_error = writer.elaborate_source(bad_source)
    assert bad_error

    # A different process would open its own store over the same directory.
    reader = ArtifactStore(disk=tmp_path / "tier")
    again, error = reader.elaborate_source(source)
    assert error == "" and again is not None
    assert design_fingerprint(again) == design_fingerprint(design)
    _, bad_again = reader.elaborate_source(bad_source)
    assert bad_again == bad_error  # byte-identical verdict detail

    # And the memory-only store recomputes the same answers.
    memory = ArtifactStore()
    fresh, _ = memory.elaborate_source(source)
    assert design_fingerprint(fresh) == design_fingerprint(design)
    _, fresh_error = memory.elaborate_source(bad_source)
    assert fresh_error == bad_error


# --------------------------------------------------------------------------- #
# ResultCache sharding (satellite: two-level layout + legacy read-through)
# --------------------------------------------------------------------------- #


def test_result_cache_two_level_sharding_and_legacy_read_through(tmp_path):
    from repro.runtime.cache import ResultCache, content_key

    cache = ResultCache(tmp_path)
    key = content_key("v", "fresh")
    cache.put(key, {"a": 1})
    assert (tmp_path / key[:2] / key[2:4] / f"{key}.json").exists()

    flat_key = content_key("v", "flat-era")
    (tmp_path / f"{flat_key}.json").write_text(json.dumps({"b": 2}))
    one_level_key = content_key("v", "one-level-era")
    (tmp_path / one_level_key[:2]).mkdir(exist_ok=True)
    (tmp_path / one_level_key[:2] / f"{one_level_key}.json").write_text(
        json.dumps({"c": 3})
    )

    assert cache.get(key) == {"a": 1}
    assert cache.get(flat_key) == {"b": 2}
    assert cache.get(one_level_key) == {"c": 3}
    assert len(cache) == 3
    assert cache.get(content_key("v", "absent")) is None
