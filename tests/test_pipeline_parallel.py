"""End-to-end pipeline determinism: worker count, job order and cache state
may change wall time, never a byte of the datasets."""

import json

import pytest

from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.dataaug.pipeline import DataAugmentationPipeline, PipelineConfig
from repro.dataaug.stage1 import run_stage1
from repro.dataaug.stage3 import CotGenerator, Stage3Config


def dataset_bytes(datasets) -> str:
    """Canonical byte-level snapshot of all four splits + statistics."""
    return json.dumps(
        {
            "verilog_pt": [vars(entry) for entry in datasets.verilog_pt],
            "verilog_bug": [entry.to_dict() for entry in datasets.verilog_bug],
            "sva_bug_train": [entry.to_dict() for entry in datasets.sva_bug_train],
            "sva_eval_machine": [entry.to_dict() for entry in datasets.sva_eval_machine],
            "statistics": vars(datasets.statistics),
        },
        sort_keys=True,
    )


def test_pipeline_is_worker_count_invariant():
    """The tentpole contract: workers=1 and workers=4 produce byte-identical
    datasets across all four splits."""
    serial = DataAugmentationPipeline(PipelineConfig.small(seed=31, workers=1)).run()
    fanned = DataAugmentationPipeline(PipelineConfig.small(seed=31, workers=4)).run()
    assert dataset_bytes(serial) == dataset_bytes(fanned)
    assert serial.sva_bug_train and serial.sva_eval_machine  # non-trivial run


def test_pipeline_is_cache_state_invariant(tmp_path):
    """Cold vs warm Stage-2 result cache: identical bytes, and the warm run
    is served from disk (and may even change worker count)."""
    cache_dir = str(tmp_path / "stage2")
    cold = DataAugmentationPipeline(
        PipelineConfig.small(seed=31, workers=1, cache_dir=cache_dir)
    ).run()
    warm = DataAugmentationPipeline(
        PipelineConfig.small(seed=31, workers=4, cache_dir=cache_dir)
    ).run()
    uncached = DataAugmentationPipeline(PipelineConfig.small(seed=31, workers=2)).run()
    assert dataset_bytes(cold) == dataset_bytes(warm)
    assert dataset_bytes(cold) == dataset_bytes(uncached)
    assert list((tmp_path / "stage2").glob("*/*/*.json"))  # the cache was filled


def test_pipeline_records_stage_timings():
    pipeline = DataAugmentationPipeline(PipelineConfig.small(seed=31))
    pipeline.run()
    assert set(pipeline.stage_timings) == {"corpus", "stage1", "stage2", "split", "stage3"}
    assert all(value >= 0.0 for value in pipeline.stage_timings.values())


def test_corpus_generator_is_worker_count_invariant():
    serial = CorpusGenerator(CorpusConfig(seed=5, design_count=12, workers=1)).generate()
    fanned = CorpusGenerator(CorpusConfig(seed=5, design_count=12, workers=3)).generate()
    assert [(s.name, s.source, s.spec) for s in serial.samples] == [
        (s.name, s.source, s.spec) for s in fanned.samples
    ]
    assert [(s.name, c.source, c.explanation) for s, c in serial.corrupted] == [
        (s.name, c.source, c.explanation) for s, c in fanned.corrupted
    ]


def test_stage1_is_worker_count_invariant():
    corpus = CorpusGenerator(
        CorpusConfig(seed=5, design_count=12, corrupted_fraction=0.4)
    ).generate()
    serial = run_stage1(corpus, workers=1)
    fanned = run_stage1(corpus, workers=3)
    assert [s.name for s in serial.compiled] == [s.name for s in fanned.compiled]
    assert [vars(e) for e in serial.verilog_pt] == [vars(e) for e in fanned.verilog_pt]
    assert (serial.filtered_out, serial.compile_failures) == (
        fanned.filtered_out, fanned.compile_failures
    )
    assert serial.compiled and serial.verilog_pt  # both paths exercised


@pytest.fixture()
def stage3_entries():
    datasets = DataAugmentationPipeline(PipelineConfig.small(seed=31)).run()
    entries = datasets.sva_bug_train
    assert entries
    return entries


def test_stage3_is_worker_count_invariant(stage3_entries):
    def annotate(workers):
        entries = [entry.from_dict(entry.to_dict()) for entry in stage3_entries]
        CotGenerator(Stage3Config(seed=3, drift_probability=0.5, workers=workers)).annotate(
            entries
        )
        return [(entry.name, entry.cot, entry.cot_valid) for entry in entries]

    assert annotate(1) == annotate(4)


def test_stage3_drift_is_entry_order_invariant(stage3_entries):
    """The drift RNG is derived per entry, so reordering the batch must not
    change any entry's CoT."""
    generator = CotGenerator(Stage3Config(seed=3, drift_probability=0.5))

    def annotate(entries):
        entries = [entry.from_dict(entry.to_dict()) for entry in entries]
        generator.annotate(entries)
        return {entry.name: (entry.cot, entry.cot_valid) for entry in entries}

    assert annotate(stage3_entries) == annotate(list(reversed(stage3_entries)))
