"""Differential tests: the compiled backend must match the interpreter.

Every template family's representative design (and a set of injected
mutants) is simulated by both backends on identical stimulus; the traces
must be ``equals()``-identical signal by signal, cycle by cycle, for both
the preponed and the post-edge sampling points.
"""

import pytest

from repro.bugs.injector import BugInjector, InjectionConfig
from repro.corpus.templates import all_families
from repro.hdl.lint import compile_source
from repro.sim.compile import CompiledSimulator
from repro.sim.engine import InterpSimulator, Simulator, SimulatorOptions
from repro.sim.stimulus import StimulusGenerator

FAMILIES = all_families()


def assert_traces_identical(design, vectors, options=None) -> None:
    interp_trace = InterpSimulator(design, options=options).run(vectors)
    compiled_trace = CompiledSimulator(design, options=options).run(vectors)
    assert len(interp_trace) == len(compiled_trace)
    for cycle in range(len(interp_trace)):
        expected = interp_trace[cycle]
        actual = compiled_trace[cycle]
        assert set(expected.pre_edge) == set(actual.pre_edge)
        for name in expected.pre_edge:
            assert expected.pre_edge[name].equals(actual.pre_edge[name]), (
                f"pre-edge mismatch: cycle {cycle}, signal {name}: "
                f"{expected.pre_edge[name]} != {actual.pre_edge[name]}"
            )
            assert expected.post_edge[name].equals(actual.post_edge[name]), (
                f"post-edge mismatch: cycle {cycle}, signal {name}: "
                f"{expected.post_edge[name]} != {actual.post_edge[name]}"
            )


def design_for(family):
    artifact = family.build(f"dut_{family.name}", **family.parameter_grid[0])
    result = compile_source(artifact.source)
    assert result.ok and result.design is not None, result.render()
    return result.design


@pytest.mark.parametrize("family", FAMILIES, ids=[f.name for f in FAMILIES])
def test_family_traces_identical(family):
    design = design_for(family)
    vectors = StimulusGenerator(design, seed=3).mixed_stimulus(random_cycles=24).vectors
    assert_traces_identical(design, vectors)


@pytest.mark.parametrize("family", FAMILIES[:6], ids=[f.name for f in FAMILIES[:6]])
def test_family_traces_identical_with_x_initial_state(family):
    design = design_for(family)
    vectors = StimulusGenerator(design, seed=5).mixed_stimulus(random_cycles=16).vectors
    assert_traces_identical(design, vectors, options=SimulatorOptions(x_initial_state=True))


@pytest.mark.parametrize("seed", [17, 42])
def test_mutant_traces_identical(seed):
    """Buggy (mutated) designs must also behave identically on both backends.

    Seed 42 is a regression case: it mutates round_robin_arbiter into a
    design where a clocked block writes a comb-driven signal, which the
    dirty-set scheduler must re-settle exactly like the interpreter.
    """
    injector = BugInjector(InjectionConfig(seed=seed, max_bugs_per_design=4))
    checked = 0
    for family in FAMILIES[:24]:
        artifact = family.build(f"mut_{family.name}", **family.parameter_grid[0])
        golden = compile_source(artifact.source)
        if not golden.ok or golden.design is None:
            continue
        for bug in injector.inject(artifact.name, artifact.source, golden.design):
            buggy = compile_source(bug.buggy_source)
            if not buggy.ok or buggy.design is None:
                continue
            vectors = StimulusGenerator(buggy.design, seed=9).mixed_stimulus(random_cycles=12).vectors
            assert_traces_identical(buggy.design, vectors)
            checked += 1
    assert checked >= 3, "expected at least three simulatable mutants"


def test_seq_write_to_comb_driven_signal_matches_interpreter():
    """A clocked write to a comb-driven signal loses the settle, as in the oracle.

    Lint only rejects continuous+procedural mixes, so comb-block/seq-block
    double drivers reach simulation (bug-injected mutants produce them).
    """
    source = (
        "module m(input wire clk, input wire rst_n, input wire a, output reg y);\n"
        "    always @(*) y = a;\n"
        "    always @(posedge clk or negedge rst_n) begin\n"
        "        if (!rst_n) y <= 1'b0;\n"
        "        else y <= 1'b1;\n"
        "    end\n"
        "endmodule\n"
    )
    result = compile_source(source)
    assert result.ok and result.design is not None
    vectors = [{"rst_n": 0, "a": 0}, {"rst_n": 1, "a": 0}, {"rst_n": 1, "a": 1}, {"rst_n": 1, "a": 0}]
    assert_traces_identical(result.design, vectors)
    sim = Simulator(result.design)
    sim.run(vectors)
    assert sim.peek("y") == 0, "the combinational driver must win the settle"


def test_stimulus_write_to_comb_driven_signal_matches_interpreter():
    """Forcing a continuously-driven signal via step() loses to its driver."""
    source = (
        "module f(input wire clk, input wire a, input wire b, output wire y);\n"
        "    assign y = a & b;\n"
        "endmodule\n"
    )
    result = compile_source(source)
    assert result.ok and result.design is not None
    for backend in ("interp", "compiled"):
        sim = Simulator(result.design, options=SimulatorOptions(backend=backend))
        sim.step({"a": 1, "b": 1, "y": 0})
        assert sim.peek("y") == 1, f"{backend}: the continuous driver must win"
    assert_traces_identical(result.design, [{"a": 1, "b": 1, "y": 0}, {"a": 0, "b": 1, "y": 1}])


def test_difftrace_supports_slice_indexing():
    design = design_for(FAMILIES[0])
    sim = Simulator(design)
    trace = sim.run([{"rst_n": 0}] + [{"rst_n": 1}] * 4)
    window = trace[1:3]
    assert len(window) == 2
    assert window[0].cycle == 1


def test_factory_prefers_compiled_backend():
    design = design_for(FAMILIES[0])
    assert isinstance(Simulator(design), CompiledSimulator)
    assert isinstance(
        Simulator(design, options=SimulatorOptions(backend="interp")), InterpSimulator
    )
