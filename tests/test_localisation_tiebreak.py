"""Regression: deterministic localisation tie-breaking in the repair policy.

An untrained (zero-weight) policy scores every candidate line identically,
so ranked repair used to degenerate to "lowest line number first" -- which
is why ranked pass@1 on SVA-Eval-Machine sat at ~0.  Exact probability ties
must now break toward lines whose assigned signal appears in the failing
assertion before falling back to line order.
"""

import math

from repro.model.case import RepairCase
from repro.model.policy import RepairPolicy

SOURCE = """\
module twolines (
    input wire clk,
    input wire rst_n,
    input wire [3:0] in_a,
    input wire [3:0] in_b,
    output reg [3:0] out_a,
    output reg [3:0] out_b
);
    always @(posedge clk) begin
        out_a <= in_a;
        out_b <= in_b;
    end
    property p_b;
        @(posedge clk) disable iff (!rst_n) 1'b1 |=> out_b == $past(in_b);
    endproperty
    a_b: assert property (p_b);
endmodule
"""

LOGS = "failed assertion twolines.a_b at cycle 3\n"


def make_case():
    return RepairCase(name="twolines_case", spec="two registered outputs", buggy_source=SOURCE, logs=LOGS)


def test_ties_break_toward_lines_assigning_failing_signal():
    case = make_case()
    assert case.design is not None
    # Only a_b fails, so out_b's driver (line 11) is the suspect; out_a's
    # textually earlier driver (line 10) would win a pure line-number tie.
    policy = RepairPolicy()
    ranked = policy.top_candidates(case, k=50)
    assert ranked, "policy produced no candidates"

    def assigns_failing(line_number):
        assigned = set(case.assigned_by_line.get(line_number, []))
        return bool(assigned & case.asserted_signals)

    # Global invariant: within every run of equal joint probability, all
    # suspect-line candidates come before all non-suspect ones.
    index = 0
    while index < len(ranked):
        run_end = index
        while (
            run_end + 1 < len(ranked)
            and math.isclose(ranked[run_end + 1][2], ranked[index][2], rel_tol=0, abs_tol=0)
        ):
            run_end += 1
        flags = [assigns_failing(line) for line, _, _ in ranked[index : run_end + 1]]
        assert flags == sorted(flags, reverse=True), (
            f"tie run {index}..{run_end} orders non-suspect lines first: {flags}"
        )
        index = run_end + 1

    # And concretely: the very first candidate targets the suspect line.
    first_line, _, _ = ranked[0]
    assert assigns_failing(first_line), (
        f"top candidate targets line {first_line}, which does not assign a "
        "signal sampled by the failing assertion"
    )
