"""Test bootstrap: make ``src/`` importable without installation.

The suite also works against an installed package (``pip install -e .``);
this only matters for the bare ``PYTHONPATH``-less invocation.
"""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
