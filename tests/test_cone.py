"""Cone-screen soundness: differential tests against real simulation.

The headline invariant of the screened verifier: for every candidate, a
``static_screen`` run's verdict must be byte-identical (modulo the
``provenance`` field) to an unscreened run's -- candidates the screen
skips return the memoised base verdict, and that base verdict must equal
what actually simulating the candidate would have produced.

The sweep crosses every template family with one representative mutant per
mutation kind (the same pool the benchmark's screened leg uses), plus
hand-built adversarial edits -- parameters, clocks, resets, ``disable
iff``, assertion bodies -- that the screen must never skip.
"""

import pytest

from repro.analyze import build_dfg, cone_screen, edit_impact, lint_screen
from repro.bugs.mutators import enumerate_mutations
from repro.corpus.templates import all_families
from repro.eval.verifier import CandidateFix, SemanticVerifier, VerifierConfig
from repro.hdl.lint import compile_source

CYCLES = 24
SEEDS = (101, 102)


def build_family_case(family):
    from test_artifacts import build_family_case as build

    return build(family)


def mutant_fixes(source, design):
    """One (line_number, mutated_line) per mutation kind, compiling only."""
    signals = sorted(design.signals)
    lines = source.splitlines()
    chosen = {}
    for number, line in enumerate(lines, start=1):
        for candidate in enumerate_mutations(line, signals):
            if candidate.edit_kind in chosen:
                continue
            mutated = list(lines)
            mutated[number - 1] = candidate.buggy_line
            if compile_source("\n".join(mutated)).design is not None:
                chosen[candidate.edit_kind] = (number, candidate.buggy_line)
    return list(chosen.values())


def verdict_core(verdict):
    payload = verdict.to_dict()
    payload.pop("provenance")
    return payload


# --------------------------------------------------------------------------- #
# the family x mutation-kind differential sweep
# --------------------------------------------------------------------------- #


def test_screened_verdicts_match_unscreened_across_families():
    """Every mutant of every family: screen=full == screen=off, bytewise."""
    cone_skips = 0
    checked = 0
    for family in all_families():
        case = build_family_case(family)
        if case is None:
            continue
        source, design = case
        off = SemanticVerifier(VerifierConfig(cycles=CYCLES, static_screen="off"))
        screened = SemanticVerifier(VerifierConfig(cycles=CYCLES, static_screen="full"))
        for line_number, mutated_line in mutant_fixes(source, design):
            fix = CandidateFix(line_number=line_number, fixed_line=mutated_line)
            baseline = off.verify(source, fix, SEEDS)
            shadow = screened.verify(source, fix, SEEDS)
            assert verdict_core(baseline) == verdict_core(shadow), (
                family.name,
                line_number,
                mutated_line,
                shadow.provenance,
            )
            checked += 1
            if shadow.provenance == "cone_skip":
                cone_skips += 1
    assert checked > 0
    # The sweep must actually exercise the skip path somewhere, or this
    # differential proves nothing about it.
    assert cone_skips > 0


def test_cone_skip_returns_simulated_base_verdict():
    """A skipped candidate's verdict equals simulating the candidate itself."""
    for family in all_families():
        case = build_family_case(family)
        if case is None:
            continue
        source, design = case
        base_dfg = build_dfg(design)
        verifier = SemanticVerifier(VerifierConfig(cycles=CYCLES, static_screen="off"))
        for line_number, mutated_line in mutant_fixes(source, design):
            lines = source.splitlines()
            lines[line_number - 1] = mutated_line
            mutant_source = "\n".join(lines)
            mutant_design = compile_source(mutant_source).design
            if mutant_design is None:
                continue
            decision = cone_screen(base_dfg, build_dfg(mutant_design))
            if not decision.skip:
                continue
            # Soundness, stated directly: simulate both, compare verdicts.
            base_verdict = verifier.verify_source(source, SEEDS, cycles=CYCLES)
            mutant_verdict = verifier.verify_source(mutant_source, SEEDS, cycles=CYCLES)
            assert verdict_core(base_verdict) == verdict_core(mutant_verdict), (
                family.name,
                line_number,
                mutated_line,
            )


# --------------------------------------------------------------------------- #
# adversarial edits the screen must never skip
# --------------------------------------------------------------------------- #

ADVERSARIAL_BASE = """
module adv #(parameter LIMIT = 7) (
    input wire clk,
    input wire rst_n,
    input wire en,
    output reg [3:0] count,
    output wire done
);
    assign done = (count == LIMIT);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) count <= 4'd0;
        else if (en) count <= count + 4'd1;
    end
    property p_reset;
        @(posedge clk) disable iff (!rst_n) en |=> count != 4'd0 || $past(count) == 4'd15;
    endproperty
    a_reset: assert property (p_reset);
endmodule
"""

ADVERSARIAL_EDITS = [
    ("parameter", "parameter LIMIT = 7", "parameter LIMIT = 3"),
    ("clock-edge", "always @(posedge clk or negedge rst_n)", "always @(negedge clk or negedge rst_n)"),
    ("reset-polarity", "if (!rst_n) count <= 4'd0;", "if (rst_n) count <= 4'd0;"),
    ("disable-iff", "disable iff (!rst_n)", "disable iff (1'b0)"),
    ("assertion-body", "en |=> count != 4'd0", "en |=> count == 4'd0"),
    ("signal-width", "output reg [3:0] count", "output reg [4:0] count"),
]


@pytest.mark.parametrize("label,needle,replacement", ADVERSARIAL_EDITS)
def test_adversarial_edits_are_never_cone_skipped(label, needle, replacement):
    assert needle in ADVERSARIAL_BASE, label
    patched_source = ADVERSARIAL_BASE.replace(needle, replacement)
    base = compile_source(ADVERSARIAL_BASE).design
    patched = compile_source(patched_source).design
    assert base is not None and patched is not None, label
    decision = cone_screen(build_dfg(base), build_dfg(patched))
    assert not decision.skip, (label, decision.reason)


def test_in_cone_edit_is_not_skipped_and_out_of_cone_edit_is():
    base = compile_source(ADVERSARIAL_BASE).design
    dfg = build_dfg(base)

    out_of_cone = ADVERSARIAL_BASE.replace("count == LIMIT", "count >= LIMIT")
    decision = cone_screen(dfg, build_dfg(compile_source(out_of_cone).design))
    assert decision.skip
    assert decision.changed_signals == ("done",)

    in_cone = ADVERSARIAL_BASE.replace("count + 4'd1", "count + 4'd2")
    decision = cone_screen(dfg, build_dfg(compile_source(in_cone).design))
    assert not decision.skip
    assert "count" in decision.overlap


def test_noop_edit_is_skipped():
    base = compile_source(ADVERSARIAL_BASE).design
    # Whitespace-only rewrites produce identical node keys: trivially skippable.
    respaced = ADVERSARIAL_BASE.replace("count <= count + 4'd1;", "count <= count  +  4'd1;")
    patched = compile_source(respaced).design
    impact = edit_impact(build_dfg(base), build_dfg(patched))
    assert impact.comparable and impact.changed_signals == ()
    assert cone_screen(build_dfg(base), build_dfg(patched)).skip


def test_comb_loop_candidates_are_simulated_not_skipped_or_rejected():
    source = ADVERSARIAL_BASE
    looped = source.replace("assign done = (count == LIMIT);",
                            "assign done = done | (count == LIMIT);")
    base = build_dfg(compile_source(source).design)
    patched = build_dfg(compile_source(looped).design)
    decision = cone_screen(base, patched)
    assert not decision.skip
    assert "loop" in decision.reason
    # ... and the lint tier must not reject it either: settling loops
    # simulate to genuine verdicts (see repro.analyze.cone docstring).
    assert lint_screen(base, patched) == ()


# --------------------------------------------------------------------------- #
# the lint screen
# --------------------------------------------------------------------------- #

LINT_BASE = """
module lintcase (input wire clk, input wire a, input wire b, output reg q);
    wire t;
    wire u;
    assign t = a & b;
    assign u = a | b;
    always @(posedge clk) q <= t;
    a_t: assert property (@(posedge clk) q |-> $past(t));
endmodule
"""


def test_lint_screen_rejects_newly_undriven_cone_signal():
    base_design = compile_source(LINT_BASE).design
    assert base_design is not None
    # Retarget t's driver onto u: t (inside a_t's cone) goes undriven.
    patched_source = LINT_BASE.replace("assign t = a & b;", "assign u = a & b;")
    patched_result = compile_source(patched_source)
    assert patched_result.ok, patched_result.render()  # warning-only, still compiles
    rejections = lint_screen(build_dfg(base_design), build_dfg(patched_result.design))
    assert [r.code for r in rejections] == ["undriven-used"]
    assert "'t'" in rejections[0].message

    # Out-of-cone undriven (u never feeds an assertion): no rejection.
    benign = LINT_BASE.replace("assign u = a | b;", "assign t = a | b;")
    benign_result = compile_source(benign)
    assert benign_result.ok
    assert lint_screen(build_dfg(base_design), build_dfg(benign_result.design)) == ()


def test_lint_screen_ignores_preexisting_defects():
    broken = LINT_BASE.replace("assign t = a & b;", "assign u = a & b;")
    broken_design = compile_source(broken).design
    # Base already has t undriven: its own candidates are never rejected for it.
    assert lint_screen(build_dfg(broken_design), build_dfg(broken_design)) == ()


def test_static_reject_verdict_carries_detail_and_keyspace():
    verifier = SemanticVerifier(VerifierConfig(cycles=CYCLES, static_screen="lint"))
    fix = CandidateFix(
        line_number=6, fixed_line="    assign u = a & b;",
        bug_line="    assign t = a & b;",
    )
    verdict = verifier.verify(LINT_BASE, fix, SEEDS)
    assert verdict.status == "static_reject"
    assert verdict.provenance == "static_reject"
    assert not verdict.passed
    assert "undriven" in verdict.detail

    # The unscreened keyspace is untouched: an off run still simulates.
    off = SemanticVerifier(VerifierConfig(cycles=CYCLES, static_screen="off"))
    baseline = off.verify(LINT_BASE, fix, SEEDS)
    assert baseline.provenance == "simulated"
    assert baseline.status != "static_reject"


# --------------------------------------------------------------------------- #
# stage2 screening
# --------------------------------------------------------------------------- #


def test_stage2_cone_screen_only_reroutes_verilog_bug_classification():
    from repro.corpus.generator import CorpusConfig, CorpusGenerator
    from repro.dataaug.stage1 import run_stage1
    from repro.dataaug.stage2 import Stage2Config, run_stage2

    corpus = CorpusGenerator(CorpusConfig(seed=5, design_count=6)).generate()
    samples = run_stage1(corpus).compiled[:3]

    def config(mode):
        return Stage2Config(
            seed=5, random_cycles=20, max_bugs_per_design=4, workers=1, static_screen=mode
        )

    off = run_stage2(samples, config("off"))
    cone = run_stage2(samples, config("cone"))
    cone_again = run_stage2(samples, config("cone"))

    # Deterministic under re-runs.
    assert [e.name for e in cone.sva_bug] == [e.name for e in cone_again.sva_bug]
    assert [e.name for e in cone.verilog_bug] == [e.name for e in cone_again.verilog_bug]

    off_sva = {e.name for e in off.sva_bug}
    off_vb = {e.name for e in off.verilog_bug}
    cone_sva = {e.name for e in cone.sva_bug}
    cone_vb = {e.name for e in cone.verilog_bug}
    # Screening can only move entries from SVA-Bug to Verilog-Bug (a skipped
    # mutant is invisible to every assertion), never invent or drop any.
    assert cone_sva <= off_sva
    assert off_vb <= cone_vb  # indices are preserved across the reroute
    assert len(off_sva) + len(off_vb) == len(cone_sva) + len(cone_vb)
