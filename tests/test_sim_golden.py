"""Golden simulation tests: one hand-checked design per template family.

These run through the default (compiled) backend via the Simulator factory;
`test_backend_differential` separately proves the interpreter agrees.
"""

import pytest

from repro.corpus.templates.arbiters import build_priority_arbiter
from repro.corpus.templates.composite import build_pipelined_adder
from repro.corpus.templates.counters import build_up_counter
from repro.corpus.templates.datapath import build_alu
from repro.corpus.templates.fsm import build_sequence_detector
from repro.corpus.templates.shift import build_shift_register
from repro.hdl.lint import compile_source
from repro.sim.engine import Simulator


def simulator_for(source: str) -> "Simulator":
    result = compile_source(source)
    assert result.ok and result.design is not None, result.render()
    return Simulator(result.design)


def test_up_counter_counts_wraps_and_flags_max():
    sim = simulator_for(build_up_counter("dut", width=4, has_enable=1, saturate=0).source)
    sim.step({"rst_n": 0, "en": 0})
    assert sim.peek("count") == 0
    for expected in range(1, 16):
        sim.step({"rst_n": 1, "en": 1})
        assert sim.peek("count") == expected
    assert sim.peek("at_max") == 1
    sim.step({"rst_n": 1, "en": 0})  # disabled: holds at max
    assert sim.peek("count") == 15
    sim.step({"rst_n": 1, "en": 1})  # wraps
    assert sim.peek("count") == 0 and sim.peek("at_max") == 0


def test_alu_registered_ops_and_zero_flag():
    sim = simulator_for(build_alu("dut", width=8, registered=1).source)
    sim.step({"rst_n": 0, "start": 0, "op": 0, "a": 0, "b": 0})
    sim.step({"rst_n": 1, "start": 1, "op": 0, "a": 3, "b": 5})
    assert sim.peek("result") == 8 and sim.peek("zero") == 0
    sim.step({"rst_n": 1, "start": 1, "op": 1, "a": 5, "b": 5})
    assert sim.peek("result") == 0 and sim.peek("zero") == 1
    sim.step({"rst_n": 1, "start": 0, "op": 4, "a": 0xFF, "b": 0x0F})
    assert sim.peek("result") == 0, "result must hold when start is low"
    sim.step({"rst_n": 1, "start": 1, "op": 4, "a": 0xFF, "b": 0x0F})
    assert sim.peek("result") == 0xF0


def test_shift_register_sipo_and_word_ready_pulse():
    sim = simulator_for(build_shift_register("dut", width=4, direction="left").source)
    sim.step({"rst_n": 0, "shift_en": 0, "serial_in": 0})
    for bit in (1, 0, 1, 1):
        sim.step({"rst_n": 1, "shift_en": 1, "serial_in": bit})
    assert sim.peek("data") == 0b1011
    assert sim.peek("word_ready") == 1, "word_ready pulses after the 4th bit"
    sim.step({"rst_n": 1, "shift_en": 0, "serial_in": 0})
    assert sim.peek("word_ready") == 0


def test_sequence_detector_finds_pattern_1011():
    sim = simulator_for(build_sequence_detector("dut", pattern="1011").source)
    sim.step({"rst_n": 0, "bit_valid": 0, "bit_in": 0})
    for bit in (1, 0, 1, 1):
        sim.step({"rst_n": 1, "bit_valid": 1, "bit_in": bit})
    assert sim.peek("detected") == 1
    # Overlap: "1011" ends in "1", prefix of the pattern, so "011" completes again.
    for bit, expected in ((0, 0), (1, 0), (1, 1)):
        sim.step({"rst_n": 1, "bit_valid": 1, "bit_in": bit})
        assert sim.peek("detected") == expected


def test_priority_arbiter_grants_lowest_index():
    sim = simulator_for(build_priority_arbiter("dut", requesters=4).source)
    sim.step({"rst_n": 0, "req": 0})
    sim.step({"rst_n": 1, "req": 0b0110})
    assert sim.peek("grant") == 0b0010, "bit 1 outranks bit 2"
    assert sim.peek("grant_q") == 0b0010
    assert sim.peek("any_grant") == 1
    sim.step({"rst_n": 1, "req": 0b1000})
    assert sim.peek("grant") == 0b1000
    sim.step({"rst_n": 1, "req": 0})
    assert sim.peek("grant") == 0 and sim.peek("any_grant") == 0


def test_pipelined_adder_latency_and_offset():
    sim = simulator_for(build_pipelined_adder("dut", stages=3, width=8).source)
    sim.step({"rst_n": 0, "in_valid": 0, "in_data": 0})
    sim.step({"rst_n": 1, "in_valid": 1, "in_data": 10})
    assert sim.peek("out_valid") == 0
    sim.step({"rst_n": 1, "in_valid": 0, "in_data": 0})
    assert sim.peek("out_valid") == 0
    sim.step({"rst_n": 1, "in_valid": 0, "in_data": 0})
    assert sim.peek("out_valid") == 1, "valid emerges after 3 stages"
    assert sim.peek("out_data") == 10 + 1 + 2 + 3
    sim.step({"rst_n": 1, "in_valid": 0, "in_data": 0})
    assert sim.peek("out_valid") == 0


@pytest.mark.parametrize("backend", ["compiled", "interp"])
def test_trace_samples_preponed_values(backend):
    """The trace's pre-edge sample lags the post-edge state by one update."""
    from repro.sim.engine import SimulatorOptions

    result = compile_source(build_up_counter("dut", width=4, has_enable=0).source)
    assert result.ok
    from repro.sim.engine import Simulator as factory

    sim = factory(result.design, options=SimulatorOptions(backend=backend))
    sim.step({"rst_n": 0})
    for _ in range(3):
        sim.step({"rst_n": 1})
    trace = sim.trace
    assert [s.sampled("count").to_int() for s in trace] == [0, 0, 1, 2]
    assert [s.settled("count").to_int() for s in trace] == [0, 1, 2, 3]
