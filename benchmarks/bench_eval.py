"""End-to-end evaluation benchmark harness.

Times every leg of the repair-verification loop -- corpus + augmentation
pipeline, policy training (pretrain -> SFT -> DPO with semantic challenging
mining), and the SVA-Eval-Machine benchmark run cold and warm against the
verdict cache -- and records the resulting pass@k trajectory in
``BENCH_eval.json`` so successive PRs can track both the speed and the
quality of the evaluation subsystem.

Usage::

    PYTHONPATH=src python benchmarks/bench_eval.py [--design-count N] [--output PATH]

Schema of the output (``bench_eval/v1``)::

    {
      "schema": "bench_eval/v1",
      "config": {...},                       # scale knobs of this run
      "pipeline": {"wall_time_s", "sva_bug_entries", "eval_cases"},
      "training": {"wall_time_s", "stage", "challenging_cases"},
      "eval": {
        "cold": {"wall_time_s", "cache_hits", "cache_misses"},
        "warm": {"wall_time_s", "cache_hits", "cache_misses"},
        "warm_speedup": <float>,             # cold wall / warm wall
        "candidates_verified": <int>,
        "verdicts": {...},                   # status histogram
        "pass@k": {...}                      # the headline numbers
      }
    }
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dataaug.pipeline import DataAugmentationPipeline, PipelineConfig  # noqa: E402
from repro.eval.harness import EvalConfig, EvalHarness  # noqa: E402
from repro.model.assertsolver_model import AssertSolverModel  # noqa: E402
from repro.obs import host_metadata  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--design-count",
        type=int,
        default=0,
        help="corpus size; 0 (default) uses the small configuration",
    )
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--workers", type=int, default=1, help="verification workers")
    parser.add_argument("--ks", type=int, nargs="+", default=[1, 5])
    parser.add_argument(
        "--stage", choices=("sft", "dpo"), default="dpo", help="training depth to benchmark"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_eval.json",
    )
    args = parser.parse_args()

    if args.design_count > 0:
        pipeline_config = PipelineConfig.default(seed=args.seed, design_count=args.design_count)
        scale = f"default({args.design_count})"
    else:
        pipeline_config = PipelineConfig.small(seed=args.seed)
        scale = "small"

    started = time.perf_counter()
    datasets = DataAugmentationPipeline(pipeline_config).run()
    pipeline_wall = time.perf_counter() - started
    print(
        f"pipeline[{scale}]      {pipeline_wall:6.2f}s   "
        f"{datasets.statistics.sva_bug_entries} SVA-Bug entries, "
        f"{len(datasets.sva_eval_machine)} eval cases"
    )
    if not datasets.sva_eval_machine:
        print("FAIL: held-out split is empty; increase --design-count")
        return 1

    started = time.perf_counter()
    model = AssertSolverModel(seed=args.seed)
    model.pretrain(datasets.verilog_pt)
    model.supervised_finetune(datasets.sva_bug_train, datasets.verilog_bug)
    if args.stage == "dpo":
        model.learn_from_errors(datasets.sva_bug_train)
    training_wall = time.perf_counter() - started
    challenging = model.history.challenging_stats.get("challenging", 0)
    print(
        f"training[{args.stage}]        {training_wall:6.2f}s   "
        f"{challenging} challenging cases mined semantically"
    )

    eval_config = EvalConfig(seed=args.seed, ks=tuple(sorted(set(args.ks))), workers=args.workers)
    with tempfile.TemporaryDirectory(prefix="bench_eval_cache_") as cache_root:
        eval_config.cache_dir = Path(cache_root)
        started = time.perf_counter()
        cold = EvalHarness(eval_config).run(model, datasets.sva_eval_machine)
        cold_wall = time.perf_counter() - started
        started = time.perf_counter()
        warm = EvalHarness(eval_config).run(model, datasets.sva_eval_machine)
        warm_wall = time.perf_counter() - started

    if cold.summary() != warm.summary():
        print("FAIL: warm-cache summary differs from the cold run")
        return 1

    summary = cold.summary()
    rates = {key: value for key, value in summary.items() if key.startswith("pass@")}
    print(
        f"eval cold             {cold_wall:6.2f}s   "
        f"{summary['candidates_verified']} candidates, {cold.cache_misses} cache misses"
    )
    print(
        f"eval warm             {warm_wall:6.2f}s   "
        f"{warm.cache_hits} cache hits ({cold_wall / max(warm_wall, 1e-9):.1f}x faster)"
    )
    print("pass rates            " + "  ".join(f"{k}={v:.3f}" for k, v in rates.items()))

    report = {
        "schema": "bench_eval/v1",
        "host": host_metadata(workers=args.workers),
        "config": {
            "scale": scale,
            "seed": args.seed,
            "workers": args.workers,
            "ks": sorted(set(args.ks)),
            "stage": args.stage,
        },
        "pipeline": {
            "wall_time_s": round(pipeline_wall, 3),
            "sva_bug_entries": datasets.statistics.sva_bug_entries,
            "eval_cases": len(datasets.sva_eval_machine),
        },
        "training": {
            "wall_time_s": round(training_wall, 3),
            "stage": model.stage.value,
            "challenging_cases": challenging,
        },
        "eval": {
            "cold": {
                "wall_time_s": round(cold_wall, 3),
                "cache_hits": cold.cache_hits,
                "cache_misses": cold.cache_misses,
            },
            "warm": {
                "wall_time_s": round(warm_wall, 3),
                "cache_hits": warm.cache_hits,
                "cache_misses": warm.cache_misses,
            },
            "warm_speedup": round(cold_wall / max(warm_wall, 1e-9), 2),
            "candidates_verified": summary["candidates_verified"],
            "verdicts": summary["verdicts"],
            "pass@k": rates,
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
