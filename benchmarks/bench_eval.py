"""End-to-end evaluation benchmark harness.

Times every leg of the repair-verification loop -- corpus + augmentation
pipeline, policy training (pretrain -> SFT -> DPO with semantic challenging
mining), the SVA-Eval-Machine benchmark run cold and warm against the
verdict cache, and the mutant-heavy artifact-cache leg (full recompilation
vs content-addressed incremental relowering on cold verdict caches) -- and
records the resulting pass@k trajectory in ``BENCH_eval.json`` so
successive PRs can track both the speed and the quality of the evaluation
subsystem.

Usage::

    PYTHONPATH=src python benchmarks/bench_eval.py [--design-count N] [--output PATH]
        [--min-relower-speedup X] [--min-screen-speedup X]

``--min-relower-speedup`` gates the run (exit 1) when the measured
incremental-relowering speedup falls below ``X``; 0 (the default) only
reports.  ``--min-screen-speedup`` gates the static-screening leg the same
way.  The screening leg always hard-fails on any verdict divergence between
the screened and unscreened runs, gate or no gate.

Schema of the output (``bench_eval/v3``; v2 + the ``screening`` section)::

    {
      "schema": "bench_eval/v3",
      "config": {...},                       # scale knobs of this run
      "pipeline": {"wall_time_s", "sva_bug_entries", "eval_cases"},
      "training": {"wall_time_s", "stage", "challenging_cases"},
      "eval": {
        "cold": {"wall_time_s", "cache_hits", "cache_misses"},
        "warm": {"wall_time_s", "cache_hits", "cache_misses"},
        "warm_speedup": <float>,             # cold wall / warm wall
        "candidates_verified": <int>,
        "verdicts": {...},                   # status histogram
        "pass@k": {...}                      # the headline numbers
      },
      "artifacts": {                         # the mutant-heavy leg
        "mode_off": {"wall_time_s"},         # full recompile per candidate
        "mode_incremental_cold": {           # first run: fills the store
          "wall_time_s", "artifact_hits", "artifact_misses", "nodes_reused"
        },
        "mode_incremental_warm": {           # repeat run against the store
          "wall_time_s", "artifact_hits", "artifact_misses",
          "nodes_reused", "nodes_relowered", "assertions_reused"
        },
        "e2e_speedup": <float>,              # off wall / warm wall
        "relower": {                         # the lowering microbench
          "entries", "reps", "full_s", "incremental_s", "speedup"
        },
        "min_relower_speedup": <float>       # the CI gate this run ran under
      },
      "screening": {                         # the static-screening leg
        "cases", "candidates",               # mutant-heavy workload size
        "screened": {"wall_time_s", "cone_skips", "cone_overlaps",
                     "static_rejects"},
        "unscreened": {"wall_time_s"},
        "pct_cone_skipped", "pct_static_rejected",
        "e2e_speedup",                       # unscreened wall / screened wall
        "divergences": 0,                    # always 0 -- nonzero hard-fails
        "min_screen_speedup": <float>        # the CI gate this run ran under
      }
    }
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from dataclasses import replace  # noqa: E402

from repro.artifacts import ArtifactStore  # noqa: E402
from repro.bugs.mutators import enumerate_mutations  # noqa: E402
from repro.dataaug.pipeline import DataAugmentationPipeline, PipelineConfig  # noqa: E402
from repro.eval.executor import VerificationJob, run_verification_jobs  # noqa: E402
from repro.eval.harness import EvalConfig, EvalHarness  # noqa: E402
from repro.eval.verifier import CandidateFix, derive_verification_seeds  # noqa: E402
from repro.hdl.lint import compile_source  # noqa: E402
from repro.hdl.source import SourceFile  # noqa: E402
from repro.model.assertsolver_model import AssertSolverModel  # noqa: E402
from repro.obs import host_metadata  # noqa: E402
from repro.obs.metrics import scoped_registry  # noqa: E402
from repro.sim.compile import CompileError, compile_design  # noqa: E402
from repro.sva.checker import CheckerBackend  # noqa: E402

#: Relower-microbench sizing: mutants measured and timing repetitions each.
RELOWER_ENTRIES = 10
RELOWER_REPS = 3

#: Screening-leg workload sizing: eval cases and mutant candidates per case.
SCREEN_CASES = 12
SCREEN_MUTANTS_PER_CASE = 8


def relower_microbench(entries) -> dict:
    """Time full vs incremental lowering over real eval-case mutants.

    For each case the buggy source is the base (compiled once, as the
    verifier does) and the golden-line repair is the mutant; the measured
    work is exactly what each candidate verification pays before its first
    simulated cycle: design lowering plus assertion lowering.
    """
    store = ArtifactStore()
    full_wall = 0.0
    incremental_wall = 0.0
    measured = 0
    for entry in entries[:RELOWER_ENTRIES]:
        base_design, error = store.elaborate_source(entry.buggy_source)
        if base_design is None:
            continue
        patched = SourceFile(entry.buggy_source).with_line_replaced(
            entry.line_number, entry.golden_line
        ).text
        mutant_design, error = store.elaborate_source(patched)
        if mutant_design is None:
            continue
        try:
            base_compiled = compile_design(base_design)
            base_checker = CheckerBackend(base_design)
        except CompileError:
            continue
        measured += 1
        for _ in range(RELOWER_REPS):
            started = time.perf_counter()
            compile_design(mutant_design)
            CheckerBackend(mutant_design)
            full_wall += time.perf_counter() - started
            started = time.perf_counter()
            compile_design(mutant_design, base=base_compiled)
            CheckerBackend(mutant_design, base=base_checker)
            incremental_wall += time.perf_counter() - started
    return {
        "entries": measured,
        "reps": RELOWER_REPS,
        "full_s": round(full_wall, 4),
        "incremental_s": round(incremental_wall, 4),
        "speedup": round(full_wall / max(incremental_wall, 1e-9), 2),
    }


def screening_workload(entries, seed: int) -> list[VerificationJob]:
    """Mutant-heavy verification jobs: one enumerated mutant per source line.

    Policy candidates cluster on the failing line (inside the assertion
    cone), which under-exercises the screen; enumerated single-line mutants
    spread edits across the whole design, mixing in-cone candidates (must
    simulate) with out-of-cone ones (provably skippable) -- the workload a
    verification-as-a-service deployment actually sees.
    """
    jobs: list[VerificationJob] = []
    for entry in entries[:SCREEN_CASES]:
        design = compile_source(entry.buggy_source).design
        if design is None:
            continue
        signals = sorted(design.signals)
        fixes: list[CandidateFix] = []
        for number, line in enumerate(entry.buggy_source.splitlines(), start=1):
            for candidate in enumerate_mutations(line, signals):
                fixes.append(
                    CandidateFix(line_number=number, fixed_line=candidate.buggy_line)
                )
                break  # one mutant per line spreads candidates across the design
        if not fixes:
            continue
        if len(fixes) > SCREEN_MUTANTS_PER_CASE:
            # Even stride over the whole file, not a prefix: early lines are
            # ports and declarations (almost always in-cone), and a prefix
            # sample would starve the skip path the leg exists to measure.
            stride = len(fixes) / SCREEN_MUTANTS_PER_CASE
            fixes = [fixes[int(i * stride)] for i in range(SCREEN_MUTANTS_PER_CASE)]
        jobs.append(
            VerificationJob(
                case_name=entry.name,
                buggy_source=entry.buggy_source,
                fixes=tuple(fixes),
                seeds=derive_verification_seeds(
                    entry.name, entry.stimulus_seed, count=2, base_seed=seed
                ),
                cycles=entry.stimulus_cycles,
            )
        )
    return jobs


def screening_leg(entries, seed: int, workers: int) -> tuple[dict, list[str]]:
    """Time screen=full vs screen=off on the mutant-heavy workload.

    Returns ``(report_section, divergences)``; any divergence is a
    correctness failure the caller must hard-fail on:

    * provenance ``simulated`` or ``cone_skip``: the screened verdict must
      be byte-identical (minus provenance) to the unscreened one,
    * provenance ``static_reject``: the unscreened ground truth must not be
      a confirmed repair (``pass`` with an exercised assertion).

    The screened leg runs *first*, so the shared in-process artifact store
    is cold for it and warm for the unscreened leg -- any bias makes the
    reported speedup conservative.  Neither leg uses a verdict cache.
    """
    jobs = screening_workload(entries, seed)
    screened_jobs = [replace(job, static_screen="full") for job in jobs]

    with scoped_registry() as registry:
        started = time.perf_counter()
        screened_shards = run_verification_jobs(screened_jobs, workers=workers)
        screened_wall = time.perf_counter() - started
    started = time.perf_counter()
    off_shards = run_verification_jobs(jobs, workers=workers)
    off_wall = time.perf_counter() - started

    divergences: list[str] = []
    candidates = 0
    cone_skips = 0
    rejects = 0
    for job, off_shard, screened_shard in zip(jobs, off_shards, screened_shards):
        for fix, truth, screened in zip(
            job.fixes, off_shard.verdicts, screened_shard.verdicts
        ):
            candidates += 1
            where = f"{job.case_name}:{fix.line_number}"
            truth_core = truth.to_dict()
            truth_core.pop("provenance")
            screened_core = screened.to_dict()
            provenance = screened_core.pop("provenance")
            if provenance == "static_reject":
                rejects += 1
                if truth.passed and truth.exercised:
                    divergences.append(
                        f"{where}: static_reject of a confirmed repair ({fix.fixed_line!r})"
                    )
                continue
            if provenance == "cone_skip":
                cone_skips += 1
            if screened_core != truth_core:
                divergences.append(
                    f"{where}: {provenance} verdict differs from ground truth "
                    f"({screened.status} != {truth.status}, {fix.fixed_line!r})"
                )
    section = {
        "cases": len(jobs),
        "candidates": candidates,
        "screened": {
            "wall_time_s": round(screened_wall, 3),
            "cone_skips": cone_skips,
            "cone_overlaps": registry.counters.get("analyze.cone.overlap", 0),
            "static_rejects": rejects,
        },
        "unscreened": {"wall_time_s": round(off_wall, 3)},
        "pct_cone_skipped": round(100.0 * cone_skips / max(candidates, 1), 1),
        "pct_static_rejected": round(100.0 * rejects / max(candidates, 1), 1),
        "e2e_speedup": round(off_wall / max(screened_wall, 1e-9), 2),
        "divergences": len(divergences),
    }
    return section, divergences


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--design-count",
        type=int,
        default=0,
        help="corpus size; 0 (default) uses the small configuration",
    )
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--workers", type=int, default=1, help="verification workers")
    parser.add_argument("--ks", type=int, nargs="+", default=[1, 5])
    parser.add_argument(
        "--stage", choices=("sft", "dpo"), default="dpo", help="training depth to benchmark"
    )
    parser.add_argument(
        "--min-relower-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) when incremental relowering is not at least this "
        "many times faster than full recompilation (0: report only)",
    )
    parser.add_argument(
        "--min-screen-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) when the statically screened leg is not at least "
        "this many times faster than the unscreened one (0: report only; "
        "verdict divergence always fails regardless)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_eval.json",
    )
    args = parser.parse_args()

    if args.design_count > 0:
        pipeline_config = PipelineConfig.default(seed=args.seed, design_count=args.design_count)
        scale = f"default({args.design_count})"
    else:
        pipeline_config = PipelineConfig.small(seed=args.seed)
        scale = "small"

    started = time.perf_counter()
    datasets = DataAugmentationPipeline(pipeline_config).run()
    pipeline_wall = time.perf_counter() - started
    print(
        f"pipeline[{scale}]      {pipeline_wall:6.2f}s   "
        f"{datasets.statistics.sva_bug_entries} SVA-Bug entries, "
        f"{len(datasets.sva_eval_machine)} eval cases"
    )
    if not datasets.sva_eval_machine:
        print("FAIL: held-out split is empty; increase --design-count")
        return 1

    started = time.perf_counter()
    model = AssertSolverModel(seed=args.seed)
    model.pretrain(datasets.verilog_pt)
    model.supervised_finetune(datasets.sva_bug_train, datasets.verilog_bug)
    if args.stage == "dpo":
        model.learn_from_errors(datasets.sva_bug_train)
    training_wall = time.perf_counter() - started
    challenging = model.history.challenging_stats.get("challenging", 0)
    print(
        f"training[{args.stage}]        {training_wall:6.2f}s   "
        f"{challenging} challenging cases mined semantically"
    )

    eval_config = EvalConfig(seed=args.seed, ks=tuple(sorted(set(args.ks))), workers=args.workers)
    with tempfile.TemporaryDirectory(prefix="bench_eval_cache_") as cache_root:
        eval_config.cache_dir = Path(cache_root)
        started = time.perf_counter()
        cold = EvalHarness(eval_config).run(model, datasets.sva_eval_machine)
        cold_wall = time.perf_counter() - started
        started = time.perf_counter()
        warm = EvalHarness(eval_config).run(model, datasets.sva_eval_machine)
        warm_wall = time.perf_counter() - started

    if cold.summary() != warm.summary():
        print("FAIL: warm-cache summary differs from the cold run")
        return 1

    summary = cold.summary()
    rates = {key: value for key, value in summary.items() if key.startswith("pass@")}
    print(
        f"eval cold             {cold_wall:6.2f}s   "
        f"{summary['candidates_verified']} candidates, {cold.cache_misses} cache misses"
    )
    print(
        f"eval warm             {warm_wall:6.2f}s   "
        f"{warm.cache_hits} cache hits ({cold_wall / max(warm_wall, 1e-9):.1f}x faster)"
    )
    print("pass rates            " + "  ".join(f"{k}={v:.3f}" for k, v in rates.items()))

    # ---------------------------------------------------------------- #
    # the mutant-heavy artifact-cache leg
    # ---------------------------------------------------------------- #
    # No verdict cache on any of these runs -- the verdict tier would
    # short-circuit the verification work the artifact cache accelerates;
    # all three runs do the same simulations and differ only in how
    # compilation is served: "off" recompiles everything from scratch,
    # "cold" fills the artifact store, "warm" re-verifies against the
    # filled store (the verification-as-a-service steady state, where
    # almost all traffic is mutants of already-seen designs).  Summaries
    # must stay byte-identical, so the legs double as a live differential.
    off_config = EvalConfig(
        seed=args.seed, ks=tuple(sorted(set(args.ks))), workers=args.workers,
        artifact_mode="off",
    )
    started = time.perf_counter()
    mode_off = EvalHarness(off_config).run(model, datasets.sva_eval_machine)
    off_wall = time.perf_counter() - started
    with tempfile.TemporaryDirectory(prefix="bench_eval_artifacts_") as artifact_root:
        incremental_config = EvalConfig(
            seed=args.seed, ks=tuple(sorted(set(args.ks))), workers=args.workers,
            artifact_mode="incremental", artifact_dir=Path(artifact_root),
        )
        with scoped_registry() as cold_registry:
            started = time.perf_counter()
            mode_cold = EvalHarness(incremental_config).run(
                model, datasets.sva_eval_machine
            )
            inc_cold_wall = time.perf_counter() - started
        with scoped_registry() as registry:
            started = time.perf_counter()
            mode_warm = EvalHarness(incremental_config).run(
                model, datasets.sva_eval_machine
            )
            inc_warm_wall = time.perf_counter() - started
    if mode_off.summary() != mode_cold.summary() or mode_off.summary() != mode_warm.summary():
        print("FAIL: artifact-cache run summary differs from the full-recompile run")
        return 1
    if mode_off.summary() != summary:
        print("FAIL: mutant-heavy leg summary differs from the verdict-cache leg")
        return 1
    counters = registry.counters
    e2e_speedup = off_wall / max(inc_warm_wall, 1e-9)
    print(
        f"artifacts off         {off_wall:6.2f}s   full recompile per candidate"
    )
    print(
        f"artifacts cold        {inc_cold_wall:6.2f}s   "
        f"{cold_registry.counters.get('relower.nodes_reused', 0)} nodes reused "
        f"while filling the store"
    )
    print(
        f"artifacts warm        {inc_warm_wall:6.2f}s   "
        f"{counters.get('artifact.hits', 0)} hits, "
        f"{counters.get('relower.nodes_reused', 0)} nodes reused "
        f"({e2e_speedup:.1f}x faster than off)"
    )

    relower = relower_microbench(datasets.sva_eval_machine)
    print(
        f"relower microbench    full {relower['full_s']:.3f}s vs "
        f"incremental {relower['incremental_s']:.3f}s over "
        f"{relower['entries']} mutants x{relower['reps']} "
        f"({relower['speedup']:.1f}x)"
    )
    if args.min_relower_speedup > 0 and relower["speedup"] < args.min_relower_speedup:
        print(
            f"FAIL: relower speedup {relower['speedup']:.2f}x is below the "
            f"--min-relower-speedup gate {args.min_relower_speedup:.2f}x"
        )
        return 1

    # ---------------------------------------------------------------- #
    # the static-screening leg
    # ---------------------------------------------------------------- #
    screening, divergences = screening_leg(
        datasets.sva_eval_machine, seed=args.seed, workers=args.workers
    )
    screening["min_screen_speedup"] = args.min_screen_speedup
    print(
        f"screen full           {screening['screened']['wall_time_s']:6.2f}s   "
        f"{screening['screened']['cone_skips']} cone skips "
        f"({screening['pct_cone_skipped']:.0f}%), "
        f"{screening['screened']['static_rejects']} lint rejects over "
        f"{screening['candidates']} candidates"
    )
    print(
        f"screen off            {screening['unscreened']['wall_time_s']:6.2f}s   "
        f"({screening['e2e_speedup']:.1f}x screened-leg speedup)"
    )
    if divergences:
        print(f"FAIL: {len(divergences)} screened verdicts diverge from ground truth")
        for message in divergences[:10]:
            print(f"  {message}")
        return 1
    if args.min_screen_speedup > 0 and screening["e2e_speedup"] < args.min_screen_speedup:
        print(
            f"FAIL: screening speedup {screening['e2e_speedup']:.2f}x is below "
            f"the --min-screen-speedup gate {args.min_screen_speedup:.2f}x"
        )
        return 1

    report = {
        "schema": "bench_eval/v3",
        "host": host_metadata(workers=args.workers),
        "config": {
            "scale": scale,
            "seed": args.seed,
            "workers": args.workers,
            "ks": sorted(set(args.ks)),
            "stage": args.stage,
        },
        "pipeline": {
            "wall_time_s": round(pipeline_wall, 3),
            "sva_bug_entries": datasets.statistics.sva_bug_entries,
            "eval_cases": len(datasets.sva_eval_machine),
        },
        "training": {
            "wall_time_s": round(training_wall, 3),
            "stage": model.stage.value,
            "challenging_cases": challenging,
        },
        "eval": {
            "cold": {
                "wall_time_s": round(cold_wall, 3),
                "cache_hits": cold.cache_hits,
                "cache_misses": cold.cache_misses,
            },
            "warm": {
                "wall_time_s": round(warm_wall, 3),
                "cache_hits": warm.cache_hits,
                "cache_misses": warm.cache_misses,
            },
            "warm_speedup": round(cold_wall / max(warm_wall, 1e-9), 2),
            "candidates_verified": summary["candidates_verified"],
            "verdicts": summary["verdicts"],
            "pass@k": rates,
        },
        "artifacts": {
            "mode_off": {"wall_time_s": round(off_wall, 3)},
            "mode_incremental_cold": {
                "wall_time_s": round(inc_cold_wall, 3),
                "artifact_hits": cold_registry.counters.get("artifact.hits", 0),
                "artifact_misses": cold_registry.counters.get("artifact.misses", 0),
                "nodes_reused": cold_registry.counters.get("relower.nodes_reused", 0),
            },
            "mode_incremental_warm": {
                "wall_time_s": round(inc_warm_wall, 3),
                "artifact_hits": counters.get("artifact.hits", 0),
                "artifact_misses": counters.get("artifact.misses", 0),
                "nodes_reused": counters.get("relower.nodes_reused", 0),
                "nodes_relowered": counters.get("relower.nodes_lowered", 0),
                "assertions_reused": counters.get("relower.assertions_reused", 0),
            },
            "e2e_speedup": round(e2e_speedup, 2),
            "relower": relower,
            "min_relower_speedup": args.min_relower_speedup,
        },
        "screening": screening,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
