"""SVA checker benchmark harness.

Measures, for one representative design per template family (augmented with
its template + mined assertions, like Stage 2 produces):

* tree-walking checker throughput (full-trace checks/second),
* compiled checker throughput, with the one-off lowering cost separated,
* the resulting speedup,

plus an end-to-end leg through :class:`repro.eval.verifier.SemanticVerifier`
(compile -> simulate -> check on fresh seeds) with each checker backend, and
writes everything to ``BENCH_sva.json`` so successive PRs can track the
trajectory next to ``BENCH_sim.json`` and ``BENCH_eval.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_sva.py [--cycles N] [--output PATH]

Schema of the output (``bench_sva/v4``)::

    {
      "schema": "bench_sva/v4",
      "cycles_per_family": <int>,            # trace length per microbench
      "timing_repeats": <int>,               # best-of-N wall-clock policy
      "microbenchmarks": {
        "<family>": {
          "assertions": <int>,
          "cycles": <int>,
          "interp_checks_per_s": <float>,    # tree-walking full-trace checks/s
          "compiled_checks_per_s": <float>,  # default = attempt-tensor engine
          "walk_checks_per_s": <float>,      # vectorised series + Python walk
          "closure_checks_per_s": <float>,   # per-cycle closure path (vectorise=False)
          "lower_ms": <float>,               # one-off assertion lowering cost
          "speedup": <float>,                # default engine vs tree-walker
          "vector_speedup": <float>,         # vectorised series vs closure path
          "attempt_speedup": <float>,        # attempt tensor vs Python walk
          "batch_speedup": <float>           # stacked check_batch vs per-trace check
        }, ...
      },
      "geomean_speedup": <float>,
      "min_speedup": <float>,
      "vectorised": {                        # columnar series vs closure path
        "geomean_speedup": <float>,
        "min_speedup": <float>
      },
      "attempt_tensor": {                    # 2-D attempt resolution vs walk
        "geomean_speedup": <float>,
        "min_speedup": <float>
      },
      "batch": {                             # seed-stacked single-pass leg
        "traces": <int>,                     # seed-trace batch size (verifier shape)
        "cycles": <int>,
        "geomean_speedup": <float>,
        "min_speedup": <float>
      },
      "verifier": {                          # repro.eval end-to-end leg
        "cases": <int>,
        "interp_wall_s": <float>,
        "compiled_wall_s": <float>,          # runs the batched check_batch path
        "speedup": <float>
      }
    }

v4 adds the attempt-tensor leg: the compiled checker now resolves every
attempt of a vectorised assertion in one whole-array (attempt x cycle)
numpy expression (:func:`repro.sva.vector.walk_attempts_tensor`), and
``check_batch`` stacks a batch's per-seed columns into one padded
(seed x cycle) grid so each assertion covers all seeds in a single 2-D
pass.  ``walk_checks_per_s`` keeps the previous generation (vectorised
series + Python attempt walk, ``attempt_tensor=False``) measurable;
``attempt_speedup`` records what the tensor buys over it, and
``vector_speedup`` still compares the series engines like-for-like (both
on the Python walk).  The run hard-fails on any verdict divergence
between the tree-walker, the closure path, the walk path and the tensor
path, batched or not.

v3 added the vectorised-series leg; v2 added the batch leg (the verifier
pushes all of a candidate's seed traces through one ``check_batch`` pass).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.corpus.templates import all_families  # noqa: E402
from repro.eval.verifier import SemanticVerifier, VerifierConfig  # noqa: E402
from repro.hdl.lint import compile_source  # noqa: E402
from repro.obs import host_metadata  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.sim.stimulus import StimulusGenerator  # noqa: E402
from repro.sva.checker import AssertionChecker  # noqa: E402
from repro.sva.compile import CompiledAssertionChecker  # noqa: E402
from repro.sva.generator import (  # noqa: E402
    insert_assertions,
    mine_assertions,
    template_assertion_blocks,
)


def _best_of(repeat: int, run) -> float:
    """Smallest wall time of ``repeat`` runs (robust against scheduler noise)."""
    return min(_timed(run) for _ in range(repeat))


def _timed(run) -> float:
    start = time.perf_counter()
    run()
    return time.perf_counter() - start


def augmented_source(family) -> str | None:
    """The family's representative source with template + mined assertions."""
    artifact = family.build(f"bench_{family.name}", **family.parameter_grid[0])
    golden = compile_source(artifact.source)
    if not golden.ok or golden.design is None:
        return None
    mining_trace = Simulator(golden.design).run(
        StimulusGenerator(golden.design, seed=1).mixed_stimulus(random_cycles=24).vectors
    )
    candidates = template_assertion_blocks(artifact.template_svas, artifact.family)
    candidates.extend(mine_assertions(golden.design, mining_trace, max_assertions=5))
    if not candidates:
        return None
    return insert_assertions(artifact.source, candidates)


#: The batch leg mirrors the verifier's workload shape: one candidate, a
#: handful of fresh stimulus seeds, one lowered checker.
BATCH_TRACES = 2
BATCH_CYCLES = 96


def _assert_verdicts_identical(family_name: str, baseline, other, label: str) -> None:
    for name in baseline.outcomes:
        if baseline.outcomes[name].comparison_key() != other.outcomes[name].comparison_key():
            raise RuntimeError(
                f"{family_name}: {label} disagrees on assertion '{name}'"
            )


def bench_family(family, cycles: int, repeat: int) -> dict | None:
    source = augmented_source(family)
    if source is None:
        return None
    result = compile_source(source)
    if not result.ok or result.design is None:
        return None
    design = result.design
    if not design.assertions:
        return None
    vectors = StimulusGenerator(design, seed=2).mixed_stimulus(random_cycles=cycles).vectors
    # Fully materialised: all backends read the same dict-backed samples, so
    # the comparison isolates checking cost from trace materialisation.
    trace = Simulator(design).run(vectors).materialized()

    interp = AssertionChecker(design)
    interp_s = _best_of(repeat, lambda: interp.check(trace))

    start = time.perf_counter()
    compiled = CompiledAssertionChecker(design, strict=True)
    lower_ms = (time.perf_counter() - start) * 1e3
    compiled_s = _best_of(repeat, lambda: compiled.check(trace))

    # The previous engine generation: same vectorised series, per-attempt
    # Python walk instead of the whole-array attempt tensor.
    walk = CompiledAssertionChecker(design, strict=True, attempt_tensor=False)
    walk_s = _best_of(repeat, lambda: walk.check(trace))

    # Two generations back: same lowering, per-cycle closure series instead
    # of whole-array evaluation, on the very same trace.
    closure = CompiledAssertionChecker(design, strict=True, vectorise=False)
    closure_s = _best_of(repeat, lambda: closure.check(trace))

    # Multi-trace batch leg: all seed traces through one check_batch pass
    # (what the verifier does per candidate) vs one check call per trace.
    # The batched pass stacks the per-seed columns into one (seed x cycle)
    # grid and resolves each attempt-tensor assertion for all seeds at once.
    batch = [
        Simulator(design).run(
            StimulusGenerator(design, seed=100 + index)
            .mixed_stimulus(random_cycles=BATCH_CYCLES)
            .vectors
        ).materialized()
        for index in range(BATCH_TRACES)
    ]
    sequential_s = _best_of(repeat, lambda: [compiled.check(t) for t in batch])
    batched_s = _best_of(repeat, lambda: compiled.check_batch(batch))

    # The benchmark doubles as a differential guard and hard-fails on any
    # verdict divergence across the full four-way fallback chain --
    # tree-walker vs attempt tensor vs vectorised walk vs closure path --
    # plus the stacked batch pass against per-trace checking.
    baseline = interp.check(trace)
    _assert_verdicts_identical(family.name, baseline, compiled.check(trace), "attempt tensor")
    _assert_verdicts_identical(family.name, baseline, walk.check(trace), "vectorised walk")
    _assert_verdicts_identical(family.name, baseline, closure.check(trace), "closure path")
    for single, via_batch in zip([compiled.check(t) for t in batch], compiled.check_batch(batch)):
        _assert_verdicts_identical(family.name, single, via_batch, "stacked check_batch")

    return {
        "assertions": len(design.assertions),
        "cycles": len(trace),
        "interp_checks_per_s": round(1.0 / interp_s, 2),
        "compiled_checks_per_s": round(1.0 / compiled_s, 2),
        "walk_checks_per_s": round(1.0 / walk_s, 2),
        "closure_checks_per_s": round(1.0 / closure_s, 2),
        "lower_ms": round(lower_ms, 3),
        "speedup": round(interp_s / compiled_s, 2),
        "vector_speedup": round(closure_s / walk_s, 3),
        "attempt_speedup": round(walk_s / compiled_s, 3),
        "batch_speedup": round(sequential_s / batched_s, 3),
    }


def bench_verifier(cycles: int, families: list) -> dict:
    """End-to-end repro.eval leg: apply-fix verification with each backend.

    Each case compiles and simulates identically; only the checker backend
    differs, so the delta is exactly what the compiled checker buys the
    verification fan-out per candidate.
    """
    sources = [s for s in (augmented_source(f) for f in families) if s is not None]
    seeds = (1009, 2027)
    walls = {}
    for backend in ("interp", "auto"):
        verifier = SemanticVerifier(
            VerifierConfig(cycles=cycles, checker_backend=backend)
        )
        start = time.perf_counter()
        for source in sources:
            verifier.verify_source(source, seeds)
        walls[backend] = time.perf_counter() - start
    return {
        "cases": len(sources),
        "interp_wall_s": round(walls["interp"], 3),
        "compiled_wall_s": round(walls["auto"], 3),
        "speedup": round(walls["interp"] / max(walls["auto"], 1e-9), 2),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=768, help="trace cycles per family")
    parser.add_argument("--repeat", type=int, default=3, help="best-of-N timing repeats")
    parser.add_argument(
        "--verifier-cases", type=int, default=8, help="families in the end-to-end verifier leg"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero if the geomean checking speedup falls below this",
    )
    parser.add_argument(
        "--min-vector-speedup",
        type=float,
        default=None,
        help="exit non-zero if the vectorised-vs-closure geomean falls below this",
    )
    parser.add_argument(
        "--min-attempt-speedup",
        type=float,
        default=None,
        help="exit non-zero if the attempt-tensor-vs-walk geomean falls below this",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=None,
        help="exit non-zero if ANY family's stacked-batch speedup falls below this",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_sva.json",
    )
    args = parser.parse_args()

    families = all_families()
    micro: dict[str, dict] = {}
    for family in families:
        entry = bench_family(family, args.cycles, args.repeat)
        if entry is None:
            continue
        micro[family.name] = entry
        print(
            f"{family.name:<26} {entry['assertions']:>2d} SVAs   "
            f"interp {entry['interp_checks_per_s']:>8.1f} checks/s   "
            f"compiled {entry['compiled_checks_per_s']:>8.1f} checks/s   "
            f"{entry['speedup']:>5.1f}x  ({entry['attempt_speedup']:.2f}x vs walk, "
            f"{entry['vector_speedup']:.2f}x vs closure)"
        )
    if not micro:
        print("FAIL: no family produced a checkable design")
        return 1

    def geomean_of(values: list[float]) -> float:
        return math.exp(sum(math.log(v) for v in values) / len(values))

    speedups = [entry["speedup"] for entry in micro.values()]
    geomean = geomean_of(speedups)
    vector_speedups = [entry["vector_speedup"] for entry in micro.values()]
    vector_geomean = geomean_of(vector_speedups)
    attempt_speedups = [entry["attempt_speedup"] for entry in micro.values()]
    attempt_geomean = geomean_of(attempt_speedups)
    batch_speedups = [entry["batch_speedup"] for entry in micro.values()]
    batch_geomean = geomean_of(batch_speedups)

    verifier = bench_verifier(min(args.cycles, 96), families[: args.verifier_cases])
    report = {
        "schema": "bench_sva/v4",
        "host": host_metadata(),
        "cycles_per_family": args.cycles,
        "timing_repeats": args.repeat,
        "microbenchmarks": micro,
        "geomean_speedup": round(geomean, 2),
        "min_speedup": round(min(speedups), 2),
        "vectorised": {
            "geomean_speedup": round(vector_geomean, 3),
            "min_speedup": round(min(vector_speedups), 3),
        },
        "attempt_tensor": {
            "geomean_speedup": round(attempt_geomean, 3),
            "min_speedup": round(min(attempt_speedups), 3),
        },
        "batch": {
            "traces": BATCH_TRACES,
            "cycles": BATCH_CYCLES,
            "geomean_speedup": round(batch_geomean, 3),
            "min_speedup": round(min(batch_speedups), 3),
        },
        "verifier": verifier,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\ngeomean checking speedup {report['geomean_speedup']}x "
        f"(min {report['min_speedup']}x); vectorised over closure path "
        f"{report['vectorised']['geomean_speedup']}x "
        f"(min {report['vectorised']['min_speedup']}x); attempt tensor over "
        f"walk {report['attempt_tensor']['geomean_speedup']}x "
        f"(min {report['attempt_tensor']['min_speedup']}x); stacked seed-trace "
        f"pass {report['batch']['geomean_speedup']}x "
        f"(min {report['batch']['min_speedup']}x); verifier end-to-end "
        f"{verifier['speedup']}x over {verifier['cases']} cases"
    )
    print(f"wrote {args.output}")
    failed = False
    if args.min_speedup is not None and geomean < args.min_speedup:
        print(
            f"FAIL: geomean speedup {report['geomean_speedup']}x is below "
            f"the --min-speedup gate of {args.min_speedup}x"
        )
        failed = True
    if args.min_vector_speedup is not None and vector_geomean < args.min_vector_speedup:
        print(
            f"FAIL: vectorised geomean {report['vectorised']['geomean_speedup']}x "
            f"is below the --min-vector-speedup gate of {args.min_vector_speedup}x"
        )
        failed = True
    if args.min_attempt_speedup is not None and attempt_geomean < args.min_attempt_speedup:
        print(
            f"FAIL: attempt-tensor geomean {report['attempt_tensor']['geomean_speedup']}x "
            f"is below the --min-attempt-speedup gate of {args.min_attempt_speedup}x"
        )
        failed = True
    if args.min_batch_speedup is not None and min(batch_speedups) < args.min_batch_speedup:
        print(
            f"FAIL: stacked-batch minimum {report['batch']['min_speedup']}x "
            f"is below the --min-batch-speedup gate of {args.min_batch_speedup}x"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
