"""End-to-end data-augmentation pipeline benchmark.

Runs the full pipeline (corpus -> Stage 1 -> Stage 2 -> split -> Stage 3)
serially and with a worker fan-out, records the per-stage wall-clock
breakdown of both runs, verifies the outputs are byte-identical (the
``repro.runtime`` determinism contract), and writes ``BENCH_pipeline.json``
so successive PRs can track the trajectory next to the other BENCH files.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py \
        [--design-count N] [--workers W] [--seed S] [--output PATH]

Schema of the output (``bench_pipeline/v1``)::

    {
      "schema": "bench_pipeline/v1",
      "design_count": <int>,
      "seed": <int>,
      "workers": <int>,                       # fan-out size of the parallel run
      "serial":   {"total_s": <float>, "stages": {"corpus": <float>,
                   "stage1": <float>, "stage2": <float>,
                   "split": <float>, "stage3": <float>}},
      "parallel": {"total_s": <float>, "stages": {...}},
      "speedup": <float>,                     # serial / parallel wall clock
      "identical_output": true,               # determinism guard (hard fail if not)
      "entries": {"verilog_pt": <int>, "verilog_bug": <int>,
                  "sva_bug_train": <int>, "sva_eval_machine": <int>}
    }

Single-core hosts still produce the file (the parallel leg then mostly
measures pool overhead); the per-stage breakdown is the useful signal there.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dataaug.pipeline import DataAugmentationPipeline, PipelineConfig  # noqa: E402
from repro.obs import host_metadata  # noqa: E402


def dataset_bytes(datasets) -> str:
    """Canonical byte-level snapshot of all four splits + statistics."""
    return json.dumps(
        {
            "verilog_pt": [vars(entry) for entry in datasets.verilog_pt],
            "verilog_bug": [entry.to_dict() for entry in datasets.verilog_bug],
            "sva_bug_train": [entry.to_dict() for entry in datasets.sva_bug_train],
            "sva_eval_machine": [entry.to_dict() for entry in datasets.sva_eval_machine],
            "statistics": vars(datasets.statistics),
        },
        sort_keys=True,
    )


def run_once(seed: int, design_count: int, workers: int) -> tuple[dict, object]:
    config = PipelineConfig.default(seed=seed, design_count=design_count, workers=workers)
    pipeline = DataAugmentationPipeline(config)
    started = time.perf_counter()
    datasets = pipeline.run()
    total = time.perf_counter() - started
    leg = {
        "total_s": round(total, 3),
        "stages": {label: round(value, 3) for label, value in pipeline.stage_timings.items()},
    }
    return leg, datasets


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--design-count", type=int, default=24, help="corpus size")
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--workers", type=int, default=2, help="fan-out of the parallel leg")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_pipeline.json",
    )
    args = parser.parse_args()

    serial, serial_datasets = run_once(args.seed, args.design_count, workers=1)
    parallel, parallel_datasets = run_once(args.seed, args.design_count, workers=args.workers)

    identical = dataset_bytes(serial_datasets) == dataset_bytes(parallel_datasets)
    if not identical:
        print("FAIL: worker fan-out changed the datasets (determinism contract broken)")
        return 1

    statistics = serial_datasets.statistics
    report = {
        "schema": "bench_pipeline/v1",
        "host": host_metadata(workers=args.workers),
        "design_count": args.design_count,
        "seed": args.seed,
        "workers": args.workers,
        "serial": serial,
        "parallel": parallel,
        "speedup": round(serial["total_s"] / max(parallel["total_s"], 1e-9), 2),
        "identical_output": True,
        "entries": {
            "verilog_pt": statistics.verilog_pt_entries,
            "verilog_bug": statistics.verilog_bug_entries,
            "sva_bug_train": len(serial_datasets.sva_bug_train),
            "sva_eval_machine": len(serial_datasets.sva_eval_machine),
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    for label, leg in (("serial", serial), (f"{args.workers} workers", parallel)):
        stages = "  ".join(f"{k}={v:.2f}s" for k, v in leg["stages"].items())
        print(f"{label:<10} total={leg['total_s']:.2f}s  {stages}")
    print(
        f"speedup {report['speedup']}x over {args.design_count} designs "
        f"({report['entries']['sva_bug_train']} train / "
        f"{report['entries']['sva_eval_machine']} eval entries); outputs identical"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
