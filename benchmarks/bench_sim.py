"""Simulation benchmark harness.

Measures, for one representative design per template family:

* interpreter backend throughput (cycles/second),
* compiled backend throughput (cycles/second),
* the resulting speedup,

plus the wall time of the small data-augmentation pipeline configuration,
and writes everything to ``BENCH_sim.json`` so successive PRs can track the
performance trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim.py [--cycles N] [--output PATH]

Schema of the output (``bench_sim/v1``)::

    {
      "schema": "bench_sim/v1",
      "cycles_per_family": <int>,            # stimulus length per microbench
      "timing_repeats": <int>,               # best-of-N wall-clock policy
      "microbenchmarks": {
        "<family>": {
          "signals": <int>,                  # design size indicator
          "cycles": <int>,
          "interp_cps": <float>,             # interpreter cycles/second
          "compiled_cps": <float>,           # compiled backend cycles/second
          "compiled_cps_materialized": <float>,  # incl. full trace materialisation
          "compile_ms": <float>,             # one-off lowering cost
          "speedup": <float>,                # compiled_cps / interp_cps (sim only)
          "speedup_materialized": <float>    # like-for-like: trace fully read back
        }, ...
      },
      "geomean_speedup": <float>,
      "min_speedup": <float>,
      "pipeline": {
        "config": "small",
        "wall_time_s": <float>,
        "sva_bug_entries": <int>,
        "verilog_bug_entries": <int>
      }
    }
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.corpus.templates import all_families  # noqa: E402
from repro.dataaug.pipeline import DataAugmentationPipeline, PipelineConfig  # noqa: E402
from repro.hdl.lint import compile_source  # noqa: E402
from repro.obs import host_metadata  # noqa: E402
from repro.sim.compile import CompiledSimulator, compile_design  # noqa: E402
from repro.sim.engine import InterpSimulator  # noqa: E402
from repro.sim.stimulus import StimulusGenerator  # noqa: E402


def _best_of(repeat: int, run) -> float:
    """Smallest wall time of ``repeat`` runs (robust against scheduler noise)."""
    return min(_timed(run) for _ in range(repeat))


def _timed(run) -> float:
    start = time.perf_counter()
    run()
    return time.perf_counter() - start


def bench_family(family, cycles: int, repeat: int) -> dict:
    artifact = family.build(f"bench_{family.name}", **family.parameter_grid[0])
    result = compile_source(artifact.source)
    if not result.ok or result.design is None:
        raise RuntimeError(f"benchmark design for {family.name} does not compile")
    design = result.design
    vectors = StimulusGenerator(design, seed=1).random_stimulus(cycles=cycles).vectors

    interp_s = _best_of(repeat, lambda: InterpSimulator(design).run(vectors))

    start = time.perf_counter()
    compiled = compile_design(design)
    compile_ms = (time.perf_counter() - start) * 1e3

    compiled_s = _best_of(
        repeat, lambda: CompiledSimulator(design, compiled=compiled).run(vectors)
    )
    # Like-for-like with the interpreter (whose trace is always dict-backed):
    # include materialising every DiffTrace sample, the cost a consumer that
    # reads the whole trace (e.g. the assertion checker) would pay.
    compiled_mat_s = _best_of(
        repeat,
        lambda: CompiledSimulator(design, compiled=compiled).run(vectors).materialized(),
    )

    return {
        "signals": len(design.signals),
        "cycles": len(vectors),
        "interp_cps": round(len(vectors) / interp_s, 1),
        "compiled_cps": round(len(vectors) / compiled_s, 1),
        "compiled_cps_materialized": round(len(vectors) / compiled_mat_s, 1),
        "compile_ms": round(compile_ms, 3),
        "speedup": round(interp_s / compiled_s, 2),
        "speedup_materialized": round(interp_s / compiled_mat_s, 2),
    }


def bench_pipeline() -> dict:
    start = time.perf_counter()
    datasets = DataAugmentationPipeline(PipelineConfig.small()).run()
    wall = time.perf_counter() - start
    return {
        "config": "small",
        "wall_time_s": round(wall, 3),
        "sva_bug_entries": datasets.statistics.sva_bug_entries,
        "verilog_bug_entries": datasets.statistics.verilog_bug_entries,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=2000, help="stimulus cycles per family")
    parser.add_argument("--repeat", type=int, default=3, help="best-of-N timing repeats")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero if any family's simulation speedup falls below this",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_sim.json",
    )
    args = parser.parse_args()

    micro: dict[str, dict] = {}
    for family in all_families():
        micro[family.name] = bench_family(family, args.cycles, args.repeat)
        entry = micro[family.name]
        print(
            f"{family.name:<26} interp {entry['interp_cps']:>9.0f} c/s   "
            f"compiled {entry['compiled_cps']:>9.0f} c/s   {entry['speedup']:>5.1f}x"
        )

    speedups = [entry["speedup"] for entry in micro.values()]
    mat_speedups = [entry["speedup_materialized"] for entry in micro.values()]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    geomean_mat = math.exp(sum(math.log(s) for s in mat_speedups) / len(mat_speedups))
    report = {
        "schema": "bench_sim/v1",
        "host": host_metadata(),
        "cycles_per_family": args.cycles,
        "timing_repeats": args.repeat,
        "microbenchmarks": micro,
        "geomean_speedup": round(geomean, 2),
        "min_speedup": round(min(speedups), 2),
        "geomean_speedup_materialized": round(geomean_mat, 2),
        "min_speedup_materialized": round(min(mat_speedups), 2),
        "pipeline": bench_pipeline(),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\ngeomean speedup {report['geomean_speedup']}x (min {report['min_speedup']}x); "
        f"with trace materialisation {report['geomean_speedup_materialized']}x "
        f"(min {report['min_speedup_materialized']}x); "
        f"pipeline(small) {report['pipeline']['wall_time_s']}s"
    )
    print(f"wrote {args.output}")
    if args.min_speedup is not None and min(speedups) < args.min_speedup:
        worst = min(micro.items(), key=lambda kv: kv[1]["speedup"])
        print(
            f"FAIL: {worst[0]} speedup {worst[1]['speedup']}x "
            f"is below the --min-speedup gate of {args.min_speedup}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
