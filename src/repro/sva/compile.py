"""The compiled SVA checking backend.

The tree-walking :class:`~repro.sva.checker.AssertionChecker` rebuilds an
:class:`~repro.sim.evaluator.Evaluator` for every boolean sub-expression, of
every cycle, of every attempt, of every assertion.  With the simulator
compiled (:mod:`repro.sim.compile`) and verification fanning out per
candidate, that re-evaluation is the hot path of the whole repair loop.

This backend applies the same lowering recipe to assertions:

* every boolean-layer expression is compiled **once per design** into a
  closure over flat per-cycle integer arrays, reusing the simulator's
  expression lowering (:class:`~repro.sim.compile.ExprCompiler`);
* on top of that, each assertion is **vector-lowered** where possible
  (:mod:`repro.sva.vector`): element expressions and sampled-value series
  are evaluated as whole-trace numpy array expressions over the trace's
  columnar view (:meth:`~repro.sim.trace.Trace.columns`), so the per-cycle
  work drops from one closure-tree call per element per cycle to a handful
  of array operations per element per trace;
* sampled-value functions (``$past``/``$rose``/``$fell``/``$stable``/
  ``$changed``) are lowered to **precomputed per-cycle series**: shifted
  array views on the vectorised path, one argument evaluation per cycle on
  the closure path -- never twice per attempt per cycle;
* ``disable iff`` becomes a prefix-count mask (``np.cumsum`` on the
  vectorised path), so the "was the attempt disabled anywhere in
  [start, end]" question is O(1) instead of the tree-walker's
  O(attempt-span) rescan per attempt;
* attempt evaluation **shares the per-cycle boolean results across all
  start cycles**: each element expression is evaluated exactly once per
  cycle, and on the vectorised path the per-attempt resolution itself is a
  whole-array computation (:func:`repro.sva.vector.walk_attempts_tensor`)
  over (attempt x cycle) masks -- antecedent-start vectors, delay-window
  shifts, disable prefix masks and pass/fail/vacuous bucketing for every
  start cycle in one numpy expression.  The pure-indexing Python walk
  (:meth:`CompiledAssertionChecker._walk_attempts`) remains as the
  differential oracle for the tensor and as the closure path's resolver;
* :meth:`CompiledAssertionChecker.check_batch` **stacks the per-seed
  columnar views** of a batch into one padded (seed x cycle) grid and runs
  each vectorised assertion's element expressions and attempt tensor once
  for the whole batch, masked to the ragged per-trace lengths -- the
  verifier's remaining-seeds pass is one numpy evaluation per assertion,
  not one per seed.

The fallback chain is per assertion: **attempt tensor -> vectorised series
+ Python walk -> per-cycle closures + walk -> tree-walking oracle**.  The
tensor runs exactly where the series vectorisation runs (its refusal
conditions are the vector lowering's, plus the ``attempt_tensor=False``
knob); an assertion the vector lowering refuses (dynamic part selects,
>63-bit operands, ...) uses the closures; an assertion the closure
lowering rejects uses the oracle; a trace that lacks a referenced signal
falls back to the oracle for the whole call.  All levels are
outcome-identical by construction plus differential testing
(`tests/test_sva_compile`, `tests/test_trace_columns`): attempts,
antecedent matches, passes, vacuous/pending/disabled counts and every
failure's start and failing cycle agree.  Use the
:func:`~repro.sva.checker.CheckerBackend` factory to construct one.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.hdl import ast
from repro.hdl.elaborate import AssertionSpec, ElaboratedDesign
from repro.obs.metrics import get_registry, labeled
from repro.sim.compile import CompileError, ExprCompiler
from repro.sim.engine import SimulationError
from repro.sim.trace import Trace
from repro.sva import vector as sva_vector
from repro.sva.checker import (
    SAMPLED_VALUE_FUNCTIONS,
    AssertionChecker,
    AssertionFailure,
    AssertionOutcome,
    CheckReport,
    infer_expression_width,
    sampled_past_depth,
)

#: A value triple on the compiled path: (value, xmask, width).
ValueTriple = tuple[int, int, int]

#: One fully-unknown bit, the tree-walker's "evaluation failed" sentinel.
_UNKNOWN_BIT: ValueTriple = (0, 1, 1)


class _SampledRegistry:
    """Per-assertion registry of precomputed sampled-value series.

    A sampled call compiles to a closure that reads ``series[index]`` at the
    cycle held in ``cycle_cell``; the series themselves are (re)built once
    per trace by :meth:`fill`.  Builders are appended in dependency order --
    a nested sampled call is compiled (and therefore registered) before the
    call containing it -- so filling in registration order always finds the
    series a builder reads already computed.
    """

    def __init__(self) -> None:
        self.cycle_cell: list[int] = [0]
        self.builders: list[Callable[[list, list, int], list[ValueTriple]]] = []
        self.series: list[list[ValueTriple]] = []

    def fill(self, rows_v: list, rows_x: list, n: int) -> None:
        for index, build in enumerate(self.builders):
            self.series[index] = build(rows_v, rows_x, n)

    def release(self) -> None:
        """Drop the per-trace series (mutating in place: closures hold the list)."""
        for index in range(len(self.series)):
            self.series[index] = []

    def lower(self, call: ast.SystemCall, compiler: "_SvaExprCompiler",
              design: ElaboratedDesign) -> Callable:
        name = call.name
        if not call.args:
            # Mirrors the tree-walker's missing-argument guard: unknown(1).
            return lambda val, xm: _UNKNOWN_BIT
        argument = call.args[0]
        arg_fn = compiler.compile(argument)
        arg_width = infer_expression_width(argument, design)
        unknown_arg: ValueTriple = (0, (1 << arg_width) - 1, arg_width)
        cell = self.cycle_cell

        def eval_arg(rows_v: list, rows_x: list, t: int) -> ValueTriple:
            """The argument sampled at cycle ``t`` (tree-walker's value_at)."""
            if t < 0:
                return unknown_arg
            cell[0] = t
            try:
                return arg_fn(rows_v[t], rows_x[t])
            except SimulationError:
                return _UNKNOWN_BIT

        if name == "$past":
            depth = sampled_past_depth(call, design.parameters)

            def build(rows_v: list, rows_x: list, n: int) -> list[ValueTriple]:
                return [eval_arg(rows_v, rows_x, c - depth) for c in range(n)]

        else:
            # $rose/$fell compare bit 0; $stable/$changed compare the value.
            def build(rows_v: list, rows_x: list, n: int, name=name) -> list[ValueTriple]:
                current = [eval_arg(rows_v, rows_x, c) for c in range(n)]
                out: list[ValueTriple] = []
                previous = unknown_arg
                for cur in current:
                    if cur[1] or previous[1]:
                        out.append(_UNKNOWN_BIT)
                    elif name == "$rose":
                        out.append((int((cur[0] & 1) == 1 and (previous[0] & 1) == 0), 0, 1))
                    elif name == "$fell":
                        out.append((int((cur[0] & 1) == 0 and (previous[0] & 1) == 1), 0, 1))
                    elif name == "$stable":
                        out.append((int(cur[0] == previous[0]), 0, 1))
                    else:  # $changed
                        out.append((int(cur[0] != previous[0]), 0, 1))
                    previous = cur
                return out

        index = len(self.builders)
        self.builders.append(build)
        self.series.append([])
        series = self.series
        return lambda val, xm, index=index, series=series, cell=cell: series[index][cell[0]]


class _SvaExprCompiler(ExprCompiler):
    """The simulator's expression lowering, extended with sampled values.

    Everything else -- operators, selects, concats, the synthesisable system
    functions -- is inherited unchanged, which is what keeps the two checker
    backends' boolean layers behaviourally identical for free (the simulator
    differential suite already pins the lowering against the evaluator).
    """

    def __init__(self, design: ElaboratedDesign, slots: dict[str, int],
                 registry: _SampledRegistry):
        super().__init__(design, slots)
        self._registry = registry

    def _compile_system_call(self, expr: ast.SystemCall):
        if expr.name in SAMPLED_VALUE_FUNCTIONS:
            return self._registry.lower(expr, self, self._design)
        return super()._compile_system_call(expr)


class _LoweredAssertion:
    """One assertion lowered to element closures plus attempt-shape metadata."""

    __slots__ = ("spec", "registry", "element_fns", "antecedent", "consequent",
                 "disable_index", "overlapping", "vector_fns")

    def __init__(self, spec: AssertionSpec, registry: _SampledRegistry,
                 element_fns: list, antecedent: Optional[list], consequent: list,
                 disable_index: Optional[int],
                 vector_fns: Optional[list] = None):
        self.spec = spec
        self.registry = registry
        #: Compiled boolean-layer expressions, indexed by the pairs below.
        self.element_fns = element_fns
        #: [(cumulative delay offset, element index)] or None for no antecedent.
        self.antecedent = antecedent
        self.consequent = consequent
        self.disable_index = disable_index
        self.overlapping = spec.body.overlapping
        #: Whole-array (fn, width) pairs, same indexing as element_fns, or
        #: None when this assertion runs on the per-cycle closure path.
        self.vector_fns = vector_fns


class _PreparedTrace:
    """One trace's per-call state: columns and/or rows, built at most once.

    Both representations are lazy: columns (the vectorised one) are built by
    the first vector-lowered assertion, rows (the per-cycle closure one) by
    the first fallback-path assertion.  A check that only touches one path
    builds only that representation, and an all-vectorised design never
    materialises per-cycle sample dicts at all (a DiffTrace stays in diff
    form).  Signal availability was probed up front (``has_signals``), so
    the lazy builds cannot fail.
    """

    __slots__ = ("trace", "cycles", "_cols", "_rows", "_checker")

    def __init__(self, checker: "CompiledAssertionChecker", trace: Trace):
        self._checker = checker
        self.trace = trace
        self.cycles = len(trace)
        self._cols: Optional[tuple[list, list]] = None
        self._rows: Optional[tuple[list, list]] = None

    def cols(self) -> tuple[list, list]:
        if self._cols is None:
            columns = self.trace.columns(self._checker._names)
            names = self._checker._names
            self._cols = (
                [columns.values[name] for name in names],
                [columns.xmasks[name] for name in names],
            )
        return self._cols

    def rows(self) -> tuple[list, list]:
        if self._rows is None:
            rows = self._checker._trace_rows(self.trace)
            if rows is None:  # pragma: no cover - membership was pre-probed
                raise KeyError("trace rows unavailable")
            self._rows = rows
        return self._rows


class _StackedColumns:
    """A batch's per-seed columns stacked into one padded (seed x cycle) grid.

    Built lazily by the first attempt-tensor assertion of a
    :meth:`CompiledAssertionChecker.check_batch` call and shared by all of
    them.  Each referenced signal becomes one ``(seeds, max_cycles)`` array
    pair; rows shorter than the grid are padded with ``(0, 0)`` cells,
    which the tensor walk masks against the true per-row lengths before
    any truth test (see :func:`repro.sva.vector.walk_attempts_tensor`).
    A single-trace batch skips the copy entirely: its 1-D columns are
    reshaped ``(1, cycles)`` views.
    """

    __slots__ = ("_checker", "_preps", "_built")

    def __init__(self, checker: "CompiledAssertionChecker",
                 preps: list["_PreparedTrace"]):
        self._checker = checker
        self._preps = preps
        self._built: Optional[tuple[list, list, np.ndarray, tuple]] = None

    def stack(self) -> tuple[list, list, np.ndarray, tuple]:
        """``(values, xmasks, lengths, shape)`` -- per-slot stacked lanes."""
        if self._built is None:
            preps = self._preps
            lengths = np.array([prep.cycles for prep in preps], dtype=np.int64)
            if len(preps) == 1:
                cols_v, cols_x = preps[0].cols()
                stacked_v = [np.asarray(col)[None, :] for col in cols_v]
                stacked_x = [np.asarray(col)[None, :] for col in cols_x]
                shape = (1, int(lengths[0]))
            else:
                per_trace = [prep.cols() for prep in preps]
                rows = len(preps)
                width = int(lengths.max()) if rows else 0
                shape = (rows, width)
                stacked_v, stacked_x = [], []
                for slot in range(len(self._checker._names)):
                    # Wide (>63-bit) signals carry object-dtype columns;
                    # only non-vectorised assertions reference them, so the
                    # stacked twin exists purely to keep slots aligned.
                    dtype = np.int64
                    if any(tv[slot].dtype == object for tv, _tx in per_trace):
                        dtype = object
                    slot_v = np.zeros(shape, dtype=dtype)
                    slot_x = np.zeros(shape, dtype=dtype)
                    for row, (trace_v, trace_x) in enumerate(per_trace):
                        cycles = int(lengths[row])
                        slot_v[row, :cycles] = trace_v[slot]
                        slot_x[row, :cycles] = trace_x[slot]
                    stacked_v.append(slot_v)
                    stacked_x.append(slot_x)
            self._built = (stacked_v, stacked_x, lengths, shape)
        return self._built


class CompiledAssertionChecker:
    """Drop-in replacement for :class:`~repro.sva.checker.AssertionChecker`.

    Lowers every assertion of ``design`` once at construction; each
    :meth:`check` call then costs one expression evaluation per element per
    cycle plus a pure-indexing attempt walk, independent of how many
    attempts overlap each cycle.
    """

    def __init__(self, design: ElaboratedDesign, strict: bool = False,
                 vectorise: bool = True, attempt_tensor: bool = True,
                 base: Optional["CompiledAssertionChecker"] = None):
        from repro.artifacts.canon import assertion_key

        self._design = design
        self._oracle = AssertionChecker(design)
        #: False forces the per-cycle closure path even for assertions the
        #: vector lowering supports (the benchmark's like-for-like leg).
        self._vectorise = vectorise
        #: False keeps vectorised assertions on the Python attempt walk
        #: (the tensor's differential oracle and benchmark baseline).  Only
        #: meaningful with ``vectorise``: the tensor consumes vector lanes.
        self._attempt_tensor = attempt_tensor and vectorise
        referenced: set[str] = set()
        for spec in design.assertions:
            referenced |= spec.identifiers()
        self._names: list[str] = sorted(n for n in referenced if n in design.signals)
        self._slots: dict[str, int] = {name: i for i, name in enumerate(self._names)}
        self._lowered: dict[int, Optional[_LoweredAssertion]] = {}
        #: Content key -> (lowered state, engine choice): the reuse index an
        #: incremental lower against this checker as ``base`` consults.  An
        #: assertion whose support cone intersects a patch's dirty set has a
        #: changed key (its rendered expressions differ) and misses here;
        #: everything else -- in the common one-line-repair case, *all*
        #: assertions, since repairs mutate design logic rather than the
        #: properties -- reuses its lowering verbatim.
        self._spec_index: dict[
            str, tuple[Optional[_LoweredAssertion], dict]
        ] = {}
        self.assertions_reused = 0
        if base is not None and not self._reuse_compatible(base):
            base = None
        base_index = base._spec_index if base is not None else {}
        #: Per-assertion engine decision: name -> {"engine": "vectorised" |
        #: "closure" | "tree_walker", "reason": why it was demoted (None for
        #: the vectorised engine)}.  A vectorisation regression used to be
        #: invisible -- the checker silently fell back and only a 2.6x
        #: slowdown hinted at it; now every demotion carries its reason.
        self.engine_choices: dict[str, dict] = {}
        failed: list[str] = []
        for spec in design.assertions:
            key = assertion_key(spec)
            cached = base_index.get(key)
            if cached is not None:
                lowered, choice = cached
                self.engine_choices[spec.name] = dict(choice)
                self.assertions_reused += 1
                get_registry().inc("relower.assertions_reused")
            else:
                lowered = self._lower(spec)
            self._spec_index[key] = (lowered, self.engine_choices[spec.name])
            self._lowered[id(spec)] = lowered
            if lowered is None:
                failed.append(spec.name)
        if strict and failed:
            raise CompileError(
                "assertions cannot be lowered: " + ", ".join(sorted(failed))
            )

    def _reuse_compatible(self, base: "CompiledAssertionChecker") -> bool:
        """Whether ``base``'s lowered assertions can be reused here.

        Lowered element closures capture slot indices into this checker's
        private signal table plus signal widths and parameter values, so
        reuse needs all three to match (the table only covers signals the
        assertions reference, which one-line logic repairs never change).
        """
        if not isinstance(base, CompiledAssertionChecker):
            return False
        if base._vectorise != self._vectorise or base._names != self._names:
            return False
        if base._attempt_tensor != self._attempt_tensor:
            # Cached engine choices carry the attempt-engine decision too.
            return False
        for name in self._names:
            if base._design.signals[name].width != self._design.signals[name].width:
                return False
        return base._design.parameters == self._design.parameters

    @property
    def design(self) -> ElaboratedDesign:
        return self._design

    def engine_report(self) -> dict:
        """Which engines handle each assertion, and why any was demoted.

        Covers both layers of the fallback chain: the series engine
        (``engines`` / ``fallback_reasons``) and the attempt engine
        (``attempt_engines`` / ``attempt_fallback_reasons``), so a demotion
        off the attempt tensor is as visible as one off the vectorised
        series -- no silent drop to the Python walk.
        """
        counts = {"vectorised": 0, "closure": 0, "tree_walker": 0}
        attempt_counts = {"tensor": 0, "walk": 0, "tree_walker": 0}
        reasons: dict[str, int] = {}
        attempt_reasons: dict[str, int] = {}
        for choice in self.engine_choices.values():
            counts[choice["engine"]] += 1
            if choice["reason"]:
                reasons[choice["reason"]] = reasons.get(choice["reason"], 0) + 1
            attempt_counts[choice["attempt_engine"]] += 1
            if choice["attempt_reason"]:
                attempt_reasons[choice["attempt_reason"]] = (
                    attempt_reasons.get(choice["attempt_reason"], 0) + 1
                )
        return {
            "engines": counts,
            "fallback_reasons": dict(sorted(reasons.items())),
            "attempt_engines": attempt_counts,
            "attempt_fallback_reasons": dict(sorted(attempt_reasons.items())),
            "assertions": {
                name: dict(choice)
                for name, choice in sorted(self.engine_choices.items())
            },
        }

    def _record_engine(self, spec: AssertionSpec, engine: str,
                       reason: Optional[str]) -> None:
        # The attempt-engine decision is fully determined by the series
        # engine plus the attempt_tensor knob: the tensor consumes the
        # vector lanes, so whatever demotes the series demotes it too.
        if engine == "vectorised":
            if self._attempt_tensor:
                attempt_engine, attempt_reason = "tensor", None
            else:
                attempt_engine, attempt_reason = "walk", "attempt tensor disabled"
        elif engine == "closure":
            attempt_engine = "walk"
            attempt_reason = f"series engine is closure: {reason}"
        else:
            attempt_engine, attempt_reason = "tree_walker", reason
        self.engine_choices[spec.name] = {
            "engine": engine,
            "reason": reason,
            "attempt_engine": attempt_engine,
            "attempt_reason": attempt_reason,
        }
        registry = get_registry()
        registry.inc(f"sva.lower.{engine}")
        if engine == "closure" and reason:
            registry.inc(labeled("sva.vector_fallback", reason))
        registry.inc(f"sva.attempt.{attempt_engine}")
        if attempt_reason:
            registry.inc(labeled("sva.attempt_fallback", attempt_reason))

    # ------------------------------------------------------------------ #
    # lowering
    # ------------------------------------------------------------------ #

    def _lower(self, spec: AssertionSpec) -> Optional[_LoweredAssertion]:
        registry = _SampledRegistry()
        compiler = _SvaExprCompiler(self._design, self._slots, registry)
        element_fns: list = []
        element_exprs: list[ast.Expression] = []

        def lower_sequence(sequence: ast.SvaSequence) -> list[tuple[int, int]]:
            items: list[tuple[int, int]] = []
            offset = 0
            for element in sequence.elements:
                offset += element.delay
                items.append((offset, len(element_fns)))
                element_fns.append(compiler.compile(element.expr))
                element_exprs.append(element.expr)
            return items

        try:
            antecedent = (
                lower_sequence(spec.body.antecedent)
                if spec.body.antecedent is not None
                else None
            )
            consequent = lower_sequence(spec.body.consequent)
            disable_index = None
            if spec.disable_iff is not None:
                disable_index = len(element_fns)
                element_fns.append(compiler.compile(spec.disable_iff))
                element_exprs.append(spec.disable_iff)
        except CompileError as exc:
            self._record_engine(spec, "tree_walker", f"closure lowering failed: {exc}")
            return None
        # Closure lowering succeeded; try the whole-array lowering on top.
        # A refusal keeps this assertion on the closure path, with the
        # refusing construct recorded as the demotion reason.
        vector_fns = None
        if self._vectorise:
            try:
                vector_fns = sva_vector.lower_elements(
                    self._design, self._slots, element_exprs
                )
            except sva_vector.VectorError as exc:
                self._record_engine(spec, "closure", str(exc))
            else:
                self._record_engine(spec, "vectorised", None)
        else:
            self._record_engine(spec, "closure", "vectorisation disabled")
        return _LoweredAssertion(
            spec, registry, element_fns, antecedent, consequent, disable_index,
            vector_fns,
        )

    # ------------------------------------------------------------------ #
    # checking
    # ------------------------------------------------------------------ #

    def check(self, trace: Trace, assertions: Optional[list[AssertionSpec]] = None) -> CheckReport:
        """Check (a subset of) the design's assertions over ``trace``."""
        return self.check_batch([trace], assertions)[0]

    def check_batch(
        self, traces: list[Trace], assertions: Optional[list[AssertionSpec]] = None
    ) -> list[CheckReport]:
        """Check several traces (e.g. one per verification seed) in one pass.

        The lowering is shared by construction; batching adds one
        per-assertion dispatch (lowered lookup, on-the-fly lowering of
        foreign specs, series release) for the whole batch instead of one
        per trace, and each trace's columnar view is built exactly once and
        shared by every vectorised assertion.  Attempt-tensor assertions go
        further: the batch's per-seed columns are stacked into one padded
        (seed x cycle) grid (:class:`_StackedColumns`) and each assertion
        is resolved for *all* seeds in a single 2-D numpy pass.
        Outcome-identical to calling :meth:`check` per trace, in trace
        order, which is what the batch differential test asserts.
        """
        specs = assertions if assertions is not None else self._design.assertions
        registry = get_registry()
        reports: list[CheckReport] = []
        prepared: list[Optional[_PreparedTrace]] = []
        for trace in traces:
            prep = self._prepare_trace(trace)
            if prep is None:
                # A referenced signal is missing from the trace samples; the
                # tree-walker's per-expression EvalError semantics apply.
                reports.append(self._oracle.check(trace, assertions))
                registry.inc("sva.check.tree_walker", len(specs))
                prepared.append(None)
            else:
                reports.append(CheckReport())
                prepared.append(prep)
        live = [
            (prep, report)
            for prep, report in zip(prepared, reports)
            if prep is not None
        ]
        stacked = _StackedColumns(self, [prep for prep, _ in live]) if live else None
        for spec in specs:
            lowered = self._lowered.get(id(spec))
            if lowered is None and id(spec) not in self._lowered:
                # A spec object the design does not own (ad-hoc subset
                # checking): lower on the fly, once for the whole batch,
                # without caching -- a dead foreign spec's id could be
                # recycled.
                lowered = self._lower(spec)
            if lowered is None:
                for trace, prep, report in zip(traces, prepared, reports):
                    if prep is not None:
                        report.outcomes[spec.name] = self._oracle.check_assertion(spec, trace)
                        registry.inc("sva.check.tree_walker")
                continue
            try:
                if (
                    lowered.vector_fns is not None
                    and self._attempt_tensor
                    and stacked is not None
                ):
                    registry.inc("sva.check.attempt_tensor", len(live))
                    outcomes = self._evaluate_tensor(lowered, stacked)
                    for (_prep, report), outcome in zip(live, outcomes):
                        report.outcomes[spec.name] = outcome
                    continue
                for prep, report in zip(prepared, reports):
                    if prep is None:
                        continue
                    outcome = AssertionOutcome(name=spec.name)
                    if lowered.vector_fns is not None:
                        registry.inc("sva.check.vectorised")
                        report.outcomes[spec.name] = self._evaluate_vector(
                            lowered, outcome, prep.cols(), prep.cycles
                        )
                    else:
                        registry.inc("sva.check.closure")
                        rows_v, rows_x = prep.rows()
                        report.outcomes[spec.name] = self._evaluate_lowered(
                            lowered, outcome, rows_v, rows_x, prep.cycles
                        )
            finally:
                # A long-lived checker (cached on the design) must not retain
                # the last trace's sampled-value series between checks.
                lowered.registry.release()
        return reports

    def _prepare_trace(self, trace: Trace) -> Optional[_PreparedTrace]:
        """Lazy per-trace representations, or None when a referenced signal
        is missing from the trace (the whole-trace oracle fallback, as
        before -- probed cheaply up front so the lazy builds cannot fail).

        A trace whose columns for exactly these signals are already
        memoised skips the membership probe: a successful column build is
        proof the signals exist, and the probe is the dominant per-trace
        setup cost when the same trace is checked repeatedly.
        """
        if trace.columns_cached(self._names) is None and not trace.has_signals(
            self._names
        ):
            return None
        return _PreparedTrace(self, trace)

    def _trace_rows(self, trace: Trace) -> Optional[tuple[list, list]]:
        """The referenced signals' (value, xmask) columns, one row per cycle.

        Consecutive cycles whose preponed sample dict is shared (a quiet
        design under :class:`~repro.sim.trace.DiffTrace`) share the row
        lists too, so quiet traces cost almost nothing to transpose.
        """
        names = self._names
        rows_v: list[list[int]] = []
        rows_x: list[list[int]] = []
        prev_pre: Optional[dict] = None
        row_v: list[int] = []
        row_x: list[int] = []
        for cycle in range(len(trace)):
            pre = trace[cycle].pre_edge
            if pre is not prev_pre:
                try:
                    values = [pre[name] for name in names]
                except KeyError:
                    return None
                row_v = [v.value for v in values]
                row_x = [v.xmask for v in values]
                prev_pre = pre
            rows_v.append(row_v)
            rows_x.append(row_x)
        return rows_v, rows_x

    def _evaluate_lowered(
        self, lowered: _LoweredAssertion, outcome: AssertionOutcome,
        rows_v: list, rows_x: list, n: int
    ) -> AssertionOutcome:
        """Per-cycle closure path: series via one closure call per cycle."""
        lowered.registry.fill(rows_v, rows_x, n)
        cell = lowered.registry.cycle_cell

        # One evaluation per element expression per cycle, shared by every
        # attempt: True / False / None (unknown or evaluation error).
        series: list[list[Optional[bool]]] = []
        for fn in lowered.element_fns:
            column: list[Optional[bool]] = []
            for c in range(n):
                cell[0] = c
                try:
                    v, x, _w = fn(rows_v[c], rows_x[c])
                except SimulationError:
                    column.append(None)
                    continue
                column.append(True if v != 0 else (None if x else False))
            series.append(column)

        # disable iff: a prefix count makes "disabled anywhere in
        # [start, end]" one subtraction instead of a rescan per attempt.
        disabled: Optional[list[bool]] = None
        prefix: Optional[list[int]] = None
        if lowered.disable_index is not None:
            disable_column = series[lowered.disable_index]
            disabled = [value is True for value in disable_column]
            prefix = [0] * (n + 1)
            running = 0
            for c in range(n):
                if disabled[c]:
                    running += 1
                prefix[c + 1] = running
        return self._walk_attempts(lowered, outcome, series, disabled, prefix, n)

    def _evaluate_vector(
        self, lowered: _LoweredAssertion, outcome: AssertionOutcome,
        cols: tuple[list, list], n: int
    ) -> AssertionOutcome:
        """Vectorised path: series as whole-trace numpy array expressions."""
        cols_v, cols_x = cols
        series: list[list[Optional[bool]]] = []
        disabled: Optional[list[bool]] = None
        prefix: Optional[list[int]] = None
        for index, (fn, _width) in enumerate(lowered.vector_fns):
            values, xmasks = fn(cols_v, cols_x, (n,))
            values = sva_vector.as_column(values, (n,))
            xmasks = sva_vector.as_column(xmasks, (n,))
            series.append(sva_vector.tri_column(values, xmasks))
            if index == lowered.disable_index:
                # Truthy == the tri-state True the closure path tests for.
                lanes = values != 0
                disabled = lanes.tolist()
                prefix = [0]
                prefix.extend(np.cumsum(lanes, dtype=np.int64).tolist())
        return self._walk_attempts(lowered, outcome, series, disabled, prefix, n)

    def _evaluate_tensor(
        self, lowered: _LoweredAssertion, stacked: _StackedColumns
    ) -> list[AssertionOutcome]:
        """Attempt-tensor path: one 2-D numpy pass resolves every attempt of
        every trace in the batch (a single trace is the (1, cycles) case)."""
        stacked_v, stacked_x, lengths, shape = stacked.stack()
        values: list[np.ndarray] = []
        xmasks: list[np.ndarray] = []
        for fn, _width in lowered.vector_fns:
            lane_v, lane_x = fn(stacked_v, stacked_x, shape)
            values.append(sva_vector.as_column(lane_v, shape))
            xmasks.append(sva_vector.as_column(lane_x, shape))
        spec = lowered.spec
        return sva_vector.walk_attempts_tensor(
            spec.name,
            spec.error_message,
            lowered.antecedent,
            lowered.consequent,
            lowered.overlapping,
            lowered.disable_index,
            values,
            xmasks,
            lengths,
        )

    def _walk_attempts(
        self, lowered: _LoweredAssertion, outcome: AssertionOutcome,
        series: list[list[Optional[bool]]], disabled: Optional[list[bool]],
        prefix: Optional[list[int]], n: int
    ) -> AssertionOutcome:
        """The attempt walk shared by both series backends: pure indexing."""
        spec = lowered.spec
        antecedent = lowered.antecedent
        consequent = lowered.consequent
        overlapping = lowered.overlapping
        message = spec.error_message
        failures = outcome.failures
        last = n - 1

        for start in range(n):
            outcome.attempts += 1
            if disabled is not None and disabled[start]:
                outcome.disabled += 1
                continue

            if antecedent is not None:
                cycle = start
                pending = False
                matched = True
                for offset, index in antecedent:
                    cycle = start + offset
                    if cycle >= n:
                        pending = True
                        break
                    if series[index][cycle] is not True:
                        matched = False
                        break
                if pending:
                    outcome.pending += 1
                    continue
                if not matched:
                    outcome.vacuous += 1
                    continue
                outcome.antecedent_matches += 1
                consequent_start = cycle if overlapping else cycle + 1
            else:
                outcome.antecedent_matches += 1
                consequent_start = start

            if prefix is not None:
                end = consequent_start if consequent_start < last else last
                if prefix[end + 1] - prefix[start]:
                    outcome.disabled += 1
                    continue

            pending = False
            fail_cycle = -1
            for offset, index in consequent:
                cycle = consequent_start + offset
                if cycle >= n:
                    pending = True
                    break
                if series[index][cycle] is False:
                    fail_cycle = cycle
                    break
            if pending:
                outcome.pending += 1
            elif fail_cycle < 0:
                outcome.passes += 1
            else:
                if prefix is not None:
                    end = fail_cycle if fail_cycle < last else last
                    if prefix[end + 1] - prefix[start]:
                        outcome.disabled += 1
                        continue
                failures.append(
                    AssertionFailure(
                        assertion=spec.name,
                        start_cycle=start,
                        fail_cycle=fail_cycle,
                        message=message,
                    )
                )
        return outcome


def compile_assertions(
    design: ElaboratedDesign,
    strict: bool = False,
    vectorise: bool = True,
    attempt_tensor: bool = True,
    base: Optional[CompiledAssertionChecker] = None,
) -> CompiledAssertionChecker:
    """Lower ``design``'s assertions for the compiled checker backend.

    ``attempt_tensor=False`` keeps vectorised assertions on the Python
    attempt walk (the tensor's differential oracle and benchmark baseline).

    With ``base`` (a checker for a signal-compatible design, typically the
    unpatched base of a candidate repair), assertions whose content key is
    unchanged reuse the base's lowering; only assertions whose support cone
    the patch touched are relowered.
    """
    return CompiledAssertionChecker(
        design, strict=strict, vectorise=vectorise,
        attempt_tensor=attempt_tensor, base=base,
    )
