"""Whole-array (numpy columnar) lowering of SVA boolean layers.

The compiled checker (:mod:`repro.sva.compile`) evaluates every element
expression through one closure call per cycle.  That closure tree is already
fast, but it is still O(cycles x AST nodes) of Python dispatch per element.
This module lowers the same expressions one level further: each expression
becomes a function over **whole-trace column arrays**
(:meth:`repro.sim.trace.Trace.columns`), evaluating all cycles in a handful
of numpy array operations:

* identifiers read the signal's ``(value, xmask)`` columns directly;
* operators become masked array expressions that reproduce the scalar
  closure semantics lane for lane -- including x-propagation (an unknown
  operand poisons the full result width, exactly like the closure path);
* ``$past`` becomes a shifted view of the argument series with a pre-trace
  all-``x`` fill; ``$rose``/``$fell``/``$stable``/``$changed`` become
  shifted comparisons with the xmask of *either* sample propagated;
* ``disable iff`` feeds a prefix-count mask built with ``np.cumsum``.

The lowering is deliberately partial: anything whose scalar semantics
depend on per-cycle control flow or per-cycle widths -- dynamic part
selects, non-constant replication counts, mismatched ternary branch widths,
signals wider than an ``int64`` column -- raises :class:`VectorError`, and
the caller falls back to the per-cycle closure path for that assertion
(which in turn falls back to the tree-walking oracle for constructs *it*
rejects).  Within the supported subset the results are value-identical to
the closure path by construction, which the differential suite asserts
outcome-for-outcome.

Integer model: every lane is a non-negative Python-int-semantics value
masked to its expression width (<= 63 bits), carried in ``int64`` arrays.
Arithmetic may wrap mod 2**64 on the way -- that is harmless, because every
result is immediately masked to a width that divides 2**64.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.hdl import ast
from repro.hdl.elaborate import ElaboratedDesign
from repro.sim.evaluator import EvalError, Evaluator
from repro.sim.trace import INT64_COLUMN_MAX_WIDTH
from repro.sva.checker import (
    SAMPLED_VALUE_FUNCTIONS,
    AssertionFailure,
    AssertionOutcome,
    infer_expression_width,
    sampled_past_depth,
)

_I64 = np.int64

#: A vector closure: (cols_v, cols_x, shape) -> (value_lanes, xmask_lanes).
#: ``shape`` is the lane shape -- ``(cycles,)`` for one trace's columns, or
#: ``(seeds, cycles)`` for a stacked batch of padded per-seed columns (the
#: 2-D attempt-tensor path).  Lanes are int64 ndarrays of that shape -- or
#: scalars for constant subexpressions, which numpy broadcasting carries
#: through transparently.  Every lowered operator is elementwise, so the
#: same closure evaluates both shapes; only the delay shifts
#: (:func:`_shift_series`) are axis-aware, operating on the last (cycle)
#: axis so rows never contaminate each other.
VecFn = Callable[[list, list, tuple], tuple]


class VectorError(Exception):
    """Raised when an expression cannot be lowered to whole-array form."""


def as_column(lanes, shape) -> np.ndarray:
    """Broadcast a scalar-or-array lane value to an int64 array of ``shape``."""
    return np.broadcast_to(np.asarray(lanes, dtype=_I64), shape)


#: Tri-state decode table for element series: index by 0/1/2.
TRI_STATES = (False, True, None)


def tri_column(values: np.ndarray, xmasks: np.ndarray) -> list:
    """Per-cycle element booleans as the walker's ``True/False/None`` list.

    Matches the closure path's decode: truthy value -> ``True``; zero value
    with any unknown bit -> ``None``; known zero -> ``False``.
    """
    code = np.where(values != 0, 1, np.where(xmasks != 0, 2, 0))
    return [TRI_STATES[c] for c in code.tolist()]


def _shift_series(
    values: np.ndarray, xmasks: np.ndarray, shape, depth: int, fill_xmask: int
) -> tuple[np.ndarray, np.ndarray]:
    """The series delayed by ``depth`` cycles, back-filled with all-``x``.

    The shift is along the last (cycle) axis, so on a stacked 2-D batch
    every row sees its own pre-trace all-``x`` fill and rows never bleed
    into each other.
    """
    n = shape[-1]
    shifted_v = np.zeros(shape, dtype=_I64)
    shifted_x = np.empty(shape, dtype=_I64)
    filled = depth if depth < n else n
    shifted_x[..., :filled] = fill_xmask
    if filled < n:
        shifted_v[..., filled:] = values[..., : n - filled]
        shifted_x[..., filled:] = xmasks[..., : n - filled]
    return shifted_v, shifted_x


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def _popcount(values) -> np.ndarray:
        return np.bitwise_count(np.asarray(values, dtype=np.uint64)).astype(_I64)

else:  # pragma: no cover - exercised only on numpy 1.x

    def _popcount(values) -> np.ndarray:
        # 64-bit SWAR popcount; inputs are non-negative (< 2**63) so the
        # final multiply's top byte (the count, <= 63) never sets the sign.
        a = np.asarray(values, dtype=_I64)
        a = a - ((a >> 1) & 0x5555555555555555)
        a = (a & 0x3333333333333333) + ((a >> 2) & 0x3333333333333333)
        a = (a + (a >> 4)) & 0x0F0F0F0F0F0F0F0F
        return (a * 0x0101010101010101) >> 56


def _shift_left(values, amounts, mask: int):
    """``(values << amounts) & mask`` with oversized shifts yielding 0.

    Computed in uint64 so a shift into (or past) bit 63 wraps mod 2**64 --
    correct, because ``mask`` covers at most 63 bits, and 2**width divides
    2**64.
    """
    unsigned = np.asarray(values).astype(np.uint64)
    capped = np.asarray(np.minimum(amounts, 63)).astype(np.uint64)
    shifted = ((unsigned << capped) & np.uint64(mask)).astype(_I64)
    return np.where(np.asarray(amounts) >= 64, 0, shifted)


def _shift_right(values, amounts):
    """``values >> amounts`` with oversized shifts yielding 0 (values >= 0)."""
    shifted = np.asarray(values) >> np.minimum(amounts, 63)
    return np.where(np.asarray(amounts) >= 64, 0, shifted)


class VectorExprCompiler:
    """Lowers expression trees to whole-array closures over trace columns.

    Mirrors :class:`repro.sim.compile.ExprCompiler` (the per-cycle closure
    lowering) operator for operator; every branch below states the scalar
    semantics it reproduces.  ``compile`` returns ``(fn, width)`` -- widths
    are static on this path (the per-cycle-varying widths the closure path
    can produce are exactly the cases that raise :class:`VectorError`).
    """

    def __init__(self, design: ElaboratedDesign, slots: dict[str, int]):
        self._design = design
        self._slots = slots
        self._parameters = design.parameters

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def compile(self, expr: ast.Expression) -> tuple[VecFn, int]:
        if isinstance(expr, ast.Number):
            return self._compile_number(expr)
        if isinstance(expr, ast.Identifier):
            return self._compile_identifier(expr)
        if isinstance(expr, ast.Unary):
            return self._compile_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._compile_binary(expr)
        if isinstance(expr, ast.Ternary):
            return self._compile_ternary(expr)
        if isinstance(expr, ast.BitSelect):
            return self._compile_bit_select(expr)
        if isinstance(expr, ast.PartSelect):
            return self._compile_part_select(expr)
        if isinstance(expr, ast.Concat):
            return self._compile_concat(expr)
        if isinstance(expr, ast.Replicate):
            return self._compile_replicate(expr)
        if isinstance(expr, ast.SystemCall):
            return self._compile_system_call(expr)
        raise VectorError(f"cannot vectorise expression of type {type(expr).__name__}")

    def _checked_width(self, width: int) -> int:
        if width > INT64_COLUMN_MAX_WIDTH:
            raise VectorError(f"width {width} exceeds the int64 column limit")
        return width

    def _constant(self, expr: ast.Expression) -> Optional[int]:
        """Elaboration-time constant value of ``expr``, or None."""
        try:
            value = Evaluator({}, self._parameters).evaluate(expr)
        except EvalError:
            return None
        return None if value.has_unknown else value.to_int()

    # ------------------------------------------------------------------ #
    # leaves
    # ------------------------------------------------------------------ #

    def _compile_number(self, expr: ast.Number) -> tuple[VecFn, int]:
        w = self._checked_width(expr.width if expr.width is not None else 32)
        m = (1 << w) - 1
        x = expr.xz_mask & m
        v = expr.value & m & ~x
        return (lambda cv, cx, shape: (v, x)), w

    def _compile_identifier(self, expr: ast.Identifier) -> tuple[VecFn, int]:
        slot = self._slots.get(expr.name)
        if slot is not None:
            w = self._checked_width(self._design.signals[expr.name].width)
            return (lambda cv, cx, shape, i=slot: (cv[i], cx[i])), w
        if expr.name in self._parameters:
            v = self._parameters[expr.name] & 0xFFFFFFFF
            return (lambda cv, cx, shape: (v, 0)), 32
        raise VectorError(f"unknown signal '{expr.name}'")

    # ------------------------------------------------------------------ #
    # operators
    # ------------------------------------------------------------------ #

    def _compile_unary(self, expr: ast.Unary) -> tuple[VecFn, int]:
        fn, w = self.compile(expr.operand)
        op = expr.op
        m = (1 << w) - 1
        if op == "+":
            return fn, w
        if op in ("-", "~"):
            # Scalar: unknown operand -> full-width x; else (-v | ~v) & m.
            def arith_unary(cv, cx, shape, op=op):
                v, x = fn(cv, cx, shape)
                unknown = np.asarray(x) != 0
                computed = ((-np.asarray(v)) if op == "-" else ~np.asarray(v)) & m
                return np.where(unknown, 0, computed), np.where(unknown, m, 0)

            return arith_unary, w
        if op == "!":
            # Scalar: truthy -> 0; unknown zero -> x; known zero -> 1.
            def logic_not(cv, cx, shape):
                v, x = fn(cv, cx, shape)
                v = np.asarray(v)
                x = np.asarray(x)
                return (
                    ((v == 0) & (x == 0)).astype(_I64),
                    ((v == 0) & (x != 0)).astype(_I64),
                )

            return logic_not, 1
        if op in ("&", "|", "^"):
            # Scalar reductions: any x bit -> unknown; else reduce the word.
            def reduction(cv, cx, shape, op=op):
                v, x = fn(cv, cx, shape)
                v = np.asarray(v)
                unknown = np.asarray(x) != 0
                if op == "&":
                    reduced = (v == m).astype(_I64)
                elif op == "|":
                    reduced = (v != 0).astype(_I64)
                else:
                    reduced = _popcount(v) & 1
                return np.where(unknown, 0, reduced), unknown.astype(_I64)

            return reduction, 1
        raise VectorError(f"unsupported unary operator '{op}'")

    def _compile_binary(self, expr: ast.Binary) -> tuple[VecFn, int]:
        lf, w1 = self.compile(expr.left)
        rf, w2 = self.compile(expr.right)
        op = expr.op
        if op == "&&":

            def logic_and(cv, cx, shape):
                v1, x1 = lf(cv, cx, shape)
                v2, x2 = rf(cv, cx, shape)
                v1, x1, v2, x2 = map(np.asarray, (v1, x1, v2, x2))
                known_false = ((v1 == 0) & (x1 == 0)) | ((v2 == 0) & (x2 == 0))
                unknown = ~known_false & (
                    ((v1 == 0) & (x1 != 0)) | ((v2 == 0) & (x2 != 0))
                )
                return (
                    np.where(known_false | unknown, 0, 1),
                    unknown.astype(_I64),
                )

            return logic_and, 1
        if op == "||":

            def logic_or(cv, cx, shape):
                v1, x1 = lf(cv, cx, shape)
                v2, x2 = rf(cv, cx, shape)
                v1, x1, v2, x2 = map(np.asarray, (v1, x1, v2, x2))
                known_true = (v1 != 0) | (v2 != 0)
                unknown = ~known_true & ((x1 != 0) | (x2 != 0))
                return known_true.astype(_I64), unknown.astype(_I64)

            return logic_or, 1
        if op in ("==", "!=", "<", ">", "<=", ">="):
            # Scalar: any x on either side -> unknown; else compare (values
            # are masked non-negative, so int64 comparison == unsigned).
            def compare(cv, cx, shape, op=op):
                v1, x1 = lf(cv, cx, shape)
                v2, x2 = rf(cv, cx, shape)
                v1, v2 = np.asarray(v1), np.asarray(v2)
                unknown = (np.asarray(x1) != 0) | (np.asarray(x2) != 0)
                if op == "==":
                    result = v1 == v2
                elif op == "!=":
                    result = v1 != v2
                elif op == "<":
                    result = v1 < v2
                elif op == ">":
                    result = v1 > v2
                elif op == "<=":
                    result = v1 <= v2
                else:
                    result = v1 >= v2
                return np.where(unknown, 0, result.astype(_I64)), unknown.astype(_I64)

            return compare, 1
        if op in ("===", "!=="):
            want = op == "==="

            def case_equal(cv, cx, shape):
                v1, x1 = lf(cv, cx, shape)
                v2, x2 = rf(cv, cx, shape)
                same = (np.asarray(v1) == np.asarray(v2)) & (
                    np.asarray(x1) == np.asarray(x2)
                )
                return (same == want).astype(_I64), np.zeros_like(same, dtype=_I64)

            return case_equal, 1
        if op in ("<<", "<<<", ">>", ">>>"):
            m1 = (1 << w1) - 1

            def shift(cv, cx, shape, left=op in ("<<", "<<<")):
                v1, x1 = lf(cv, cx, shape)
                v2, x2 = rf(cv, cx, shape)
                unknown = (np.asarray(x1) != 0) | (np.asarray(x2) != 0)
                shifted = _shift_left(v1, v2, m1) if left else _shift_right(v1, v2)
                return np.where(unknown, 0, shifted), np.where(unknown, m1, 0)

            return shift, w1
        arith = self._ARITH.get(op)
        if arith is None:
            raise VectorError(f"unsupported binary operator '{op}'")
        w = w1 if w1 >= w2 else w2
        m = (1 << w) - 1
        divides = op in ("/", "%")

        def binop(cv, cx, shape):
            v1, x1 = lf(cv, cx, shape)
            v2, x2 = rf(cv, cx, shape)
            v1, v2 = np.asarray(v1), np.asarray(v2)
            unknown = (np.asarray(x1) != 0) | (np.asarray(x2) != 0)
            if divides:
                # Scalar: division/modulo by zero -> full-width x.
                unknown = unknown | (v2 == 0)
                v2 = np.where(v2 == 0, 1, v2)
            result = arith(v1, v2) & m
            return np.where(unknown, 0, result), np.where(unknown, m, 0)

        return binop, w

    # int64 lanes may wrap mod 2**64; the post-op mask (width <= 63 divides
    # 2**64) restores exact Python-int semantics.
    _ARITH = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a // b,
        "%": lambda a, b: a % b,
        "**": lambda a, b: np.power(a, np.minimum(b, 64)),
        "&": lambda a, b: a & b,
        "|": lambda a, b: a | b,
        "^": lambda a, b: a ^ b,
        "~^": lambda a, b: ~(a ^ b),
        "^~": lambda a, b: ~(a ^ b),
    }

    def _compile_ternary(self, expr: ast.Ternary) -> tuple[VecFn, int]:
        cf, _cw = self.compile(expr.condition)
        tf, tw = self.compile(expr.if_true)
        ff, fw = self.compile(expr.if_false)
        if tw != fw:
            # The closure path returns the *taken* branch's width per cycle;
            # a static lowering cannot reproduce that.
            raise VectorError("ternary branches have different widths")
        m = (1 << tw) - 1

        def ternary(cv, cx, shape):
            c_v, c_x = cf(cv, cx, shape)
            t_v, t_x = tf(cv, cx, shape)
            f_v, f_x = ff(cv, cx, shape)
            c_v, c_x = np.asarray(c_v), np.asarray(c_x)
            t_v, t_x = np.asarray(t_v), np.asarray(t_x)
            f_v, f_x = np.asarray(f_v), np.asarray(f_x)
            # Scalar: truthy cond -> then; known-false -> else; unknown cond
            # merges: both branches known and equal -> that value, else x.
            agree = (t_x == 0) & (f_x == 0) & (t_v == f_v)
            value = np.where(
                c_v != 0, t_v, np.where(c_x == 0, f_v, np.where(agree, t_v, 0))
            )
            xmask = np.where(
                c_v != 0, t_x, np.where(c_x == 0, f_x, np.where(agree, 0, m))
            )
            return value, xmask

        return ternary, tw

    def _compile_bit_select(self, expr: ast.BitSelect) -> tuple[VecFn, int]:
        bf, bw = self.compile(expr.base)
        idf, _iw = self.compile(expr.index)

        def bit_select(cv, cx, shape):
            b_v, b_x = bf(cv, cx, shape)
            i_v, i_x = idf(cv, cx, shape)
            i_v = np.asarray(i_v)
            # Scalar: unknown or out-of-range index -> 1-bit x.
            oob = (np.asarray(i_x) != 0) | (i_v >= bw)
            sh = np.minimum(i_v, bw - 1)
            return (
                np.where(oob, 0, (np.asarray(b_v) >> sh) & 1),
                np.where(oob, 1, (np.asarray(b_x) >> sh) & 1),
            )

        return bit_select, 1

    def _compile_part_select(self, expr: ast.PartSelect) -> tuple[VecFn, int]:
        bf, bw = self.compile(expr.base)
        msb = self._constant(expr.msb)
        lsb = self._constant(expr.lsb)
        if msb is None or lsb is None:
            raise VectorError("part select bounds are not elaboration-time constants")
        if msb < lsb:
            # The closure path raises SimulationError per evaluation (and only
            # when actually reached); a static lowering cannot reproduce that.
            raise VectorError(f"invalid slice [{msb}:{lsb}]")
        w = self._checked_width(msb - lsb + 1)
        m = (1 << w) - 1
        if lsb >= bw:
            return (lambda cv, cx, shape: (0, m)), w
        extra_x = 0
        if msb >= bw:
            extra_x = ((1 << (msb - bw + 1)) - 1) << (bw - lsb)

        def part_select(cv, cx, shape):
            b_v, b_x = bf(cv, cx, shape)
            x = ((np.asarray(b_x) >> lsb) | extra_x) & m
            v = (np.asarray(b_v) >> lsb) & m & ~x
            return v, x

        return part_select, w

    def _compile_concat(self, expr: ast.Concat) -> tuple[VecFn, int]:
        parts = [self.compile(part) for part in expr.parts]
        total = self._checked_width(max(sum(w for _, w in parts), 1))

        def concat(cv, cx, shape):
            v = 0
            x = 0
            for fn, pw in parts:
                p_v, p_x = fn(cv, cx, shape)
                v = (np.asarray(v) << pw) | p_v
                x = (np.asarray(x) << pw) | p_x
            return v, x

        return concat, total

    def _compile_replicate(self, expr: ast.Replicate) -> tuple[VecFn, int]:
        count = self._constant(expr.count)
        if count is None or count < 1:
            # Non-constant/invalid counts raise per cycle on the closure path.
            raise VectorError("replication count is not a positive constant")
        fn, pw = self.compile(expr.value)
        total = self._checked_width(max(pw * count, 1))

        def replicate(cv, cx, shape):
            p_v, p_x = fn(cv, cx, shape)
            v = 0
            x = 0
            for _ in range(count):
                v = (np.asarray(v) << pw) | p_v
                x = (np.asarray(x) << pw) | p_x
            return v, x

        return replicate, total

    # ------------------------------------------------------------------ #
    # system calls (including the sampled-value layer)
    # ------------------------------------------------------------------ #

    def _compile_system_call(self, expr: ast.SystemCall) -> tuple[VecFn, int]:
        name = expr.name
        if name in SAMPLED_VALUE_FUNCTIONS:
            return self._compile_sampled(expr)
        if not expr.args:
            raise VectorError(f"system function '{name}' without arguments")
        if name in ("$signed", "$unsigned"):
            return self.compile(expr.args[0])
        fn, _w = self.compile(expr.args[0])
        if name == "$countones":

            def countones(cv, cx, shape):
                v, x = fn(cv, cx, shape)
                unknown = np.asarray(x) != 0
                return (
                    np.where(unknown, 0, _popcount(v)),
                    np.where(unknown, 0xFFFFFFFF, 0),
                )

            return countones, 32
        if name in ("$onehot", "$onehot0"):
            exact = name == "$onehot"

            def onehot(cv, cx, shape):
                v, x = fn(cv, cx, shape)
                unknown = np.asarray(x) != 0
                ones = _popcount(v)
                hot = (ones == 1) if exact else (ones <= 1)
                return np.where(unknown, 0, hot.astype(_I64)), unknown.astype(_I64)

            return onehot, 1
        if name == "$clog2":

            def clog2(cv, cx, shape):
                v, x = fn(cv, cx, shape)
                v = np.asarray(v)
                unknown = np.asarray(x) != 0
                # ceil(log2(v)) == bit_length(v - 1); branch-free bit_length
                # by successive halving (values fit 63 bits).
                u = np.where(v > 0, v - 1, 0)
                length = np.zeros_like(u)
                for step in (32, 16, 8, 4, 2, 1):
                    high = u >> step
                    has_high = high != 0
                    length = length + np.where(has_high, step, 0)
                    u = np.where(has_high, high, u)
                length = length + (u != 0)
                return np.where(unknown, 0, length), np.where(unknown, 0xFFFFFFFF, 0)

            return clog2, 32
        raise VectorError(f"unsupported system function '{name}'")

    def _compile_sampled(self, call: ast.SystemCall) -> tuple[VecFn, int]:
        if not call.args:
            # Mirrors the closure path's missing-argument guard: unknown(1).
            return (lambda cv, cx, shape: (0, 1)), 1
        argument = call.args[0]
        arg_fn, arg_width = self.compile(argument)
        inferred = infer_expression_width(argument, self._design)
        if inferred != arg_width:
            # The closure path's pre-trace unknown uses the inferred width
            # while in-trace samples use the evaluated width; keep the
            # static path out of any case where the two could disagree.
            raise VectorError("sampled argument width disagrees with inference")
        fill_xmask = (1 << arg_width) - 1
        if call.name == "$past":
            depth = sampled_past_depth(call, self._parameters)

            def past(cv, cx, shape):
                a_v, a_x = arg_fn(cv, cx, shape)
                return _shift_series(
                    as_column(a_v, shape), as_column(a_x, shape), shape, depth, fill_xmask
                )

            return past, arg_width

        def edge_or_stability(cv, cx, shape, name=call.name):
            raw_v, raw_x = arg_fn(cv, cx, shape)
            a_v = as_column(raw_v, shape)
            a_x = as_column(raw_x, shape)
            prev_v, prev_x = _shift_series(a_v, a_x, shape, 1, fill_xmask)
            # Scalar: any x in either sample -> unknown (cycle 0 is always
            # unknown -- the pre-trace "previous" is all-x).
            unknown = (a_x != 0) | (prev_x != 0)
            if name == "$rose":
                result = ((a_v & 1) == 1) & ((prev_v & 1) == 0)
            elif name == "$fell":
                result = ((a_v & 1) == 0) & ((prev_v & 1) == 1)
            elif name == "$stable":
                result = a_v == prev_v
            else:  # $changed
                result = a_v != prev_v
            return np.where(unknown, 0, result.astype(_I64)), unknown.astype(_I64)

        return edge_or_stability, 1


def lower_elements(
    design: ElaboratedDesign,
    slots: dict[str, int],
    expressions: list[ast.Expression],
) -> list[tuple[VecFn, int]]:
    """Vector-lower one assertion's element expressions.

    All-or-nothing per assertion: one unvectorisable element refuses the
    whole assertion by raising :class:`VectorError` (whose message names the
    construct that refused -- the caller records it as the demotion reason),
    keeping the fallback decision (and therefore the differential surface)
    per assertion, not per element.
    """
    compiler = VectorExprCompiler(design, slots)
    return [compiler.compile(expression) for expression in expressions]


# --------------------------------------------------------------------------- #
# attempt-tensor walk
# --------------------------------------------------------------------------- #


def _shift_lane(lane: np.ndarray, offset: int) -> np.ndarray:
    """``lane`` advanced by ``offset`` cycles along the cycle axis.

    ``out[..., start] == lane[..., start + offset]`` where in range, False
    beyond the array -- out-of-range reads are masked by the caller's
    per-row length check before they are ever consulted, so the False fill
    is never observable.
    """
    if offset == 0:
        return lane
    n = lane.shape[-1]
    out = np.zeros(lane.shape, dtype=bool)
    if offset < n:
        out[..., : n - offset] = lane[..., offset:]
    return out


def walk_attempts_tensor(
    name: str,
    message: str,
    antecedent: Optional[list[tuple[int, int]]],
    consequent: list[tuple[int, int]],
    overlapping: bool,
    disable_index: Optional[int],
    values: list[np.ndarray],
    xmasks: list[np.ndarray],
    lengths: np.ndarray,
) -> list[AssertionOutcome]:
    """Resolve every attempt of every row in whole-array numpy operations.

    The tensor twin of ``CompiledAssertionChecker._walk_attempts``: where
    the walk loops over start cycles in Python, this computes one boolean
    (row x start-cycle) mask per outcome bucket, with antecedent/consequent
    delays as shifted views, ``disable iff`` as a per-row prefix-count
    lookup, and pass/fail/vacuous resolution for all attempt starts of all
    rows in one expression.  Rows are independent traces (one per
    verification seed); a single trace is the degenerate ``(1, cycles)``
    case.

    ``values[i]`` / ``xmasks[i]`` are element ``i``'s lanes over a common
    padded ``(rows, max_cycles)`` grid; ``lengths[r]`` is row ``r``'s true
    cycle count.  Padded cells carry ``(0, 0)`` and are provably never
    consulted: every truth test is preceded by an in-range mask on the
    *shifted* cycle, and the disable prefix is clipped to real cells before
    accumulation.

    Bucket semantics replicate the walk exactly, in its order: disabled at
    the start cycle first; antecedent elements left to right (out of range
    -> pending, non-True -> vacuous); ``disable iff`` anywhere in
    ``[start, consequent start]``; consequent elements left to right (out
    of range -> pending, known-False -> fail at the first such element);
    a fail whose ``[start, fail cycle]`` span saw the disable counts as
    disabled instead.  Each start lands in exactly one bucket because every
    test removes its matches from the live mask.  Failures are emitted in
    ascending start order, matching the walk's iteration.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    rows = lengths.shape[0]
    n = int(lengths.max()) if rows else 0
    starts = np.arange(n, dtype=np.int64)[None, :]
    len_col = lengths[:, None]
    in_trace = starts < len_col

    def true_lane(index: int) -> np.ndarray:
        return np.asarray(values[index]) != 0

    def false_lane(index: int) -> np.ndarray:
        return (np.asarray(values[index]) == 0) & (np.asarray(xmasks[index]) == 0)

    active = in_trace.copy()
    disabled = np.zeros_like(in_trace)
    pending = np.zeros_like(in_trace)
    vacuous = np.zeros_like(in_trace)
    prefix = None
    if disable_index is not None:
        dis = true_lane(disable_index) & in_trace
        prefix = np.zeros((rows, n + 1), dtype=np.int64)
        prefix[:, 1:] = np.cumsum(dis, axis=1)
        disabled = active & dis
        active = active & ~dis

    if antecedent:
        for offset, index in antecedent:
            in_range = (starts + offset) < len_col
            pending = pending | (active & ~in_range)
            active = active & in_range
            t = _shift_lane(true_lane(index), offset)
            vacuous = vacuous | (active & ~t)
            active = active & t
    matched = active
    if antecedent is None:
        consequent_base = 0
    else:
        last_offset = antecedent[-1][0] if antecedent else 0
        consequent_base = last_offset + (0 if overlapping else 1)

    def disable_span(end: np.ndarray) -> np.ndarray:
        """``prefix[end + 1] - prefix[start]`` per (row, start), end clamped."""
        clamped = np.clip(end, -1, len_col - 1)
        gathered = np.take_along_axis(prefix, np.maximum(clamped + 1, 0), axis=1)
        return gathered - prefix[:, :n]

    if prefix is not None:
        mid = active & (disable_span(starts + consequent_base) > 0)
        disabled = disabled | mid
        active = active & ~mid

    failed = np.zeros_like(in_trace)
    fail_cycle = np.full((rows, n), -1, dtype=np.int64)
    for offset, index in consequent:
        total = consequent_base + offset
        in_range = (starts + total) < len_col
        pending = pending | (active & ~in_range)
        active = active & in_range
        f = _shift_lane(false_lane(index), total)
        newly = active & f
        fail_cycle = np.where(newly, starts + total, fail_cycle)
        failed = failed | newly
        active = active & ~f
    passes = active
    if prefix is not None:
        late = failed & (disable_span(fail_cycle) > 0)
        disabled = disabled | late
        failed = failed & ~late

    outcomes: list[AssertionOutcome] = []
    for row in range(rows):
        outcome = AssertionOutcome(name=name)
        outcome.attempts = int(lengths[row])
        outcome.antecedent_matches = int(matched[row].sum())
        outcome.passes = int(passes[row].sum())
        outcome.vacuous = int(vacuous[row].sum())
        outcome.pending = int(pending[row].sum())
        outcome.disabled = int(disabled[row].sum())
        for start in np.nonzero(failed[row])[0].tolist():
            outcome.failures.append(
                AssertionFailure(
                    assertion=name,
                    start_cycle=start,
                    fail_cycle=int(fail_cycle[row, start]),
                    message=message,
                )
            )
        outcomes.append(outcome)
    return outcomes
