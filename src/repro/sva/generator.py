"""Assertion mining: generate candidate SVAs for a design.

In the paper, Claude-3.5 generates SVAs for each compiled Verilog sample and
SymbiYosys validates them.  This module is the reproduction's generator half:
it mines candidate properties from the golden design's structure (register
transfer behaviour, reset values) and from simulation traces (one-hot state,
signal implications, equalities).  Mined candidates are *not* trusted -- the
data-augmentation pipeline inserts them into the source and validates them
with simulation and bounded model checking exactly as the paper does, and
invalid candidates are discarded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.hdl import ast
from repro.hdl.elaborate import ElaboratedDesign
from repro.sim.stimulus import is_active_low_reset, reset_signal_of
from repro.sim.trace import Trace


@dataclass(frozen=True)
class MinedAssertion:
    """One candidate assertion, carried around as source text."""

    name: str
    property_text: str
    assert_text: str
    description: str
    kind: str  # "transfer" | "reset" | "onehot" | "implication" | "equality"

    def render(self, indent: str = "    ") -> str:
        """Render the property + assertion block ready for insertion."""
        lines = [indent + line for line in self.property_text.splitlines()]
        lines.append(indent + self.assert_text)
        return "\n".join(lines)


def template_assertion_blocks(blocks: list[str], family: str = "") -> list[MinedAssertion]:
    """Wrap hand-written template SVA blocks in :class:`MinedAssertion` records.

    The last line of a multi-line block is its ``assert`` statement; a
    single-line block is a self-contained property.  Shared by Stage 2, the
    SVA benchmark and the checker differential tests so the wrapping recipe
    exists exactly once.
    """
    wrapped: list[MinedAssertion] = []
    for index, block in enumerate(blocks):
        lines = block.splitlines()
        property_text = "\n".join(lines[:-1]) if len(lines) > 1 else block
        assert_text = lines[-1] if len(lines) > 1 else ""
        description = f"template assertion {index}"
        if family:
            description += f" of family {family}"
        wrapped.append(
            MinedAssertion(
                name=f"template_{index}",
                property_text=property_text,
                assert_text=assert_text,
                description=description,
                kind="template",
            )
        )
    return wrapped


def insert_assertions(source: str, assertions: list[MinedAssertion]) -> str:
    """Insert mined assertions into ``source`` just before ``endmodule``."""
    if not assertions:
        return source
    lines = source.split("\n")
    insert_at = None
    for index in range(len(lines) - 1, -1, -1):
        if lines[index].strip().startswith("endmodule"):
            insert_at = index
            break
    if insert_at is None:
        raise ValueError("source has no 'endmodule' to insert assertions before")
    rendered = [assertion.render() for assertion in assertions]
    new_lines = lines[:insert_at] + rendered + lines[insert_at:]
    return "\n".join(new_lines)


class AssertionMiner:
    """Mines candidate SVAs from a golden design and an optional trace."""

    def __init__(self, design: ElaboratedDesign, trace: Optional[Trace] = None):
        self._design = design
        self._trace = trace
        self._reset = reset_signal_of(design)
        self._counter = itertools.count()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def mine(self, max_assertions: int = 6) -> list[MinedAssertion]:
        """Produce up to ``max_assertions`` candidate assertions."""
        candidates: list[MinedAssertion] = []
        candidates.extend(self._mine_transfer_properties())
        candidates.extend(self._mine_reset_properties())
        if self._trace is not None and len(self._trace) >= 8:
            candidates.extend(self._mine_onehot_properties())
            candidates.extend(self._mine_implication_properties())
        unique: dict[str, MinedAssertion] = {}
        for candidate in candidates:
            unique.setdefault(candidate.property_text, candidate)
        return list(unique.values())[:max_assertions]

    # ------------------------------------------------------------------ #
    # helpers shared by all miners
    # ------------------------------------------------------------------ #

    def _next_name(self, stem: str) -> str:
        return f"p_{stem}_{next(self._counter)}"

    def _disable_clause(self) -> str:
        if self._reset is None:
            return ""
        if is_active_low_reset(self._reset.name):
            return f"disable iff (!{self._reset.name}) "
        return f"disable iff ({self._reset.name}) "

    def _reset_condition(self) -> Optional[str]:
        if self._reset is None:
            return None
        if is_active_low_reset(self._reset.name):
            return f"!{self._reset.name}"
        return self._reset.name

    def _make(
        self, stem: str, clock: str, body: str, description: str, kind: str, disable: bool = True
    ) -> MinedAssertion:
        name = self._next_name(stem)
        disable_clause = self._disable_clause() if disable else ""
        property_text = (
            f"property {name};\n"
            f"    @(posedge {clock}) {disable_clause}{body};\n"
            f"endproperty"
        )
        assert_text = (
            f"a_{name}: assert property ({name}) else $error(\"{description}\");"
        )
        return MinedAssertion(
            name=name,
            property_text=property_text,
            assert_text=assert_text,
            description=description,
            kind=kind,
        )

    def _block_clock(self, block) -> Optional[str]:
        for item in block.clock_edges():
            if self._reset is None or item.signal != self._reset.name:
                return item.signal
        return None

    # ------------------------------------------------------------------ #
    # structural miners
    # ------------------------------------------------------------------ #

    def _mine_transfer_properties(self) -> list[MinedAssertion]:
        """``cond |=> reg == $past(rhs)`` for conditionally loaded registers."""
        mined: list[MinedAssertion] = []
        for block in self._design.seq_blocks:
            clock = self._block_clock(block)
            if clock is None:
                continue
            for path_condition, assign in self._conditional_assignments(block.body):
                # Drop the reset guard (`!(!rst_n)` style terms) from the path;
                # the property's `disable iff` clause covers reset behaviour.
                meaningful = [c for c in path_condition if not self._mentions_reset(c)]
                if not meaningful:
                    continue
                if not isinstance(assign.target, ast.Identifier):
                    continue
                target = assign.target.name
                rhs = assign.value
                condition_text = " && ".join(f"({c})" for c in meaningful)
                rhs_text = str(rhs)
                if target in rhs.identifiers():
                    body = f"({condition_text}) |=> ({target} == ($past({rhs_text})))"
                else:
                    body = f"({condition_text}) |=> ({target} == $past({rhs_text}))"
                description = f"{target} must follow its specified update when {condition_text}"
                mined.append(self._make(f"{target}_update", clock, body, description, "transfer"))
        return mined

    def _mine_reset_properties(self) -> list[MinedAssertion]:
        """``reset_active |=> reg == reset_value`` for registers reset to constants."""
        mined: list[MinedAssertion] = []
        reset_condition = self._reset_condition()
        if reset_condition is None:
            return mined
        for block in self._design.seq_blocks:
            clock = self._block_clock(block)
            if clock is None:
                continue
            for assign in self._reset_branch_assignments(block.body):
                if not isinstance(assign.target, ast.Identifier):
                    continue
                if not isinstance(assign.value, ast.Number):
                    continue
                target = assign.target.name
                value_text = str(assign.value)
                body = f"({reset_condition}) |=> ({target} == {value_text})"
                description = f"{target} must reset to {value_text}"
                mined.append(
                    self._make(f"{target}_reset", clock, body, description, "reset", disable=False)
                )
        return mined

    def _conditional_assignments(
        self, statement: ast.Statement
    ) -> list[tuple[list[str], ast.Assign]]:
        """Collect (path condition texts, assignment) pairs from an always body."""
        collected: list[tuple[list[str], ast.Assign]] = []

        def visit(node: ast.Statement, path: list[str]) -> None:
            if isinstance(node, ast.Block):
                for sub in node.statements:
                    visit(sub, path)
            elif isinstance(node, ast.If):
                condition_text = str(node.condition)
                visit(node.then_branch, path + [condition_text])
                if node.else_branch is not None:
                    visit(node.else_branch, path + [f"!({condition_text})"])
            elif isinstance(node, ast.Case):
                subject = str(node.subject)
                for item in node.items:
                    if not item.labels:
                        continue
                    label_text = " || ".join(
                        f"({subject} == {label})" for label in item.labels
                    )
                    visit(item.body, path + [label_text])
            elif isinstance(node, ast.Assign) and not node.blocking:
                collected.append((list(path), node))

        visit(statement, [])
        return collected

    def _reset_branch_assignments(self, statement: ast.Statement) -> list[ast.Assign]:
        """Assignments inside the reset branch of the outermost if."""
        reset_condition = self._reset_condition()
        if reset_condition is None:
            return []
        assignments: list[ast.Assign] = []
        for path, assign in self._conditional_assignments(statement):
            if path and self._mentions_reset(path[0]) and len(path) == 1:
                assignments.append(assign)
        return assignments

    def _mentions_reset(self, text: str) -> bool:
        return self._reset is not None and self._reset.name in text

    # ------------------------------------------------------------------ #
    # trace-based miners
    # ------------------------------------------------------------------ #

    def _stable_cycles(self) -> range:
        """Cycles after reset settles (skip the first few)."""
        return range(min(4, len(self._trace) - 1), len(self._trace))

    def _mine_onehot_properties(self) -> list[MinedAssertion]:
        mined: list[MinedAssertion] = []
        clock_candidates = self._design.clock_candidates()
        clock = clock_candidates[0] if clock_candidates else "clk"
        for signal in self._design.state_signals:
            if signal.width < 2 or signal.width > 16:
                continue
            values = self._trace.sampled_ints(signal.name)
            window = [values[i] for i in self._stable_cycles() if values[i] is not None]
            if len(window) < 4:
                continue
            if all(v and bin(v).count("1") == 1 for v in window):
                body = f"$onehot({signal.name})"
                description = f"{signal.name} must stay one-hot"
                mined.append(self._make(f"{signal.name}_onehot", clock, body, description, "onehot"))
        return mined

    def _mine_implication_properties(self) -> list[MinedAssertion]:
        mined: list[MinedAssertion] = []
        clock_candidates = self._design.clock_candidates()
        clock = clock_candidates[0] if clock_candidates else "clk"
        single_bit = [
            s
            for s in self._design.signals.values()
            if s.width == 1 and not s.is_input and s.name != clock
        ]
        reset_name = self._reset.name if self._reset is not None else None
        cycles = list(self._stable_cycles())
        for left, right in itertools.permutations(single_bit, 2):
            if reset_name in (left.name, right.name):
                continue
            left_values = self._trace.sampled_ints(left.name)
            right_values = self._trace.sampled_ints(right.name)
            antecedent_seen = 0
            implication_holds = True
            equal_everywhere = True
            for cycle in cycles:
                lv, rv = left_values[cycle], right_values[cycle]
                if lv is None or rv is None:
                    continue
                if lv != rv:
                    equal_everywhere = False
                if lv:
                    antecedent_seen += 1
                    if not rv:
                        implication_holds = False
            if equal_everywhere and antecedent_seen >= 2:
                body = f"{left.name} == {right.name}"
                description = f"{left.name} must equal {right.name}"
                mined.append(
                    self._make(f"{left.name}_eq_{right.name}", clock, body, description, "equality")
                )
            elif implication_holds and antecedent_seen >= 3:
                body = f"{left.name} |-> {right.name}"
                description = f"{right.name} must be high whenever {left.name} is high"
                mined.append(
                    self._make(f"{left.name}_implies_{right.name}", clock, body, description, "implication")
                )
            if len(mined) >= 4:
                break
        return mined


def mine_assertions(
    design: ElaboratedDesign, trace: Optional[Trace] = None, max_assertions: int = 6
) -> list[MinedAssertion]:
    """Convenience wrapper around :class:`AssertionMiner`."""
    return AssertionMiner(design, trace).mine(max_assertions=max_assertions)
