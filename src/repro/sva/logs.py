"""Assertion-failure log formatting and parsing.

The paper's SVA-Bug / SVA-Eval entries carry the simulator/verifier log that
reports which assertion failed (Fig. 1: ``failed assertion accu.valid_out_check``).
This module renders :class:`~repro.sva.checker.CheckReport` objects into that
log format and parses such logs back into structured form (the repair model
and the baselines extract the failing assertion names from the log text).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.sva.checker import CheckReport


@dataclass
class FailureLog:
    """Structured view of an assertion-failure log."""

    module: str
    failed_assertions: list[str] = field(default_factory=list)
    messages: dict[str, str] = field(default_factory=dict)
    fail_cycles: dict[str, int] = field(default_factory=dict)

    @property
    def has_failures(self) -> bool:
        return bool(self.failed_assertions)


def format_failure_log(module_name: str, report: CheckReport) -> str:
    """Render a check report the way the training/evaluation data expects.

    The format intentionally mirrors what a verification engineer would see:
    one line per failed assertion with the failing cycle and the assertion's
    error message, preceded by a summary line.
    """
    failures = report.failures
    if not failures:
        return f"simulation of {module_name}: all assertions passed"
    lines = [f"simulation of {module_name}: {len(report.failed_assertions)} assertion(s) failed"]
    seen: set[str] = set()
    for failure in failures:
        if failure.assertion in seen:
            continue
        seen.add(failure.assertion)
        line = f"failed assertion {module_name}.{failure.assertion} at cycle {failure.fail_cycle}"
        if failure.message:
            line += f': "{failure.message}"'
        lines.append(line)
    return "\n".join(lines)


_FAILED_LINE = re.compile(
    r"failed assertion (?P<module>[A-Za-z_][\w$]*)\.(?P<assertion>[A-Za-z_][\w$]*)"
    r"(?: at cycle (?P<cycle>\d+))?"
    r'(?::\s*"(?P<message>[^"]*)")?'
)


def parse_failure_log(text: str) -> FailureLog:
    """Parse a failure log produced by :func:`format_failure_log`.

    Unknown or free-form lines are ignored, so the parser also tolerates logs
    written by hand for the RTLLM-style split.
    """
    module = ""
    failed: list[str] = []
    messages: dict[str, str] = {}
    cycles: dict[str, int] = {}
    for line in text.splitlines():
        match = _FAILED_LINE.search(line)
        if not match:
            continue
        module = module or match.group("module")
        name = match.group("assertion")
        if name not in failed:
            failed.append(name)
        if match.group("message"):
            messages[name] = match.group("message")
        if match.group("cycle"):
            cycles[name] = int(match.group("cycle"))
    return FailureLog(module=module, failed_assertions=failed, messages=messages, fail_cycles=cycles)
