"""SystemVerilog Assertion (SVA) support.

Property/sequence syntax is parsed by :mod:`repro.hdl`; this package provides
everything that happens *after* parsing:

* :mod:`repro.sva.checker` -- evaluate concurrent assertions over simulation
  traces (preponed sampling, ``disable iff``, ``##N`` delays, ``|->``/``|=>``,
  sampled-value functions).  The tree-walking :class:`AssertionChecker` is
  the reference backend / differential oracle; the :func:`CheckerBackend`
  factory dispatches to the compiled backend by default.
* :mod:`repro.sva.compile` -- the compiled checking backend: assertions
  lowered once per design into closures over flat per-cycle arrays, with
  precomputed sampled-value series and a disable-iff prefix mask.
* :mod:`repro.sva.vector` -- the vectorised series engine the compiled
  backend uses by default: element booleans and sampled-value series as
  whole-trace numpy array expressions over the columnar trace view
  (``Trace.columns()``), with a per-assertion fallback to the closure
  path for constructs it refuses.
* :mod:`repro.sva.logs` -- format assertion-failure logs in the style the
  paper's dataset records ("failed assertion <module>.<name>").
* :mod:`repro.sva.generator` -- mine candidate assertions from a golden
  design (the reproduction's substitute for Claude-3.5's SVA generation);
  the mined assertions are validated by the pipeline exactly as in the paper.
"""

from repro.sva.checker import (
    AssertionChecker,
    AssertionFailure,
    AssertionOutcome,
    CheckerBackend,
    CheckReport,
    check_assertions,
    infer_expression_width,
    sampled_past_depth,
)
from repro.sva.logs import format_failure_log, parse_failure_log
from repro.sva.generator import AssertionMiner, MinedAssertion, mine_assertions

__all__ = [
    "AssertionChecker",
    "AssertionFailure",
    "AssertionOutcome",
    "CheckerBackend",
    "CheckReport",
    "check_assertions",
    "infer_expression_width",
    "sampled_past_depth",
    "format_failure_log",
    "parse_failure_log",
    "AssertionMiner",
    "MinedAssertion",
    "mine_assertions",
]
