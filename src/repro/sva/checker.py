"""Trace-based checking of concurrent SVA assertions.

The checker replays a simulation trace (preponed samples, one per clock
cycle) against every assertion of an elaborated design and reports, per
assertion, how many attempts were started, how many matched the antecedent,
and every failure with its start and failing cycle.

Semantics implemented (the subset the corpus and the RTLLM-style designs
use):

* ``@(posedge clk)`` clocking -- one evaluation attempt per trace sample;
* ``disable iff (expr)`` -- an attempt is discarded if the disable condition
  is true at any cycle the attempt spans (a practical approximation of the
  asynchronous abort semantics);
* sequences ``a ##1 b ##2 c`` with constant delays;
* overlapping ``|->`` and non-overlapping ``|=>`` implications;
* sampled-value functions ``$past`` (with optional depth), ``$rose``,
  ``$fell``, ``$stable``, ``$changed``;
* attempts that run past the end of the trace are *pending*, not failures.

Two checker backends implement these semantics:

* :class:`AssertionChecker` (this module) -- the tree-walking reference
  implementation, kept as the differential-testing oracle;
* :class:`repro.sva.compile.CompiledAssertionChecker` -- lowers every
  assertion once per design into closures over flat per-cycle arrays,
  the way :mod:`repro.sim.compile` lowers designs.

Use the :func:`CheckerBackend` factory (or :func:`check_assertions`, which
routes through the process-wide compiled-artifact cache) unless you need a
specific backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.hdl import ast
from repro.hdl.elaborate import AssertionSpec, ElaboratedDesign
from repro.sim.evaluator import EvalError, Evaluator
from repro.sim.trace import Trace
from repro.sim.values import LogicValue

#: The sampled-value system functions the boolean layer resolves over traces.
SAMPLED_VALUE_FUNCTIONS = ("$past", "$rose", "$fell", "$stable", "$changed")


def sampled_past_depth(call: ast.SystemCall, parameters: Mapping[str, int]) -> int:
    """The cycle depth of a ``$past`` call, constant-folded with parameters.

    ``$past(x, DEPTH)`` must honour elaboration-time constants such as
    parameters and constant arithmetic (``WIDTH - 1``), not only literal
    numbers.  Unevaluable or unknown depths fall back to the SVA default of 1.
    """
    if len(call.args) < 2:
        return 1
    try:
        value = Evaluator({}, parameters).evaluate(call.args[1])
    except EvalError:
        return 1
    if value.has_unknown:
        return 1
    return max(1, value.to_int())


def infer_expression_width(expr: ast.Expression, design: ElaboratedDesign) -> int:
    """The bit width ``expr`` would evaluate to (mirrors the evaluator).

    This drives the width of the pre-cycle-0 unknown that ``$past`` returns:
    ``$past(a + b)`` before the trace starts must be an all-x value of the
    *expression's* width, not a 1-bit x.  Both checker backends share this
    inference so they stay outcome-identical.
    """
    parameters = design.parameters

    def constant(e: ast.Expression) -> Optional[int]:
        try:
            value = Evaluator({}, parameters).evaluate(e)
        except EvalError:
            return None
        return None if value.has_unknown else value.to_int()

    def width(e: ast.Expression) -> int:
        if isinstance(e, ast.Number):
            return e.width if e.width is not None else 32
        if isinstance(e, ast.Identifier):
            signal = design.signals.get(e.name)
            if signal is not None:
                return signal.width
            return 32 if e.name in parameters else 1
        if isinstance(e, ast.Unary):
            return width(e.operand) if e.op in ("+", "-", "~") else 1
        if isinstance(e, ast.Binary):
            op = e.op
            if op in ("&&", "||", "==", "!=", "===", "!==", "<", ">", "<=", ">="):
                return 1
            if op in ("<<", ">>", "<<<", ">>>"):
                return width(e.left)
            return max(width(e.left), width(e.right))
        if isinstance(e, ast.Ternary):
            return max(width(e.if_true), width(e.if_false))
        if isinstance(e, ast.BitSelect):
            return 1
        if isinstance(e, ast.PartSelect):
            msb, lsb = constant(e.msb), constant(e.lsb)
            if msb is not None and lsb is not None and msb >= lsb:
                return msb - lsb + 1
            return max(width(e.base), 1)
        if isinstance(e, ast.Concat):
            return max(sum(width(part) for part in e.parts), 1)
        if isinstance(e, ast.Replicate):
            count = constant(e.count)
            return max((count if count and count > 0 else 1) * width(e.value), 1)
        if isinstance(e, ast.SystemCall):
            if e.name in ("$past", "$signed", "$unsigned"):
                return width(e.args[0]) if e.args else 1
            if e.name in ("$countones", "$clog2"):
                return 32
            return 1  # $rose/$fell/$stable/$changed/$onehot*/unknown
        return 1

    return width(expr)


@dataclass(frozen=True)
class AssertionFailure:
    """One failed evaluation attempt of one assertion."""

    assertion: str
    start_cycle: int
    fail_cycle: int
    message: str = ""

    def render(self) -> str:
        text = f"assertion '{self.assertion}' failed at cycle {self.fail_cycle}"
        if self.start_cycle != self.fail_cycle:
            text += f" (attempt started at cycle {self.start_cycle})"
        if self.message:
            text += f": {self.message}"
        return text


@dataclass
class AssertionOutcome:
    """Aggregated result of checking one assertion over a whole trace."""

    name: str
    attempts: int = 0
    antecedent_matches: int = 0
    passes: int = 0
    vacuous: int = 0
    pending: int = 0
    disabled: int = 0
    failures: list[AssertionFailure] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.failures)

    @property
    def proved_nontrivially(self) -> bool:
        """True when the assertion held and was exercised at least once."""
        return not self.failed and self.antecedent_matches > 0

    def comparison_key(self) -> tuple:
        """Every outcome field as one tuple, for backend-differential checks."""
        return (
            self.name,
            self.attempts,
            self.antecedent_matches,
            self.passes,
            self.vacuous,
            self.pending,
            self.disabled,
            tuple(
                (f.assertion, f.start_cycle, f.fail_cycle, f.message)
                for f in self.failures
            ),
        )


@dataclass
class CheckReport:
    """Results for every assertion of a design on one trace."""

    outcomes: dict[str, AssertionOutcome] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.failures

    @property
    def failures(self) -> list[AssertionFailure]:
        collected: list[AssertionFailure] = []
        for outcome in self.outcomes.values():
            collected.extend(outcome.failures)
        return sorted(collected, key=lambda f: (f.fail_cycle, f.assertion))

    @property
    def failed_assertions(self) -> list[str]:
        return sorted({f.assertion for f in self.failures})

    def outcome(self, name: str) -> AssertionOutcome:
        return self.outcomes[name]

    def first_failure(self) -> Optional[AssertionFailure]:
        failures = self.failures
        return failures[0] if failures else None


class AssertionChecker:
    """Checks the assertions of one design against simulation traces."""

    def __init__(self, design: ElaboratedDesign):
        self._design = design
        # $past depths are elaboration-time constants; memoised per call
        # node so the per-cycle sampled-value path does not rebuild an
        # Evaluator for the same depth expression.  The node itself is kept
        # in the value, so its id can never be recycled while memoised.
        self._past_depth_memo: dict[int, tuple[ast.SystemCall, int]] = {}

    def check(self, trace: Trace, assertions: Optional[list[AssertionSpec]] = None) -> CheckReport:
        """Check (a subset of) the design's assertions over ``trace``."""
        report = CheckReport()
        specs = assertions if assertions is not None else self._design.assertions
        for spec in specs:
            report.outcomes[spec.name] = self.check_assertion(spec, trace)
        return report

    def check_assertion(self, spec: AssertionSpec, trace: Trace) -> AssertionOutcome:
        """Check one assertion over ``trace``.

        The public single-assertion entry point: :meth:`check` is built on
        it, and the compiled backend's per-assertion fallback calls it for
        specs its lowering rejects (the spec need not belong to the checker's
        design -- only the signals it references must exist in the trace).
        """
        outcome = AssertionOutcome(name=spec.name)
        for start in range(len(trace)):
            outcome.attempts += 1
            self._evaluate_attempt(spec, trace, start, outcome)
        return outcome

    def check_batch(
        self, traces: list[Trace], assertions: Optional[list[AssertionSpec]] = None
    ) -> list[CheckReport]:
        """Check several traces (e.g. one per verification seed) in one call.

        The tree-walker has no per-trace state to amortise, so this is a
        plain loop; it exists so both backends expose the same batch API
        (the compiled backend shares its per-assertion dispatch across the
        batch).  Reports come back in trace order.
        """
        return [self.check(trace, assertions) for trace in traces]

    # ------------------------------------------------------------------ #
    # per-assertion evaluation
    # ------------------------------------------------------------------ #

    def _evaluate_attempt(
        self, spec: AssertionSpec, trace: Trace, start: int, outcome: AssertionOutcome
    ) -> None:
        body = spec.body
        if self._disabled_at(spec, trace, start):
            outcome.disabled += 1
            return

        if body.antecedent is not None:
            matched, antecedent_end = self._match_sequence(spec, body.antecedent, trace, start)
            if matched is None:
                outcome.pending += 1
                return
            if not matched:
                outcome.vacuous += 1
                return
            outcome.antecedent_matches += 1
            consequent_start = antecedent_end if body.overlapping else antecedent_end + 1
        else:
            outcome.antecedent_matches += 1
            consequent_start = start

        if self._disabled_between(spec, trace, start, consequent_start):
            outcome.disabled += 1
            return

        satisfied, fail_cycle = self._satisfy_sequence(spec, body.consequent, trace, consequent_start)
        if satisfied is None:
            outcome.pending += 1
        elif satisfied:
            outcome.passes += 1
        else:
            if self._disabled_between(spec, trace, start, fail_cycle):
                outcome.disabled += 1
                return
            outcome.failures.append(
                AssertionFailure(
                    assertion=spec.name,
                    start_cycle=start,
                    fail_cycle=fail_cycle,
                    message=spec.error_message,
                )
            )

    # ------------------------------------------------------------------ #
    # sequence evaluation
    # ------------------------------------------------------------------ #

    def _match_sequence(
        self, spec: AssertionSpec, sequence: ast.SvaSequence, trace: Trace, start: int
    ) -> tuple[Optional[bool], int]:
        """Evaluate an antecedent: (matched, end_cycle); matched None = pending."""
        cycle = start
        for element in sequence.elements:
            cycle += element.delay
            if cycle >= len(trace):
                return None, cycle
            value = self._evaluate_boolean(spec, element.expr, trace, cycle)
            if value is None or not value:
                return False, cycle
        return True, cycle

    def _satisfy_sequence(
        self, spec: AssertionSpec, sequence: ast.SvaSequence, trace: Trace, start: int
    ) -> tuple[Optional[bool], int]:
        """Evaluate a consequent: (satisfied, fail_cycle); satisfied None = pending."""
        cycle = start
        for element in sequence.elements:
            cycle += element.delay
            if cycle >= len(trace):
                return None, cycle
            value = self._evaluate_boolean(spec, element.expr, trace, cycle)
            if value is None:
                # Unknown values never count as hard failures: the golden
                # design validation would otherwise reject sound assertions.
                continue
            if not value:
                return False, cycle
        return True, cycle

    def _disabled_at(self, spec: AssertionSpec, trace: Trace, cycle: int) -> bool:
        if spec.disable_iff is None:
            return False
        value = self._evaluate_boolean(spec, spec.disable_iff, trace, cycle)
        return bool(value)

    def _disabled_between(self, spec: AssertionSpec, trace: Trace, start: int, end: int) -> bool:
        if spec.disable_iff is None:
            return False
        for cycle in range(start, min(end, len(trace) - 1) + 1):
            if self._disabled_at(spec, trace, cycle):
                return True
        return False

    # ------------------------------------------------------------------ #
    # boolean-layer evaluation with sampled-value functions
    # ------------------------------------------------------------------ #

    def _evaluate_boolean(
        self, spec: AssertionSpec, expr: ast.Expression, trace: Trace, cycle: int
    ) -> Optional[bool]:
        environment = trace[cycle].pre_edge

        def sampled_value_hook(call: ast.SystemCall) -> LogicValue:
            return self._sampled_value(call, trace, cycle)

        evaluator = Evaluator(
            environment, self._design.parameters, sampled_value_hook=sampled_value_hook
        )
        try:
            return evaluator.evaluate_bool(expr)
        except EvalError:
            return None

    def _sampled_value(self, call: ast.SystemCall, trace: Trace, cycle: int) -> LogicValue:
        name = call.name
        argument = call.args[0] if call.args else None
        if argument is None:
            return LogicValue.unknown(1)

        def value_at(target_cycle: int) -> LogicValue:
            if target_cycle < 0:
                width = infer_expression_width(argument, self._design)
                return LogicValue.unknown(width)
            environment = trace[target_cycle].pre_edge
            evaluator = Evaluator(
                environment,
                self._design.parameters,
                sampled_value_hook=lambda c: self._sampled_value(c, trace, target_cycle),
            )
            try:
                return evaluator.evaluate(argument)
            except EvalError:
                return LogicValue.unknown(1)

        if name == "$past":
            memoised = self._past_depth_memo.get(id(call))
            if memoised is None:
                memoised = (call, sampled_past_depth(call, self._design.parameters))
                self._past_depth_memo[id(call)] = memoised
            return value_at(cycle - memoised[1])
        current = value_at(cycle)
        previous = value_at(cycle - 1)
        if name == "$rose":
            if current.has_unknown or previous.has_unknown:
                return LogicValue.unknown(1)
            rose = (current.to_int() & 1) == 1 and (previous.to_int() & 1) == 0
            return LogicValue.from_int(int(rose), 1)
        if name == "$fell":
            if current.has_unknown or previous.has_unknown:
                return LogicValue.unknown(1)
            fell = (current.to_int() & 1) == 0 and (previous.to_int() & 1) == 1
            return LogicValue.from_int(int(fell), 1)
        if name == "$stable":
            if current.has_unknown or previous.has_unknown:
                return LogicValue.unknown(1)
            return LogicValue.from_int(int(current.to_int() == previous.to_int()), 1)
        if name == "$changed":
            if current.has_unknown or previous.has_unknown:
                return LogicValue.unknown(1)
            return LogicValue.from_int(int(current.to_int() != previous.to_int()), 1)
        return LogicValue.unknown(1)

def CheckerBackend(design: ElaboratedDesign, backend: str = "auto", base=None):
    """Build an assertion checker for ``design``, mirroring :func:`Simulator`.

    ``"auto"`` (the default) lowers every assertion with the compiled backend
    (:mod:`repro.sva.compile`); assertions using constructs the lowering does
    not support transparently fall back to the tree-walking evaluation, so
    the auto backend never fails to construct.  ``"compiled"`` additionally
    raises :class:`repro.sim.compile.CompileError` when any assertion could
    not be lowered; ``"interp"`` forces the tree-walking oracle.

    ``base`` is an optional previously built checker for a signal-compatible
    design (typically the unpatched base of a candidate repair): assertions
    whose content key is unchanged reuse its lowering verbatim.  It is
    ignored by the ``"interp"`` backend and by non-compiled base instances.

    Both backends expose the same ``check(trace, assertions=None)`` API and
    produce outcome-identical :class:`CheckReport` objects.
    """
    if backend not in ("auto", "compiled", "interp"):
        raise ValueError(
            f"unknown checker backend '{backend}' (expected 'auto', 'compiled' or 'interp')"
        )
    if backend == "interp":
        return AssertionChecker(design)
    # Imported lazily: repro.sva.compile imports from this module.
    from repro.sva.compile import CompiledAssertionChecker

    if not isinstance(base, CompiledAssertionChecker):
        base = None
    return CompiledAssertionChecker(design, strict=backend == "compiled", base=base)


def check_assertions(
    design: ElaboratedDesign, trace: Trace, backend: str = "auto"
) -> CheckReport:
    """Check all assertions of ``design`` over ``trace``.

    The lowered checker comes from the process-wide artifact cache
    (:func:`repro.artifacts.default_store`), keyed by the design's content
    fingerprint and the backend name: callers that check the same design --
    or *any* equal-fingerprint elaboration of it -- on several traces pay
    the one-off assertion lowering once, and the cache's LRU bound means
    lowered closures no longer live exactly as long as the design object
    that happened to first reach this helper.
    """
    from repro.artifacts import default_store

    return default_store().checker(design, backend=backend).check(trace)
