"""Trace-based checking of concurrent SVA assertions.

The checker replays a simulation trace (preponed samples, one per clock
cycle) against every assertion of an elaborated design and reports, per
assertion, how many attempts were started, how many matched the antecedent,
and every failure with its start and failing cycle.

Semantics implemented (the subset the corpus and the RTLLM-style designs
use):

* ``@(posedge clk)`` clocking -- one evaluation attempt per trace sample;
* ``disable iff (expr)`` -- an attempt is discarded if the disable condition
  is true at any cycle the attempt spans (a practical approximation of the
  asynchronous abort semantics);
* sequences ``a ##1 b ##2 c`` with constant delays;
* overlapping ``|->`` and non-overlapping ``|=>`` implications;
* sampled-value functions ``$past`` (with optional depth), ``$rose``,
  ``$fell``, ``$stable``, ``$changed``;
* attempts that run past the end of the trace are *pending*, not failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hdl import ast
from repro.hdl.elaborate import AssertionSpec, ElaboratedDesign
from repro.sim.evaluator import EvalError, Evaluator
from repro.sim.trace import Trace
from repro.sim.values import LogicValue


@dataclass(frozen=True)
class AssertionFailure:
    """One failed evaluation attempt of one assertion."""

    assertion: str
    start_cycle: int
    fail_cycle: int
    message: str = ""

    def render(self) -> str:
        text = f"assertion '{self.assertion}' failed at cycle {self.fail_cycle}"
        if self.start_cycle != self.fail_cycle:
            text += f" (attempt started at cycle {self.start_cycle})"
        if self.message:
            text += f": {self.message}"
        return text


@dataclass
class AssertionOutcome:
    """Aggregated result of checking one assertion over a whole trace."""

    name: str
    attempts: int = 0
    antecedent_matches: int = 0
    passes: int = 0
    vacuous: int = 0
    pending: int = 0
    disabled: int = 0
    failures: list[AssertionFailure] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.failures)

    @property
    def proved_nontrivially(self) -> bool:
        """True when the assertion held and was exercised at least once."""
        return not self.failed and self.antecedent_matches > 0


@dataclass
class CheckReport:
    """Results for every assertion of a design on one trace."""

    outcomes: dict[str, AssertionOutcome] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.failures

    @property
    def failures(self) -> list[AssertionFailure]:
        collected: list[AssertionFailure] = []
        for outcome in self.outcomes.values():
            collected.extend(outcome.failures)
        return sorted(collected, key=lambda f: (f.fail_cycle, f.assertion))

    @property
    def failed_assertions(self) -> list[str]:
        return sorted({f.assertion for f in self.failures})

    def outcome(self, name: str) -> AssertionOutcome:
        return self.outcomes[name]

    def first_failure(self) -> Optional[AssertionFailure]:
        failures = self.failures
        return failures[0] if failures else None


class AssertionChecker:
    """Checks the assertions of one design against simulation traces."""

    def __init__(self, design: ElaboratedDesign):
        self._design = design

    def check(self, trace: Trace, assertions: Optional[list[AssertionSpec]] = None) -> CheckReport:
        """Check (a subset of) the design's assertions over ``trace``."""
        report = CheckReport()
        specs = assertions if assertions is not None else self._design.assertions
        for spec in specs:
            report.outcomes[spec.name] = self._check_assertion(spec, trace)
        return report

    # ------------------------------------------------------------------ #
    # per-assertion evaluation
    # ------------------------------------------------------------------ #

    def _check_assertion(self, spec: AssertionSpec, trace: Trace) -> AssertionOutcome:
        outcome = AssertionOutcome(name=spec.name)
        for start in range(len(trace)):
            outcome.attempts += 1
            self._evaluate_attempt(spec, trace, start, outcome)
        return outcome

    def _evaluate_attempt(
        self, spec: AssertionSpec, trace: Trace, start: int, outcome: AssertionOutcome
    ) -> None:
        body = spec.body
        if self._disabled_at(spec, trace, start):
            outcome.disabled += 1
            return

        if body.antecedent is not None:
            matched, antecedent_end = self._match_sequence(spec, body.antecedent, trace, start)
            if matched is None:
                outcome.pending += 1
                return
            if not matched:
                outcome.vacuous += 1
                return
            outcome.antecedent_matches += 1
            consequent_start = antecedent_end if body.overlapping else antecedent_end + 1
        else:
            outcome.antecedent_matches += 1
            consequent_start = start

        if self._disabled_between(spec, trace, start, consequent_start):
            outcome.disabled += 1
            return

        satisfied, fail_cycle = self._satisfy_sequence(spec, body.consequent, trace, consequent_start)
        if satisfied is None:
            outcome.pending += 1
        elif satisfied:
            outcome.passes += 1
        else:
            if self._disabled_between(spec, trace, start, fail_cycle):
                outcome.disabled += 1
                return
            outcome.failures.append(
                AssertionFailure(
                    assertion=spec.name,
                    start_cycle=start,
                    fail_cycle=fail_cycle,
                    message=spec.error_message,
                )
            )

    # ------------------------------------------------------------------ #
    # sequence evaluation
    # ------------------------------------------------------------------ #

    def _match_sequence(
        self, spec: AssertionSpec, sequence: ast.SvaSequence, trace: Trace, start: int
    ) -> tuple[Optional[bool], int]:
        """Evaluate an antecedent: (matched, end_cycle); matched None = pending."""
        cycle = start
        for element in sequence.elements:
            cycle += element.delay
            if cycle >= len(trace):
                return None, cycle
            value = self._evaluate_boolean(spec, element.expr, trace, cycle)
            if value is None or not value:
                return False, cycle
        return True, cycle

    def _satisfy_sequence(
        self, spec: AssertionSpec, sequence: ast.SvaSequence, trace: Trace, start: int
    ) -> tuple[Optional[bool], int]:
        """Evaluate a consequent: (satisfied, fail_cycle); satisfied None = pending."""
        cycle = start
        for element in sequence.elements:
            cycle += element.delay
            if cycle >= len(trace):
                return None, cycle
            value = self._evaluate_boolean(spec, element.expr, trace, cycle)
            if value is None:
                # Unknown values never count as hard failures: the golden
                # design validation would otherwise reject sound assertions.
                continue
            if not value:
                return False, cycle
        return True, cycle

    def _disabled_at(self, spec: AssertionSpec, trace: Trace, cycle: int) -> bool:
        if spec.disable_iff is None:
            return False
        value = self._evaluate_boolean(spec, spec.disable_iff, trace, cycle)
        return bool(value)

    def _disabled_between(self, spec: AssertionSpec, trace: Trace, start: int, end: int) -> bool:
        if spec.disable_iff is None:
            return False
        for cycle in range(start, min(end, len(trace) - 1) + 1):
            if self._disabled_at(spec, trace, cycle):
                return True
        return False

    # ------------------------------------------------------------------ #
    # boolean-layer evaluation with sampled-value functions
    # ------------------------------------------------------------------ #

    def _evaluate_boolean(
        self, spec: AssertionSpec, expr: ast.Expression, trace: Trace, cycle: int
    ) -> Optional[bool]:
        environment = trace[cycle].pre_edge

        def sampled_value_hook(call: ast.SystemCall) -> LogicValue:
            return self._sampled_value(call, trace, cycle)

        evaluator = Evaluator(
            environment, self._design.parameters, sampled_value_hook=sampled_value_hook
        )
        try:
            return evaluator.evaluate_bool(expr)
        except EvalError:
            return None

    def _sampled_value(self, call: ast.SystemCall, trace: Trace, cycle: int) -> LogicValue:
        name = call.name
        argument = call.args[0] if call.args else None
        if argument is None:
            return LogicValue.unknown(1)

        def value_at(target_cycle: int) -> LogicValue:
            if target_cycle < 0:
                width = self._expression_width(argument)
                return LogicValue.unknown(width)
            environment = trace[target_cycle].pre_edge
            evaluator = Evaluator(
                environment,
                self._design.parameters,
                sampled_value_hook=lambda c: self._sampled_value(c, trace, target_cycle),
            )
            try:
                return evaluator.evaluate(argument)
            except EvalError:
                return LogicValue.unknown(1)

        if name == "$past":
            depth = 1
            if len(call.args) > 1 and isinstance(call.args[1], ast.Number):
                depth = max(1, call.args[1].value)
            return value_at(cycle - depth)
        current = value_at(cycle)
        previous = value_at(cycle - 1)
        if name == "$rose":
            if current.has_unknown or previous.has_unknown:
                return LogicValue.unknown(1)
            rose = (current.to_int() & 1) == 1 and (previous.to_int() & 1) == 0
            return LogicValue.from_int(int(rose), 1)
        if name == "$fell":
            if current.has_unknown or previous.has_unknown:
                return LogicValue.unknown(1)
            fell = (current.to_int() & 1) == 0 and (previous.to_int() & 1) == 1
            return LogicValue.from_int(int(fell), 1)
        if name == "$stable":
            if current.has_unknown or previous.has_unknown:
                return LogicValue.unknown(1)
            return LogicValue.from_int(int(current.to_int() == previous.to_int()), 1)
        if name == "$changed":
            if current.has_unknown or previous.has_unknown:
                return LogicValue.unknown(1)
            return LogicValue.from_int(int(current.to_int() != previous.to_int()), 1)
        return LogicValue.unknown(1)

    def _expression_width(self, expr: ast.Expression) -> int:
        if isinstance(expr, ast.Identifier):
            signal = self._design.signals.get(expr.name)
            if signal is not None:
                return signal.width
        return 1


def check_assertions(design: ElaboratedDesign, trace: Trace) -> CheckReport:
    """Convenience wrapper: check all assertions of ``design`` over ``trace``."""
    return AssertionChecker(design).check(trace)
