"""The end-to-end data-augmentation pipeline (Fig. 2 - I).

Generates the corpus, runs Stages 1-3, performs the paper's 90/10
length-binned module-name split, and returns the finished datasets:

* ``verilog_pt``       -- pretraining text (code that failed to compile + analysis),
* ``verilog_bug``      -- compiling bugs that trigger no assertion (auxiliary SFT data),
* ``sva_bug_train``    -- assertion-failure repair training data (with CoTs),
* ``sva_eval_machine`` -- the held-out 10 % that seeds SVA-Eval-Machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.corpus.generator import Corpus, CorpusConfig, CorpusGenerator
from repro.corpus.metadata import LENGTH_BINS, length_bin
from repro.dataaug.datasets import AugmentedDatasets, DatasetStatistics, SvaBugEntry
from repro.dataaug.stage1 import run_stage1
from repro.dataaug.stage2 import Stage2Config, Stage2Runner
from repro.dataaug.stage3 import Stage3Config, run_stage3


@dataclass
class PipelineConfig:
    """Scale and seeding for one pipeline run."""

    seed: int = 2025
    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    stage2: Stage2Config = field(default_factory=Stage2Config)
    stage3: Stage3Config = field(default_factory=Stage3Config)
    train_fraction: float = 0.9

    @classmethod
    def small(cls, seed: int = 2025, workers: int = 1) -> "PipelineConfig":
        """A configuration sized for fast tests (a handful of designs)."""
        return cls(
            seed=seed,
            corpus=CorpusConfig(seed=seed, design_count=10, corrupted_fraction=0.3),
            stage2=Stage2Config(
                seed=seed + 1, random_cycles=32, max_bugs_per_design=3, workers=workers
            ),
            stage3=Stage3Config(seed=seed + 2),
        )

    @classmethod
    def default(
        cls, seed: int = 2025, design_count: int = 150, workers: int = 1
    ) -> "PipelineConfig":
        """The benchmark-scale configuration.

        ``workers`` sizes the Stage-2 multiprocessing fan-out (the dominant
        cost at this scale); the output is identical for any worker count.
        """
        return cls(
            seed=seed,
            corpus=CorpusConfig(seed=seed, design_count=design_count),
            stage2=Stage2Config(seed=seed + 1, workers=workers),
            stage3=Stage3Config(seed=seed + 2),
        )


class DataAugmentationPipeline:
    """Runs corpus generation and the three augmentation stages."""

    def __init__(self, config: Optional[PipelineConfig] = None):
        self._config = config or PipelineConfig()

    def run(self, corpus: Optional[Corpus] = None) -> AugmentedDatasets:
        """Execute the full pipeline and return the datasets."""
        config = self._config
        statistics = DatasetStatistics()

        corpus = corpus or CorpusGenerator(config.corpus).generate()
        statistics.corpus_samples = len(corpus.samples) + len(corpus.corrupted)

        stage1 = run_stage1(corpus)
        statistics.filtered_out = stage1.filtered_out
        statistics.compile_failures = stage1.compile_failures
        statistics.verilog_pt_entries = len(stage1.verilog_pt)

        stage2_runner = Stage2Runner(config.stage2)
        stage2 = stage2_runner.run(stage1.compiled)
        statistics.candidate_svas = stage2.candidate_svas
        statistics.validated_svas = stage2.validated_svas
        statistics.injected_bugs = stage2.injected_bugs
        statistics.bugs_rejected_not_compiling = stage2.rejected_not_compiling
        statistics.sva_bug_entries = len(stage2.sva_bug)
        statistics.verilog_bug_entries = len(stage2.verilog_bug)

        train_entries, eval_entries = split_by_module_name(
            stage2.sva_bug, train_fraction=config.train_fraction, seed=config.seed
        )

        generated, valid = run_stage3(train_entries, config.stage3)
        statistics.cot_generated = generated
        statistics.cot_valid = valid

        return AugmentedDatasets(
            verilog_pt=stage1.verilog_pt,
            verilog_bug=stage2.verilog_bug,
            sva_bug_train=train_entries,
            sva_eval_machine=eval_entries,
            statistics=statistics,
        )


def split_by_module_name(
    entries: list[SvaBugEntry], train_fraction: float = 0.9, seed: int = 2025
) -> tuple[list[SvaBugEntry], list[SvaBugEntry]]:
    """The paper's train/test split.

    1. bin the buggy code by length into the Table-II intervals,
    2. enumerate the unique module (design) names within each bin,
    3. uniformly select ``train_fraction`` of the names per bin for training;
       every entry of a selected module goes to the same side, guaranteeing
       the two sets share no design.
    """
    rng = random.Random(seed)
    names_by_bin: dict[str, list[str]] = {bin_label: [] for bin_label in LENGTH_BINS}
    bin_of_name: dict[str, str] = {}
    for entry in entries:
        if entry.design_name not in bin_of_name:
            bin_label = length_bin(entry.code_lines)
            bin_of_name[entry.design_name] = bin_label
            names_by_bin.setdefault(bin_label, []).append(entry.design_name)

    train_names: set[str] = set()
    for bin_label, names in names_by_bin.items():
        if not names:
            continue
        names = sorted(names)
        rng.shuffle(names)
        cut = max(1, round(len(names) * train_fraction))
        if len(names) >= 2:
            # Guarantee every populated length bin contributes at least one
            # held-out design, so the evaluation breakdowns cover all bins.
            cut = min(cut, len(names) - 1)
        train_names.update(names[:cut])

    train = [entry for entry in entries if entry.design_name in train_names]
    test = [entry for entry in entries if entry.design_name not in train_names]
    return train, test
