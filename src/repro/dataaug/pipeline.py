"""The end-to-end data-augmentation pipeline (Fig. 2 - I).

Generates the corpus, runs Stages 1-3, performs the paper's 90/10
length-binned module-name split, and returns the finished datasets:

* ``verilog_pt``       -- pretraining text (code that failed to compile + analysis),
* ``verilog_bug``      -- compiling bugs that trigger no assertion (auxiliary SFT data),
* ``sva_bug_train``    -- assertion-failure repair training data (with CoTs),
* ``sva_eval_machine`` -- the held-out 10 % that seeds SVA-Eval-Machine.

Every stage fans out through :mod:`repro.runtime`, and one
``PipelineConfig.workers`` knob sizes all of them at once; the datasets are
byte-identical for any worker count (and for cold or warm result cache).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.corpus.generator import Corpus, CorpusConfig, CorpusGenerator
from repro.corpus.metadata import LENGTH_BINS, length_bin
from repro.dataaug.datasets import AugmentedDatasets, DatasetStatistics, SvaBugEntry
from repro.dataaug.stage1 import run_stage1
from repro.dataaug.stage2 import Stage2Config, Stage2Runner
from repro.dataaug.stage3 import Stage3Config, run_stage3
from repro.obs import (
    MetricsRegistry,
    Tracer,
    get_registry,
    resolve_trace_path,
    set_registry,
    set_tracer,
    write_trace,
)
from repro.runtime import FaultPlan


@dataclass
class PipelineConfig:
    """Scale and seeding for one pipeline run."""

    seed: int = 2025
    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    stage2: Stage2Config = field(default_factory=Stage2Config)
    stage3: Stage3Config = field(default_factory=Stage3Config)
    train_fraction: float = 0.9
    #: One worker knob for the whole pipeline: when set, it overrides every
    #: stage's own worker count (corpus builds, Stage-1 compile checks, the
    #: Stage-2 fan-out, Stage-3 CoT jobs).  ``None`` leaves the per-stage
    #: settings alone (Stage 2 then auto-detects cores).  The output is
    #: byte-identical for any value.
    workers: Optional[int] = None
    #: Optional content-addressed result cache directory (threaded to the
    #: Stage-2 per-sample cache): re-runs only process what changed.
    cache_dir: Optional[str] = None
    #: Pipeline-wide failure policy, threaded to every stage: "raise" aborts
    #: on the first job failure (historical behaviour), "quarantine" skips
    #: failed jobs and reports them in ``statistics.skipped_jobs``.
    on_error: str = "raise"
    #: Pipeline-wide per-job timeout in seconds (None: unlimited).
    job_timeout: Optional[float] = None
    #: Pipeline-wide retry budget per job.
    max_attempts: int = 1
    #: Write a JSONL trace of the run here (``REPRO_TRACE`` is the env
    #: fallback).  Telemetry only: the datasets are byte-identical with
    #: tracing on or off, and this knob is never part of any content key.
    trace_path: Optional[str] = None

    @classmethod
    def small(
        cls, seed: int = 2025, workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
    ) -> "PipelineConfig":
        """A configuration sized for fast tests (a handful of designs)."""
        return cls(
            seed=seed,
            corpus=CorpusConfig(seed=seed, design_count=10, corrupted_fraction=0.3),
            stage2=Stage2Config(seed=seed + 1, random_cycles=32, max_bugs_per_design=3),
            stage3=Stage3Config(seed=seed + 2),
            workers=workers,
            cache_dir=cache_dir,
        )

    @classmethod
    def default(
        cls, seed: int = 2025, design_count: int = 150,
        workers: Optional[int] = None, cache_dir: Optional[str] = None,
    ) -> "PipelineConfig":
        """The benchmark-scale configuration.

        ``workers`` sizes every stage's fan-out (Stage 2 dominates at this
        scale); the output is identical for any worker count.
        """
        return cls(
            seed=seed,
            corpus=CorpusConfig(seed=seed, design_count=design_count),
            stage2=Stage2Config(seed=seed + 1),
            stage3=Stage3Config(seed=seed + 2),
            workers=workers,
            cache_dir=cache_dir,
        )


class DataAugmentationPipeline:
    """Runs corpus generation and the three augmentation stages.

    After :meth:`run`, :attr:`stage_timings` holds the wall-clock seconds of
    each stage (``corpus`` / ``stage1`` / ``stage2`` / ``split`` /
    ``stage3``) -- telemetry only, never part of the datasets.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracer=None,
    ):
        self._config = config or PipelineConfig()
        self.stage_timings: dict[str, float] = {}
        #: Deterministic fault injection threaded into every stage (tests only).
        self._fault_plan = fault_plan
        #: Tracer ownership: an explicit ``tracer`` means the caller collects
        #: and writes the trace (the CLI does this to merge pipeline + eval
        #: into one file); otherwise ``config.trace_path`` / ``REPRO_TRACE``
        #: make this pipeline own a tracer and write the file after `run`.
        self._owned_trace_path = (
            resolve_trace_path(self._config.trace_path) if tracer is None else None
        )
        self._tracer = tracer if tracer is not None else (
            Tracer() if self._owned_trace_path else None
        )

    def _effective_configs(self) -> tuple[CorpusConfig, Stage2Config, Stage3Config, int]:
        """Per-stage configs with the pipeline-level knobs threaded through."""
        config = self._config
        corpus_config, stage2_config, stage3_config = (
            config.corpus, config.stage2, config.stage3
        )
        if config.workers is not None:
            corpus_config = replace(corpus_config, workers=config.workers)
            stage2_config = replace(stage2_config, workers=config.workers)
            stage3_config = replace(stage3_config, workers=config.workers)
        if config.cache_dir is not None and stage2_config.cache_dir is None:
            stage2_config = replace(stage2_config, cache_dir=str(config.cache_dir))
        fault_knobs = dict(
            on_error=config.on_error,
            job_timeout=config.job_timeout,
            max_attempts=config.max_attempts,
        )
        if config.on_error != "raise" or config.job_timeout is not None or config.max_attempts != 1:
            corpus_config = replace(corpus_config, **fault_knobs)
            stage2_config = replace(stage2_config, **fault_knobs)
            stage3_config = replace(stage3_config, **fault_knobs)
        stage1_workers = config.workers if config.workers is not None else 1
        return corpus_config, stage2_config, stage3_config, stage1_workers

    def run(self, corpus: Optional[Corpus] = None) -> AugmentedDatasets:
        """Execute the full pipeline and return the datasets."""
        if self._tracer is None:
            return self._run(corpus)
        # Install the tracer (and, when this pipeline owns the trace file, a
        # fresh metrics registry so the file reflects this run alone) as
        # ambient for the duration; telemetry never touches the datasets.
        previous_tracer = set_tracer(self._tracer)
        previous_registry = None
        if self._owned_trace_path:
            previous_registry = set_registry(MetricsRegistry())
        try:
            with self._tracer.span("pipeline", seed=self._config.seed):
                datasets = self._run(corpus)
        finally:
            registry = get_registry()
            set_tracer(previous_tracer)
            if previous_registry is not None:
                set_registry(previous_registry)
            if self._owned_trace_path:
                write_trace(
                    self._owned_trace_path,
                    self._tracer,
                    metrics=registry,
                    meta={"kind": "pipeline"},
                )
        return datasets

    def _run(self, corpus: Optional[Corpus] = None) -> AugmentedDatasets:
        config = self._config
        corpus_config, stage2_config, stage3_config, stage1_workers = (
            self._effective_configs()
        )
        statistics = DatasetStatistics()
        timings: dict[str, float] = {}
        tracer = self._tracer

        def timed(label: str, step):
            started = time.perf_counter()
            if tracer is not None:
                with tracer.span(f"pipeline.{label}"):
                    value = step()
            else:
                value = step()
            elapsed = time.perf_counter() - started
            timings[label] = elapsed
            get_registry().observe(f"pipeline.{label}_s", elapsed)
            return value

        corpus = corpus or timed(
            "corpus",
            lambda: CorpusGenerator(
                corpus_config, fault_plan=self._fault_plan, tracer=tracer
            ).generate(),
        )
        statistics.corpus_samples = len(corpus.samples) + len(corpus.corrupted)
        statistics.skipped_jobs.extend(corpus.skipped)

        stage1 = timed(
            "stage1",
            lambda: run_stage1(
                corpus,
                workers=stage1_workers,
                on_error=config.on_error,
                job_timeout=config.job_timeout,
                max_attempts=config.max_attempts,
                fault_plan=self._fault_plan,
                tracer=tracer,
            ),
        )
        statistics.filtered_out = stage1.filtered_out
        statistics.compile_failures = stage1.compile_failures
        statistics.verilog_pt_entries = len(stage1.verilog_pt)
        statistics.skipped_jobs.extend(stage1.skipped)

        stage2 = timed(
            "stage2",
            lambda: Stage2Runner(
                stage2_config, fault_plan=self._fault_plan, tracer=tracer
            ).run(stage1.compiled),
        )
        statistics.candidate_svas = stage2.candidate_svas
        statistics.validated_svas = stage2.validated_svas
        statistics.injected_bugs = stage2.injected_bugs
        statistics.bugs_rejected_not_compiling = stage2.rejected_not_compiling
        statistics.sva_bug_entries = len(stage2.sva_bug)
        statistics.verilog_bug_entries = len(stage2.verilog_bug)
        statistics.skipped_jobs.extend(stage2.skipped)

        train_entries, eval_entries = timed(
            "split",
            lambda: split_by_module_name(
                stage2.sva_bug, train_fraction=config.train_fraction, seed=config.seed
            ),
        )

        generated, valid, stage3_skipped = timed(
            "stage3",
            lambda: run_stage3(
                train_entries, stage3_config, fault_plan=self._fault_plan, tracer=tracer
            ),
        )
        statistics.cot_generated = generated
        statistics.cot_valid = valid
        statistics.skipped_jobs.extend(stage3_skipped)

        self.stage_timings = timings
        return AugmentedDatasets(
            verilog_pt=stage1.verilog_pt,
            verilog_bug=stage2.verilog_bug,
            sva_bug_train=train_entries,
            sva_eval_machine=eval_entries,
            statistics=statistics,
        )


def split_by_module_name(
    entries: list[SvaBugEntry], train_fraction: float = 0.9, seed: int = 2025
) -> tuple[list[SvaBugEntry], list[SvaBugEntry]]:
    """The paper's train/test split.

    1. bin the buggy code by length into the Table-II intervals,
    2. enumerate the unique module (design) names within each bin,
    3. uniformly select ``train_fraction`` of the names per bin for training;
       every entry of a selected module goes to the same side, guaranteeing
       the two sets share no design.
    """
    rng = random.Random(seed)
    names_by_bin: dict[str, list[str]] = {bin_label: [] for bin_label in LENGTH_BINS}
    bin_of_name: dict[str, str] = {}
    for entry in entries:
        if entry.design_name not in bin_of_name:
            bin_label = length_bin(entry.code_lines)
            bin_of_name[entry.design_name] = bin_label
            names_by_bin.setdefault(bin_label, []).append(entry.design_name)

    train_names: set[str] = set()
    for bin_label, names in names_by_bin.items():
        if not names:
            continue
        names = sorted(names)
        rng.shuffle(names)
        cut = max(1, round(len(names) * train_fraction))
        if len(names) >= 2:
            # Guarantee every populated length bin contributes at least one
            # held-out design, so the evaluation breakdowns cover all bins.
            cut = min(cut, len(names) - 1)
        train_names.update(names[:cut])

    train = [entry for entry in entries if entry.design_name in train_names]
    test = [entry for entry in entries if entry.design_name not in train_names]
    return train, test
