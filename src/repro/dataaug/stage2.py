"""Stage 2: key-component generation and validation.

For every sample that survived Stage 1:

1. candidate SVAs are collected from the design family's template assertions
   and from the assertion miner (the reproduction of Claude-3.5's SVA
   generation),
2. the candidates are inserted into the golden source, compiled and checked
   on a simulation trace; candidates that fail (or do not compile) are
   discarded -- the first half of the paper's two-step validation,
3. single-line bugs are injected with the mutation engine; mutants that do
   not compile are discarded -- the second half of the validation,
4. every surviving mutant is simulated against the validated SVAs.  Mutants
   that trigger at least one assertion failure become SVA-Bug entries (with
   the captured failure log); mutants that keep all assertions happy become
   Verilog-Bug entries.  With ``Stage2Config.static_screen = "cone"``,
   mutants whose edit is provably outside every assertion's cone of
   influence are classified as Verilog-Bug entries directly -- no assertion
   can observe such an edit -- without paying for the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.bugs.injector import BugInjector, InjectionConfig
from repro.bugs.taxonomy import classify_direct
from repro.corpus.generator import CorpusSample
from repro.dataaug.datasets import SvaBugEntry, VerilogBugEntry
from repro.hdl.elaborate import ElaboratedDesign
from repro.hdl.lint import compile_source
from repro.runtime import (
    FaultPlan,
    ResultCache,
    content_key,
    default_workers,
    derive_seed,
    run_jobs,
)
from repro.sim.engine import SimulationError, Simulator
from repro.sim.stimulus import StimulusGenerator
from repro.sva.checker import check_assertions
from repro.sva.generator import (
    MinedAssertion,
    insert_assertions,
    mine_assertions,
    template_assertion_blocks,
)
from repro.sva.logs import format_failure_log

#: Bumped whenever per-sample Stage-2 semantics change: keys old cached
#: results out of any ``Stage2Config.cache_dir`` directory.
STAGE2_RESULT_VERSION = "stage2_result/v1"


@dataclass
class Stage2Config:
    """Knobs for SVA validation and bug injection."""

    seed: int = 11
    random_cycles: int = 48
    max_mined_assertions: int = 5
    max_bugs_per_design: int = 6
    injection: InjectionConfig = field(default_factory=InjectionConfig)
    #: Worker-pool size for the per-sample fan-out; <= 1 runs in-process.
    #: Defaults to the machine's cores (capped, ``REPRO_WORKERS``-overridable).
    workers: int = field(default_factory=default_workers)
    #: Assertion-checker backend for SVA validation and bug triage
    #: ("auto" | "compiled" | "interp"); both produce identical outcomes.
    checker_backend: str = "auto"
    #: Optional content-addressed result cache directory: per-sample results
    #: are persisted so re-runs only process samples whose inputs changed.
    cache_dir: Optional[str] = None
    #: Failure policy for per-sample jobs: "raise" aborts the stage on the
    #: first failure (historical behaviour), "quarantine" records the sample
    #: in :attr:`Stage2Result.skipped` and keeps going.
    on_error: str = "raise"
    #: Per-sample job timeout in seconds (None: unlimited).
    job_timeout: Optional[float] = None
    #: Executions charged to a sample's job before it is quarantined/raised.
    max_attempts: int = 1
    #: Static screening of injected mutants: "off" simulates every compiling
    #: mutant (the historical path); "cone" classifies mutants whose edit is
    #: provably outside every validated assertion's cone of influence as
    #: Verilog-Bug entries *without simulating* -- no assertion can observe
    #: such an edit, so it can never become an SVA-Bug entry.  Changes which
    #: pipeline path produces each entry, so it is part of
    #: :meth:`content_fingerprint`.
    static_screen: str = "off"

    def content_fingerprint(self) -> str:
        """Every config field that can change a per-sample result.

        Worker count and cache location deliberately excluded -- they can
        only change wall time, never output.  ``job_timeout`` and
        ``max_attempts`` are *included*: a cached-through failure record is
        only valid for the fault-tolerance budget it was produced under
        (``on_error`` itself only changes aggregation, never a per-sample
        result, so it stays out).
        """
        return "|".join(
            str(part)
            for part in (
                self.seed,
                self.random_cycles,
                self.max_mined_assertions,
                self.max_bugs_per_design,
                self.injection.seed,
                self.injection.max_bugs_per_design,
                self.injection.max_candidates_per_line,
                self.injection.require_compile,
                self.checker_backend,
                self.job_timeout,
                self.max_attempts,
                self.static_screen,
            )
        )


@dataclass
class Stage2Result:
    """Validated entries plus per-stage counters."""

    sva_bug: list[SvaBugEntry] = field(default_factory=list)
    verilog_bug: list[VerilogBugEntry] = field(default_factory=list)
    candidate_svas: int = 0
    validated_svas: int = 0
    injected_bugs: int = 0
    rejected_not_compiling: int = 0
    designs_without_valid_svas: int = 0
    #: Samples whose job was quarantined (``on_error="quarantine"``): one
    #: record per skipped sample with the structured failure summary.
    skipped: list[dict] = field(default_factory=list)

    def merge(self, other: "Stage2Result") -> None:
        """Fold another (e.g. per-sample) result into this one, in order."""
        self.sva_bug.extend(other.sva_bug)
        self.verilog_bug.extend(other.verilog_bug)
        self.candidate_svas += other.candidate_svas
        self.validated_svas += other.validated_svas
        self.injected_bugs += other.injected_bugs
        self.rejected_not_compiling += other.rejected_not_compiling
        self.designs_without_valid_svas += other.designs_without_valid_svas
        self.skipped.extend(other.skipped)

    def to_dict(self) -> dict:
        """JSON-safe form, used by the runtime's per-sample result cache."""
        return {
            "sva_bug": [entry.to_dict() for entry in self.sva_bug],
            "verilog_bug": [entry.to_dict() for entry in self.verilog_bug],
            "candidate_svas": self.candidate_svas,
            "validated_svas": self.validated_svas,
            "injected_bugs": self.injected_bugs,
            "rejected_not_compiling": self.rejected_not_compiling,
            "designs_without_valid_svas": self.designs_without_valid_svas,
            "skipped": list(self.skipped),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Stage2Result":
        """Inverse of :meth:`to_dict`."""
        return cls(
            sva_bug=[SvaBugEntry.from_dict(entry) for entry in payload["sva_bug"]],
            verilog_bug=[VerilogBugEntry.from_dict(entry) for entry in payload["verilog_bug"]],
            candidate_svas=payload["candidate_svas"],
            validated_svas=payload["validated_svas"],
            injected_bugs=payload["injected_bugs"],
            rejected_not_compiling=payload["rejected_not_compiling"],
            designs_without_valid_svas=payload["designs_without_valid_svas"],
            skipped=list(payload.get("skipped", [])),
        )


def _simulate(design: ElaboratedDesign, seed: int, cycles: int, compiled=None):
    simulator = Simulator(design, compiled=compiled)
    stimulus = StimulusGenerator(design, seed=seed).mixed_stimulus(random_cycles=cycles)
    trace = simulator.run(stimulus.vectors)
    return trace


class Stage2Runner:
    """Runs Stage 2 for a batch of compiled corpus samples.

    Samples are independent, so ``run`` fans them out through the shared
    :func:`repro.runtime.run_jobs` executor when ``config.workers > 1``.
    Mutation seeding is derived per sample (from the config seed and the
    sample name), which makes the output identical whether the batch runs
    serially or in parallel, and independent of sample order.
    """

    def __init__(
        self, config: Optional[Stage2Config] = None, fault_plan: Optional[FaultPlan] = None,
        tracer=None,
    ):
        self._config = config or Stage2Config()
        #: Deterministic fault injection for the per-sample jobs (tests only).
        self._fault_plan = fault_plan
        #: Out-of-band telemetry; never part of content keys or results.
        self._tracer = tracer

    def _sample_injector(self, sample: CorpusSample) -> BugInjector:
        """A fresh, deterministically seeded injector for one sample."""
        injection = replace(
            self._config.injection,
            seed=derive_seed(self._config.injection.seed, sample.name),
            max_bugs_per_design=self._config.max_bugs_per_design,
        )
        return BugInjector(injection)

    # ------------------------------------------------------------------ #
    # SVA generation + validation
    # ------------------------------------------------------------------ #

    def validated_assertions(
        self, sample: CorpusSample, result: Stage2Result
    ) -> tuple[Optional[str], Optional[ElaboratedDesign]]:
        """Insert candidate SVAs into the golden source and keep the valid ones.

        Returns the augmented golden source (with only valid SVAs) and its
        elaborated design, or ``(None, None)`` when nothing useful remains.
        Candidates are validated against an *independent* stimulus
        (``seed + 1``), not the trace they were mined from -- a mined
        invariant trivially holds on its own mining trace, so validating
        there would be vacuous.
        """
        from repro.artifacts import default_store

        store = default_store()
        golden_compile = compile_source(sample.source)
        if not golden_compile.ok or golden_compile.design is None:
            return None, None
        # The golden design's lowering is the relowering base for everything
        # downstream: the augmented design adds only assertions (identical
        # sim nodes, so it reuses 100% of them) and every mutant is a
        # one-line variant of the augmented design.
        golden_compiled = store.compiled_design(golden_compile.design)
        try:
            golden_trace = _simulate(
                golden_compile.design, self._config.seed, self._config.random_cycles,
                compiled=golden_compiled,
            )
        except SimulationError:
            return None, None

        candidates = template_assertion_blocks(
            sample.artifact.template_svas, sample.artifact.family
        )
        candidates.extend(
            mine_assertions(
                golden_compile.design,
                golden_trace,
                max_assertions=self._config.max_mined_assertions,
            )
        )
        result.candidate_svas += len(candidates)
        if not candidates:
            result.designs_without_valid_svas += 1
            return None, None

        augmented = insert_assertions(sample.source, candidates)
        augmented_compile = compile_source(augmented)
        if not augmented_compile.ok or augmented_compile.design is None:
            result.designs_without_valid_svas += 1
            return None, None
        # The assertions do not change the signal set, so the validation
        # trace can be produced from the golden design (compiled once above
        # would even suffice structurally) -- but it must use a different
        # stimulus seed than the mining trace to actually test anything.
        augmented_compiled = store.compiled_design(
            augmented_compile.design, base=golden_compiled
        )
        try:
            validation_trace = _simulate(
                augmented_compile.design, self._config.seed + 1, self._config.random_cycles,
                compiled=augmented_compiled,
            )
        except SimulationError:
            result.designs_without_valid_svas += 1
            return None, None
        report = check_assertions(
            augmented_compile.design, validation_trace, backend=self._config.checker_backend
        )
        failing = set(report.failed_assertions)
        if failing:
            # Drop candidates whose assertion failed on the golden design and retry once.
            valid = [c for c in candidates if _assertion_label(c) not in failing]
            if not valid:
                result.designs_without_valid_svas += 1
                return None, None
            augmented = insert_assertions(sample.source, valid)
            augmented_compile = compile_source(augmented)
            if not augmented_compile.ok or augmented_compile.design is None:
                result.designs_without_valid_svas += 1
                return None, None
            result.validated_svas += len(valid)
        else:
            result.validated_svas += len(candidates)
        return augmented, augmented_compile.design

    # ------------------------------------------------------------------ #
    # bug injection + validation
    # ------------------------------------------------------------------ #

    def process_sample(self, sample: CorpusSample, result: Stage2Result) -> None:
        """Run the complete Stage 2 flow for one sample."""
        from repro.artifacts import default_store

        store = default_store()
        augmented_golden, golden_design = self.validated_assertions(sample, result)
        if augmented_golden is None or golden_design is None:
            return
        # Every mutant below is a one-line variant of the augmented golden
        # design, so its lowering (cached from validated_assertions) is the
        # base each mutant relowers incrementally against; the checker base
        # likewise (mutations touch logic, not the assertions, so assertion
        # lowerings are reused wholesale).
        base_compiled = store.compiled_design(golden_design)
        try:
            base_checker = store.checker(
                golden_design, backend=self._config.checker_backend
            )
        except Exception:
            base_checker = None
        bugs = self._sample_injector(sample).inject(sample.name, augmented_golden, golden_design)
        result.injected_bugs += len(bugs)
        golden_dfg = (
            store.dataflow(golden_design) if self._config.static_screen == "cone" else None
        )
        for index, bug in enumerate(bugs):
            buggy_compile = compile_source(bug.buggy_source)
            if not buggy_compile.ok or buggy_compile.design is None:
                result.rejected_not_compiling += 1
                continue
            if golden_dfg is not None:
                from repro.analyze.cone import cone_screen
                from repro.obs import get_registry

                decision = cone_screen(golden_dfg, store.dataflow(buggy_compile.design))
                if decision.skip:
                    # The edit is invisible to every validated assertion, so
                    # this mutant can never fail one: it is a Verilog-Bug
                    # entry by construction, no simulation needed.
                    get_registry().inc("stage2.cone_skips")
                    result.verilog_bug.append(
                        VerilogBugEntry(
                            name=f"{sample.name}_vb{index}",
                            spec=sample.spec,
                            buggy_source=bug.buggy_source,
                            golden_line=bug.golden_line,
                            buggy_line=bug.buggy_line,
                            line_number=bug.line_number,
                            edit_kind=bug.edit_kind,
                            is_conditional=bug.is_conditional,
                            description=bug.description,
                        )
                    )
                    continue
            buggy_compiled = store.compiled_design(
                buggy_compile.design, base=base_compiled
            )
            stimulus_seed = self._config.seed + 101 + index
            try:
                trace = _simulate(
                    buggy_compile.design, stimulus_seed, self._config.random_cycles,
                    compiled=buggy_compiled,
                )
            except SimulationError:
                result.rejected_not_compiling += 1
                continue
            report = store.checker(
                buggy_compile.design,
                backend=self._config.checker_backend,
                base=base_checker,
            ).check(trace)
            if report.passed:
                result.verilog_bug.append(
                    VerilogBugEntry(
                        name=f"{sample.name}_vb{index}",
                        spec=sample.spec,
                        buggy_source=bug.buggy_source,
                        golden_line=bug.golden_line,
                        buggy_line=bug.buggy_line,
                        line_number=bug.line_number,
                        edit_kind=bug.edit_kind,
                        is_conditional=bug.is_conditional,
                        description=bug.description,
                    )
                )
                continue
            failing_names = report.failed_assertions
            bug.failing_assertions = failing_names
            failing_specs = [
                spec for spec in buggy_compile.design.assertions if spec.name in failing_names
            ]
            bug.is_direct = classify_direct(bug, failing_specs)
            logs = format_failure_log(sample.name, report)
            result.sva_bug.append(
                SvaBugEntry(
                    name=f"{sample.name}_sb{index}",
                    design_name=sample.name,
                    family=sample.artifact.family,
                    origin="machine",
                    spec=sample.spec,
                    golden_source=augmented_golden,
                    buggy_source=bug.buggy_source,
                    logs=logs,
                    failing_assertions=failing_names,
                    line_number=bug.line_number,
                    golden_line=bug.golden_line,
                    buggy_line=bug.buggy_line,
                    edit_kind=bug.edit_kind,
                    is_conditional=bug.is_conditional,
                    is_direct=bool(bug.is_direct),
                    mutation_name=bug.mutation_name,
                    description=bug.description,
                    stimulus_seed=stimulus_seed,
                    stimulus_cycles=self._config.random_cycles,
                )
            )

    def run(self, samples: list[CorpusSample]) -> Stage2Result:
        """Run Stage 2 for every sample through the runtime executor.

        Results are merged in submission order, so worker count never
        changes the output; with ``config.cache_dir`` set, per-sample
        results are served content-addressed from disk on re-runs
        (quarantined failures are cached through too, so warm re-runs make
        the same skip decisions byte-for-byte).
        """
        config = self._config
        cache = ResultCache(config.cache_dir) if config.cache_dir else None
        sample_results = run_jobs(
            samples,
            _process_sample_job,
            workers=config.workers,
            context=config,
            cache=cache,
            key_fn=lambda sample: _sample_key(config, sample),
            encode=Stage2Result.to_dict,
            decode=Stage2Result.from_dict,
            on_error=config.on_error,
            timeout=config.job_timeout,
            max_attempts=config.max_attempts,
            fault_plan=self._fault_plan,
            tracer=self._tracer,
        )
        result = Stage2Result()
        if config.on_error == "quarantine":
            for sample, outcome in zip(samples, sample_results):
                if outcome.ok:
                    result.merge(outcome.result)
                else:
                    result.skipped.append(
                        {"stage": "stage2", "name": sample.name, **outcome.failure.summary()}
                    )
            return result
        for sample_result in sample_results:
            result.merge(sample_result)
        return result


def _process_sample_job(sample: CorpusSample, config: Stage2Config) -> Stage2Result:
    """Worker function: run one sample and ship its result back."""
    result = Stage2Result()
    Stage2Runner(config).process_sample(sample, result)
    return result


def _sample_key(config: Stage2Config, sample: CorpusSample) -> str:
    """Content address of one sample's Stage-2 result.

    Covers everything the per-sample flow reads: the config (minus
    wall-time-only knobs), the golden source, the spec, and the artifact
    fields that feed candidate SVAs.
    """
    return content_key(
        STAGE2_RESULT_VERSION,
        config.content_fingerprint(),
        sample.name,
        sample.source,
        sample.spec,
        sample.artifact.family,
        "\x01".join(sample.artifact.template_svas),
    )


def _assertion_label(candidate: MinedAssertion) -> str:
    """The assertion label a candidate will have once inserted (``a_<property>``)."""
    text = candidate.assert_text or candidate.property_text
    label = text.split(":", 1)[0].strip()
    return label


def run_stage2(samples: list[CorpusSample], config: Optional[Stage2Config] = None) -> Stage2Result:
    """Convenience wrapper running Stage 2 over a sample list."""
    return Stage2Runner(config).run(samples)
