"""Stage 3: chain-of-thought generation and validation.

In the paper GPT-4 is given the spec, the buggy code, the logs *and the bug
location*, and asked to produce a chain of thought explaining the failure and
the fix; a script then compares GPT-4's identified error/correction with the
golden solution and keeps the CoT only when they agree (74.55 % of the time).

The reproduction's CoT writer builds the reasoning text from the same inputs.
To preserve the paper's imperfect-teacher behaviour, the writer occasionally
"drifts": with a configurable probability it reasons its way to a nearby but
wrong line or to a plausible but wrong fix, exactly the kind of error the
validation step is there to catch.  Validation compares the CoT's claimed
line and fix against the golden solution, and only validated CoTs are kept in
the training answers (marked "step by step").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.dataaug.datasets import SvaBugEntry
from repro.hdl.source import SourceFile, lines_equivalent, strip_comment
from repro.runtime import FaultPlan, derive_seed, run_jobs
from repro.sva.logs import parse_failure_log


@dataclass
class Stage3Config:
    """Controls CoT generation."""

    seed: int = 17
    drift_probability: float = 0.25  # fraction of CoTs that reason to the wrong place
    #: Worker-pool size for the per-entry fan-out; <= 1 runs in-process.
    workers: int = 1
    #: Failure policy for per-entry CoT jobs: "raise" aborts the stage on
    #: the first failure (historical behaviour), "quarantine" leaves the
    #: entry without a CoT and records it in the returned skip list.
    on_error: str = "raise"
    #: Per-entry job timeout in seconds (None: unlimited).
    job_timeout: Optional[float] = None
    #: Executions charged to an entry's job before it is quarantined/raised.
    max_attempts: int = 1


@dataclass
class CotDraft:
    """A generated chain of thought plus the conclusions it commits to."""

    text: str
    claimed_line_number: int
    claimed_buggy_line: str
    claimed_fix: str


def _cone_summary(entry: SvaBugEntry) -> str:
    log = parse_failure_log(entry.logs)
    if log.failed_assertions:
        names = ", ".join(log.failed_assertions)
        return f"The simulation log reports the failing assertion(s): {names}."
    return "The simulation log reports at least one failing assertion."


def write_cot(entry: SvaBugEntry, claimed_line: int, claimed_buggy: str, claimed_fix: str) -> str:
    """Render the chain-of-thought text for a (possibly drifted) conclusion."""
    assertion_names = ", ".join(entry.failing_assertions) or "the triggered assertion"
    steps = [
        "Step 1: " + _cone_summary(entry),
        (
            "Step 2: The failing assertion "
            f"({assertion_names}) constrains the behaviour described in the specification; "
            "the signals it samples must be driven according to the documented update rules."
        ),
        (
            "Step 3: Tracing the drivers of the asserted signals through the design, the "
            f"logic on line {claimed_line} is responsible for the behaviour the assertion checks: "
            f"`{claimed_buggy.strip()}`."
        ),
        (
            "Step 4: Comparing this line against the specification shows it does not implement "
            "the documented behaviour, which explains why the assertion can be violated."
        ),
        (
            "Step 5: The fix is to rewrite the line as `"
            + claimed_fix.strip()
            + "` so that the implementation matches the specification and the assertion holds."
        ),
    ]
    return "\n".join(steps)


class CotGenerator:
    """Generates and validates chains of thought for SVA-Bug entries.

    The drift noise is drawn from a *per-entry* RNG derived from the config
    seed and the entry name -- not from one shared stream -- so which CoTs
    drift is independent of entry order and of how the per-entry jobs are
    sharded across workers.
    """

    def __init__(
        self, config: Optional[Stage3Config] = None, fault_plan: Optional[FaultPlan] = None,
        tracer=None,
    ):
        self._config = config or Stage3Config()
        #: Deterministic fault injection for the per-entry jobs (tests only).
        self._fault_plan = fault_plan
        #: Out-of-band telemetry; never part of results.
        self._tracer = tracer

    def _entry_rng(self, entry: SvaBugEntry) -> random.Random:
        return random.Random(derive_seed(self._config.seed, entry.name))

    def generate(self, entry: SvaBugEntry) -> CotDraft:
        """Produce a CoT draft for one entry (ground truth given, noise injected)."""
        rng = self._entry_rng(entry)
        if rng.random() >= self._config.drift_probability:
            return CotDraft(
                text=write_cot(entry, entry.line_number, entry.buggy_line, entry.golden_line),
                claimed_line_number=entry.line_number,
                claimed_buggy_line=entry.buggy_line,
                claimed_fix=entry.golden_line,
            )
        return self._drifted(entry, rng)

    def _drifted(self, entry: SvaBugEntry, rng: random.Random) -> CotDraft:
        """A CoT that reasons its way to a wrong conclusion (imperfect teacher)."""
        source = SourceFile(entry.buggy_source)
        code_lines = source.code_line_numbers()
        if rng.random() < 0.5 and len(code_lines) > 1:
            # Wrong line: pick a different functional line near the real bug.
            neighbours = [n for n in code_lines if n != entry.line_number]
            claimed_line = min(
                neighbours, key=lambda n: (abs(n - entry.line_number), n)
            )
            claimed_buggy = source.line(claimed_line)
            claimed_fix = strip_comment(claimed_buggy)
        else:
            # Right line, wrong fix: keep the buggy line essentially unchanged.
            claimed_line = entry.line_number
            claimed_buggy = entry.buggy_line
            claimed_fix = entry.buggy_line
        return CotDraft(
            text=write_cot(entry, claimed_line, claimed_buggy, claimed_fix),
            claimed_line_number=claimed_line,
            claimed_buggy_line=claimed_buggy,
            claimed_fix=claimed_fix,
        )

    @staticmethod
    def validate(entry: SvaBugEntry, draft: CotDraft) -> bool:
        """Compare the CoT's conclusions with the golden solution (paper's script)."""
        right_line = draft.claimed_line_number == entry.line_number
        right_fix = lines_equivalent(draft.claimed_fix, entry.golden_line)
        return right_line and right_fix

    def annotate(self, entries: list[SvaBugEntry]) -> tuple[int, int, list[dict]]:
        """Generate + validate CoTs for every entry in place.

        Per-entry jobs fan out through :func:`repro.runtime.run_jobs`
        (entries carry all their own state and the drift RNG is derived per
        entry), and the drafts are applied back in entry order, so the
        annotations are byte-identical for any worker count.  With
        ``on_error="quarantine"``, entries whose CoT job fails keep
        ``cot=None``/``cot_valid=False`` and are reported in the skip list.

        Returns:
            (generated_count, valid_count, skipped_records)
        """
        config = self._config
        drafts = run_jobs(
            entries,
            _cot_job,
            workers=config.workers,
            context=config,
            on_error=config.on_error,
            timeout=config.job_timeout,
            max_attempts=config.max_attempts,
            fault_plan=self._fault_plan,
            tracer=self._tracer,
        )
        skipped: list[dict] = []
        if config.on_error == "quarantine":
            outcomes = drafts
            drafts = []
            for entry, outcome in zip(entries, outcomes):
                if outcome.ok:
                    drafts.append(outcome.result)
                else:
                    drafts.append(None)
                    skipped.append(
                        {"stage": "stage3", "name": entry.name, **outcome.failure.summary()}
                    )
        valid = 0
        generated = 0
        for entry, draft in zip(entries, drafts):
            if draft is None:  # quarantined above: entry stays un-annotated
                continue
            text, cot_valid = draft
            entry.cot = text
            entry.cot_valid = cot_valid
            generated += 1
            if cot_valid:
                valid += 1
        return generated, valid, skipped


def _cot_job(entry: SvaBugEntry, config: Stage3Config) -> tuple[str, bool]:
    """Worker function: one entry's CoT text and validation verdict."""
    generator = CotGenerator(config)
    draft = generator.generate(entry)
    return draft.text, generator.validate(entry, draft)


def run_stage3(
    entries: list[SvaBugEntry],
    config: Optional[Stage3Config] = None,
    fault_plan: Optional[FaultPlan] = None,
    tracer=None,
) -> tuple[int, int, list[dict]]:
    """Convenience wrapper: annotate ``entries`` with CoTs and return the counts."""
    return CotGenerator(config, fault_plan=fault_plan, tracer=tracer).annotate(entries)
