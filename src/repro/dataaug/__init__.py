"""The three-stage data-augmentation pipeline of Section II.

* Stage 1 (:mod:`repro.dataaug.stage1`): filtering, deduplication and syntax
  checking.  Non-compiling samples (plus their failure analysis and spec)
  become the Verilog-PT pretraining dataset.
* Stage 2 (:mod:`repro.dataaug.stage2`): SVA generation (template + mined),
  bug injection, and two-step validation with the compiler and the
  simulation/assertion checker.  Bug/SVA pairs that trigger assertion
  failures become SVA-Bug entries; bugs that compile but do not trigger any
  assertion become Verilog-Bug entries.
* Stage 3 (:mod:`repro.dataaug.stage3`): chain-of-thought generation and
  validation against the golden solution.

:mod:`repro.dataaug.pipeline` orchestrates the stages and produces the three
datasets plus the held-out machine-generated evaluation split (the 90/10
length-binned module-name split of the paper).
"""

from repro.dataaug.datasets import (
    AugmentedDatasets,
    DatasetStatistics,
    SvaBugEntry,
    VerilogBugEntry,
    VerilogPTEntry,
)
from repro.dataaug.pipeline import DataAugmentationPipeline, PipelineConfig
from repro.dataaug.prompts import format_question, format_answer

__all__ = [
    "AugmentedDatasets",
    "DatasetStatistics",
    "SvaBugEntry",
    "VerilogBugEntry",
    "VerilogPTEntry",
    "DataAugmentationPipeline",
    "PipelineConfig",
    "format_question",
    "format_answer",
]
