"""Question/answer text formatting for the training datasets (Fig. 2 datasets b/c).

The paper stores SVA-Bug entries as question/answer pairs:

    Question: There is a <Buggy SV> and will trigger assertions, <Logs>.
              The specification is <Spec>, please give me a solution
              ("step by step" when a validated CoT is available).
    Answer:   the buggy line, the corrected code, and optionally the CoT.

The repair model and the baselines consume the structured
:class:`~repro.dataaug.datasets.SvaBugEntry` directly, but the textual form
is what an LLM fine-tuning run would see, so it is produced faithfully here
(and exercised by the examples and tests).
"""

from __future__ import annotations

from repro.dataaug.datasets import SvaBugEntry


def format_question(entry: SvaBugEntry, step_by_step: bool = False) -> str:
    """The 'Question' text of one SVA-Bug entry."""
    suffix = " (step by step)" if step_by_step else ""
    return (
        "There is a buggy SystemVerilog design that will trigger assertions when simulated.\n"
        f"Buggy SystemVerilog:\n{entry.buggy_source}\n"
        f"Logs:\n{entry.logs}\n"
        f"The specification is:\n{entry.spec}\n"
        f"Please give me a solution{suffix}."
    )


def format_answer(entry: SvaBugEntry, include_cot: bool = True) -> str:
    """The 'Answer' text of one SVA-Bug entry."""
    lines = [
        f"Buggy line {entry.line_number}: {entry.buggy_line.strip()}",
        f"Corrected code: {entry.golden_line.strip()}",
    ]
    if include_cot and entry.cot_valid and entry.cot:
        lines.append("Reasoning:")
        lines.append(entry.cot)
    return "\n".join(lines)


def format_inference_prompt(spec: str, buggy_source: str, logs: str) -> str:
    """The inference-time prompt of Fig. 2 (III): spec + buggy SV + logs."""
    return (
        "There is a buggy SystemVerilog design that will trigger assertions when simulated.\n"
        f"Buggy SystemVerilog:\n{buggy_source}\n"
        f"Logs:\n{logs}\n"
        f"The specification is:\n{spec}\n"
        "Return a JSON object with the fields \"bug_line\", \"fixed_line\", "
        "\"line_number\" and \"explanation\"."
    )
