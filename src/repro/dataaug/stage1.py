"""Stage 1: filtering, deduplication and syntax checking.

Mirrors Section II Stage 1 of the paper:

1. drop samples without ``module``/``endmodule``,
2. drop samples with no functional logic (only declarations/initialisation),
3. drop duplicated code,
4. syntax-check everything with the compiler substitute; failing samples are
   routed into the Verilog-PT pretraining dataset together with their spec
   and an analysis of the compile failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.generator import Corpus, CorpusSample
from repro.corpus.corruptor import CorruptedSample
from repro.dataaug.datasets import VerilogPTEntry
from repro.hdl.lint import compile_source
from repro.hdl.source import normalize_line
from repro.runtime import FaultPlan, run_jobs


@dataclass
class Stage1Result:
    """Samples that survive to Stage 2, plus the Verilog-PT entries."""

    compiled: list[CorpusSample] = field(default_factory=list)
    verilog_pt: list[VerilogPTEntry] = field(default_factory=list)
    filtered_out: int = 0
    compile_failures: int = 0
    #: Samples whose check job was quarantined (``on_error="quarantine"``):
    #: excluded from every downstream split, surfaced in pipeline stats.
    skipped: list[dict] = field(default_factory=list)


def has_module_envelope(source: str) -> bool:
    """Filter criterion 1: the sample must contain ``module`` and ``endmodule``."""
    return "module" in source and "endmodule" in source


def has_functional_logic(source: str) -> bool:
    """Filter criterion 2: the sample must contain behavioural logic, not just
    declarations or initialisation."""
    lowered = source.lower()
    return ("always" in lowered) or ("assign" in lowered)


def content_fingerprint(source: str) -> str:
    """Normalised fingerprint used for duplicate elimination (criterion 3)."""
    lines = [normalize_line(line) for line in source.split("\n")]
    return "\n".join(line for line in lines if line)


def analyse_compile_failure(render: str) -> str:
    """Build the 'analysis' text for a Verilog-PT entry from compiler diagnostics."""
    diagnostics = [line for line in render.splitlines() if "error" in line]
    if not diagnostics:
        return "the code failed to compile for an unspecified reason"
    return "the compiler reported: " + "; ".join(diagnostics[:3])


def _check_sample_job(source: str) -> dict:
    """Worker function: the per-sample filter facts and compile verdict.

    Pure in the source text, so the checks fan out while the
    order-dependent parts of Stage 1 (deduplication, routing) stay in the
    serial fold below.  A later-deduplicated sample wastes one compile in
    a worker; it cannot change the output.
    """
    if not has_module_envelope(source) or not has_functional_logic(source):
        return {"filtered": True, "fingerprint": "", "compile_ok": False, "analysis": ""}
    compile_result = compile_source(source)
    return {
        "filtered": False,
        "fingerprint": content_fingerprint(source),
        "compile_ok": compile_result.ok,
        "analysis": (
            "" if compile_result.ok else analyse_compile_failure(compile_result.render())
        ),
    }


def run_stage1(
    corpus: Corpus,
    workers: int = 1,
    on_error: str = "raise",
    job_timeout: float | None = None,
    max_attempts: int = 1,
    fault_plan: FaultPlan | None = None,
    tracer=None,
) -> Stage1Result:
    """Run Stage 1 over a generated corpus.

    The per-sample work (filtering facts + the compile check, the stage's
    cost) fans out through :func:`repro.runtime.run_jobs`; deduplication and
    routing fold the results serially in corpus order, so the output is
    byte-identical for any worker count.  With ``on_error="quarantine"``, a
    sample whose check job fails is skipped (recorded in
    :attr:`Stage1Result.skipped`) instead of aborting the stage.
    """
    result = Stage1Result()
    seen: set[str] = set()

    considered: list[tuple[CorpusSample, str, CorruptedSample | None]] = [
        (sample, sample.source, None) for sample in corpus.samples
    ]
    considered.extend(
        (sample, corrupted.source, corrupted) for sample, corrupted in corpus.corrupted
    )
    checks = run_jobs(
        [source for _, source, _ in considered],
        _check_sample_job,
        workers=workers,
        on_error=on_error,
        timeout=job_timeout,
        max_attempts=max_attempts,
        fault_plan=fault_plan,
        tracer=tracer,
    )
    if on_error == "quarantine":
        quarantined = checks
        checks = []
        for (sample, _source, _corruption), outcome in zip(considered, quarantined):
            if outcome.ok:
                checks.append(outcome.result)
            else:
                checks.append(None)
                result.skipped.append(
                    {"stage": "stage1", "name": sample.name, **outcome.failure.summary()}
                )

    for (sample, source, corruption), check in zip(considered, checks):
        if check is None:  # quarantined above: the sample is simply skipped
            continue
        if check["filtered"]:
            # Truncated/garbled samples can lose their envelope entirely; they
            # still carry structural value, so keep them for pretraining when a
            # ground-truth corruption explanation exists.
            if corruption is not None:
                result.verilog_pt.append(
                    VerilogPTEntry(
                        name=sample.name,
                        source=source,
                        spec=sample.spec,
                        analysis=corruption.explanation,
                        corruption_kind=corruption.corruption_kind,
                    )
                )
                result.compile_failures += 1
            else:
                result.filtered_out += 1
            continue
        if check["fingerprint"] in seen:
            result.filtered_out += 1
            continue
        seen.add(check["fingerprint"])
        if check["compile_ok"]:
            if corruption is None:
                result.compiled.append(sample)
            else:
                # A corruption that still compiles is not a useful PT entry.
                result.filtered_out += 1
            continue
        result.compile_failures += 1
        analysis = corruption.explanation if corruption is not None else check["analysis"]
        result.verilog_pt.append(
            VerilogPTEntry(
                name=sample.name,
                source=source,
                spec=sample.spec,
                analysis=analysis,
                corruption_kind=corruption.corruption_kind if corruption else "organic",
            )
        )
    return result
