"""Dataset containers produced by the augmentation pipeline."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.corpus.metadata import length_bin
from repro.hdl.source import count_code_lines


@dataclass
class VerilogPTEntry:
    """One Verilog-PT (pretraining) entry: code that failed to compile + analysis."""

    name: str
    source: str
    spec: str
    analysis: str
    corruption_kind: str = ""

    def text(self) -> str:
        """The free-text form used for language-model pretraining."""
        return (
            f"The following Verilog code failed to compile.\n"
            f"Specification:\n{self.spec}\n"
            f"Code:\n{self.source}\n"
            f"Analysis of the failure: {self.analysis}\n"
        )


@dataclass
class VerilogBugEntry:
    """One Verilog-Bug entry: a bug that compiles but triggers no assertion."""

    name: str
    spec: str
    buggy_source: str
    golden_line: str
    buggy_line: str
    line_number: int
    edit_kind: str
    is_conditional: bool
    description: str = ""

    def question(self) -> str:
        return (
            "There is a Verilog design that contains a bug.\n"
            f"Specification:\n{self.spec}\n"
            f"Buggy Verilog:\n{self.buggy_source}\n"
            "Please give me a solution."
        )

    def answer(self) -> str:
        return f"Buggy line {self.line_number}: {self.buggy_line.strip()}\nCorrected code: {self.golden_line.strip()}"

    def to_dict(self) -> dict:
        """JSON-safe form (every field is a JSON-native scalar)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "VerilogBugEntry":
        """Inverse of :meth:`to_dict`."""
        return cls(**payload)


@dataclass
class SvaBugEntry:
    """One SVA-Bug entry: a bug that makes at least one assertion fail.

    This is the central record of the whole reproduction: the same structure
    backs the training data, the challenging-case mining for DPO, and the
    SVA-Eval benchmark cases.
    """

    name: str
    design_name: str
    family: str
    origin: str  # "machine" | "human"
    spec: str
    golden_source: str  # golden design *with* the validated SVAs inserted
    buggy_source: str  # buggy design *with* the same SVAs inserted
    logs: str
    failing_assertions: list[str]
    line_number: int
    golden_line: str
    buggy_line: str
    edit_kind: str
    is_conditional: bool
    is_direct: bool
    mutation_name: str = ""
    description: str = ""
    cot: Optional[str] = None
    cot_valid: bool = False
    stimulus_seed: int = 0
    stimulus_cycles: int = 48

    @property
    def code_lines(self) -> int:
        return count_code_lines(self.buggy_source)

    @property
    def length_bin(self) -> str:
        return length_bin(self.code_lines)

    @property
    def bug_type_labels(self) -> list[str]:
        labels = ["Direct" if self.is_direct else "Indirect"]
        edit = {"var": "Var", "value": "Value", "op": "Op"}.get(self.edit_kind)
        if edit:
            labels.append(edit)
        labels.append("Cond" if self.is_conditional else "Non_cond")
        return labels

    def to_dict(self) -> dict:
        """JSON-safe form, used to persist the held-out evaluation split.

        Every field is a JSON-native scalar or list, so ``asdict`` is exact
        and automatically stays in sync with the dataclass definition.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "SvaBugEntry":
        """Inverse of :meth:`to_dict` (round-trips a persisted split)."""
        return cls(**payload)


@dataclass
class DatasetStatistics:
    """Aggregate statistics reported by the pipeline (paper Section II numbers)."""

    corpus_samples: int = 0
    filtered_out: int = 0
    compile_failures: int = 0
    verilog_pt_entries: int = 0
    candidate_svas: int = 0
    validated_svas: int = 0
    injected_bugs: int = 0
    bugs_rejected_not_compiling: int = 0
    sva_bug_entries: int = 0
    verilog_bug_entries: int = 0
    cot_generated: int = 0
    cot_valid: int = 0
    #: Quarantined-job records (``on_error="quarantine"`` only): one JSON-safe
    #: dict per skipped job with ``stage``/``name`` and the failure summary.
    #: Empty in the default ``on_error="raise"`` mode.
    skipped_jobs: list[dict] = field(default_factory=list)

    @property
    def cot_validity_rate(self) -> float:
        if not self.cot_generated:
            return 0.0
        return self.cot_valid / self.cot_generated

    @property
    def sva_yield(self) -> float:
        if not self.candidate_svas:
            return 0.0
        return self.validated_svas / self.candidate_svas


@dataclass
class AugmentedDatasets:
    """Everything the pipeline produces."""

    verilog_pt: list[VerilogPTEntry] = field(default_factory=list)
    verilog_bug: list[VerilogBugEntry] = field(default_factory=list)
    sva_bug_train: list[SvaBugEntry] = field(default_factory=list)
    sva_eval_machine: list[SvaBugEntry] = field(default_factory=list)
    statistics: DatasetStatistics = field(default_factory=DatasetStatistics)

    @property
    def all_sva_entries(self) -> list[SvaBugEntry]:
        return self.sva_bug_train + self.sva_eval_machine

    def distribution(self, entries: Optional[list[SvaBugEntry]] = None) -> dict[str, dict[str, int]]:
        """Counts per length bin and per bug-type label (the rows of Table II)."""
        entries = entries if entries is not None else self.sva_bug_train
        by_length: dict[str, int] = {}
        by_type: dict[str, int] = {}
        for entry in entries:
            by_length[entry.length_bin] = by_length.get(entry.length_bin, 0) + 1
            for label in entry.bug_type_labels:
                by_type[label] = by_type.get(label, 0) + 1
        return {"length": by_length, "bug_type": by_type}
