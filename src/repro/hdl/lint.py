"""Semantic checking: the project's substitute for the Icarus Verilog compiler.

:func:`compile_source` runs the full front end (lex, parse, elaborate) and a
set of semantic lint checks, returning a :class:`CompileResult` with a pass /
fail verdict plus diagnostics.  The data-augmentation pipeline (Stage 1 and
Stage 2 of the paper) uses this exactly the way the paper uses ``iverilog``:
to reject syntactically broken corpus entries and to discard injected bugs
that merely break compilation instead of triggering an assertion.

The individual semantic checks live in :mod:`repro.analyze.passes` as
registered passes with stable ids; :func:`lint_design` runs exactly the
``lint``-tier subset, so every diagnostic a rejected corpus entry reports
names the pass that fired (its ``code``) and the advisory analysis passes
can never change what compiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hdl import ast
from repro.hdl.elaborate import ElaboratedDesign, elaborate
from repro.hdl.errors import Diagnostic, DiagnosticSink, HdlError, Severity
from repro.hdl.parser import parse_source

__all__ = [
    "KNOWN_SYSTEM_FUNCTIONS",
    "KNOWN_SYSTEM_TASKS",
    "CompileResult",
    "compile_source",
    "lint_design",
    "syntax_ok",
]

#: System functions the simulator and checker understand.
KNOWN_SYSTEM_FUNCTIONS: frozenset[str] = frozenset(
    {
        "$past",
        "$rose",
        "$fell",
        "$stable",
        "$changed",
        "$onehot",
        "$onehot0",
        "$countones",
        "$clog2",
        "$signed",
        "$unsigned",
    }
)

#: System tasks allowed in procedural code (ignored by the simulator).
KNOWN_SYSTEM_TASKS: frozenset[str] = frozenset(
    {"$display", "$error", "$warning", "$info", "$fatal", "$finish", "$stop", "$monitor"}
)


@dataclass
class CompileResult:
    """Outcome of compiling one Verilog source text."""

    ok: bool
    diagnostics: list[Diagnostic] = field(default_factory=list)
    unit: Optional[ast.SourceUnit] = None
    design: Optional[ElaboratedDesign] = None

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def render(self) -> str:
        """Render all diagnostics as a compiler log."""
        status = "compilation successful" if self.ok else "compilation failed"
        body = "\n".join(d.render() for d in self.diagnostics)
        return f"{status}\n{body}" if body else status


def compile_source(text: str, top: Optional[str] = None) -> CompileResult:
    """Parse, elaborate and lint ``text``; never raises for bad input."""
    sink = DiagnosticSink()
    try:
        unit = parse_source(text)
    except HdlError as exc:
        sink.diagnostics.append(exc.to_diagnostic())
        return CompileResult(ok=False, diagnostics=sink.diagnostics)
    try:
        design = elaborate(unit, top=top)
    except HdlError as exc:
        sink.diagnostics.append(exc.to_diagnostic())
        return CompileResult(ok=False, diagnostics=sink.diagnostics, unit=unit)
    lint_design(design, sink)
    ok = not sink.has_errors
    return CompileResult(ok=ok, diagnostics=sink.diagnostics, unit=unit, design=design)


def lint_design(design: ElaboratedDesign, sink: Optional[DiagnosticSink] = None) -> DiagnosticSink:
    """Run the compile-gate semantic passes, appending to ``sink``."""
    # Imported lazily: repro.hdl initialises before repro.analyze can.
    from repro.analyze.passes import lint_passes, run_passes

    return run_passes(design, passes=lint_passes(), sink=sink)


def syntax_ok(text: str) -> bool:
    """Fast check used by Stage 1 of the pipeline: does the source parse at all?"""
    try:
        parse_source(text)
    except HdlError:
        return False
    return True
