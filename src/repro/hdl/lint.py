"""Semantic checking: the project's substitute for the Icarus Verilog compiler.

:func:`compile_source` runs the full front end (lex, parse, elaborate) and a
set of semantic lint checks, returning a :class:`CompileResult` with a pass /
fail verdict plus diagnostics.  The data-augmentation pipeline (Stage 1 and
Stage 2 of the paper) uses this exactly the way the paper uses ``iverilog``:
to reject syntactically broken corpus entries and to discard injected bugs
that merely break compilation instead of triggering an assertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hdl import ast
from repro.hdl.elaborate import ElaboratedDesign, elaborate
from repro.hdl.errors import DiagnosticSink, Diagnostic, HdlError, Severity
from repro.hdl.parser import parse_source

#: System functions the simulator and checker understand.
KNOWN_SYSTEM_FUNCTIONS: frozenset[str] = frozenset(
    {
        "$past",
        "$rose",
        "$fell",
        "$stable",
        "$changed",
        "$onehot",
        "$onehot0",
        "$countones",
        "$clog2",
        "$signed",
        "$unsigned",
    }
)

#: System tasks allowed in procedural code (ignored by the simulator).
KNOWN_SYSTEM_TASKS: frozenset[str] = frozenset(
    {"$display", "$error", "$warning", "$info", "$fatal", "$finish", "$stop", "$monitor"}
)


@dataclass
class CompileResult:
    """Outcome of compiling one Verilog source text."""

    ok: bool
    diagnostics: list[Diagnostic] = field(default_factory=list)
    unit: Optional[ast.SourceUnit] = None
    design: Optional[ElaboratedDesign] = None

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def render(self) -> str:
        """Render all diagnostics as a compiler log."""
        status = "compilation successful" if self.ok else "compilation failed"
        body = "\n".join(d.render() for d in self.diagnostics)
        return f"{status}\n{body}" if body else status


def compile_source(text: str, top: Optional[str] = None) -> CompileResult:
    """Parse, elaborate and lint ``text``; never raises for bad input."""
    sink = DiagnosticSink()
    try:
        unit = parse_source(text)
    except HdlError as exc:
        sink.diagnostics.append(exc.to_diagnostic())
        return CompileResult(ok=False, diagnostics=sink.diagnostics)
    try:
        design = elaborate(unit, top=top)
    except HdlError as exc:
        sink.diagnostics.append(exc.to_diagnostic())
        return CompileResult(ok=False, diagnostics=sink.diagnostics, unit=unit)
    lint_design(design, sink)
    ok = not sink.has_errors
    return CompileResult(ok=ok, diagnostics=sink.diagnostics, unit=unit, design=design)


def lint_design(design: ElaboratedDesign, sink: Optional[DiagnosticSink] = None) -> DiagnosticSink:
    """Run semantic checks over an elaborated design, appending to ``sink``."""
    sink = sink if sink is not None else DiagnosticSink()
    _check_undeclared_uses(design, sink)
    _check_input_drivers(design, sink)
    _check_multiple_drivers(design, sink)
    _check_undriven_signals(design, sink)
    _check_system_functions(design, sink)
    _check_assignment_styles(design, sink)
    return sink


# --------------------------------------------------------------------------- #
# individual checks
# --------------------------------------------------------------------------- #


def _iter_all_expressions(design: ElaboratedDesign):
    for assign in design.continuous_assigns:
        yield assign.line, assign.target
        yield assign.line, assign.value
    for block in design.comb_blocks + design.seq_blocks:
        for statement in block.body.walk():
            if isinstance(statement, ast.Assign):
                yield statement.line, statement.target
                yield statement.line, statement.value
            elif isinstance(statement, ast.If):
                yield statement.line, statement.condition
            elif isinstance(statement, ast.Case):
                yield statement.line, statement.subject
                for item in statement.items:
                    for label in item.labels:
                        yield statement.line, label
    for assertion in design.assertions:
        sequences = [assertion.body.consequent]
        if assertion.body.antecedent is not None:
            sequences.append(assertion.body.antecedent)
        for sequence in sequences:
            for element in sequence.elements:
                yield assertion.line, element.expr
        if assertion.disable_iff is not None:
            yield assertion.line, assertion.disable_iff


def _check_undeclared_uses(design: ElaboratedDesign, sink: DiagnosticSink) -> None:
    declared = set(design.signals) | set(design.parameters)
    for line, expr in _iter_all_expressions(design):
        for name in expr.identifiers():
            if name not in declared:
                sink.error(
                    f"use of undeclared signal '{name}'",
                    line=line,
                    code="undeclared-signal",
                )


def _check_input_drivers(design: ElaboratedDesign, sink: DiagnosticSink) -> None:
    for assign in design.continuous_assigns:
        for target in ast._target_names(assign.target):
            signal = design.signals.get(target)
            if signal is not None and signal.is_input:
                sink.error(
                    f"input port '{target}' cannot be driven inside the module",
                    line=assign.line,
                    code="input-driven",
                )
    for block in design.comb_blocks + design.seq_blocks:
        for node in block.body.walk():
            if isinstance(node, ast.Assign):
                for target in ast._target_names(node.target):
                    signal = design.signals.get(target)
                    if signal is not None and signal.is_input:
                        sink.error(
                            f"input port '{target}' cannot be driven inside the module",
                            line=node.line,
                            code="input-driven",
                        )


def _check_multiple_drivers(design: ElaboratedDesign, sink: DiagnosticSink) -> None:
    continuous_targets: dict[str, int] = {}
    for assign in design.continuous_assigns:
        for target in ast._target_names(assign.target):
            continuous_targets[target] = continuous_targets.get(target, 0) + 1
    procedural_targets: set[str] = set()
    for block in design.comb_blocks + design.seq_blocks:
        procedural_targets.update(ast.assignment_targets(block.body))
    for name, count in continuous_targets.items():
        signal = design.signals.get(name)
        if signal is None:
            continue
        if count > 1 and signal.width == 1:
            sink.warning(
                f"signal '{name}' has multiple continuous drivers",
                code="multiple-drivers",
            )
        if name in procedural_targets:
            sink.error(
                f"signal '{name}' is driven both continuously and procedurally",
                code="mixed-drivers",
            )


def _check_undriven_signals(design: ElaboratedDesign, sink: DiagnosticSink) -> None:
    driven: set[str] = set(design.driver_lines)
    for signal in design.signals.values():
        if signal.is_input:
            continue
        if signal.name not in driven:
            read_somewhere = any(
                signal.name in expr.identifiers() for _, expr in _iter_all_expressions(design)
            )
            severity = "undriven-used" if read_somewhere else "undriven-unused"
            sink.warning(
                f"signal '{signal.name}' is never assigned",
                line=signal.line,
                code=severity,
            )


def _check_system_functions(design: ElaboratedDesign, sink: DiagnosticSink) -> None:
    for line, expr in _iter_all_expressions(design):
        for node in expr.walk():
            if isinstance(node, ast.SystemCall) and node.name not in KNOWN_SYSTEM_FUNCTIONS:
                sink.error(
                    f"unsupported system function '{node.name}'",
                    line=line,
                    code="unknown-system-function",
                )


def _check_assignment_styles(design: ElaboratedDesign, sink: DiagnosticSink) -> None:
    for block in design.seq_blocks:
        for node in block.body.walk():
            if isinstance(node, ast.Assign) and node.blocking:
                sink.warning(
                    "blocking assignment inside clocked always block",
                    line=node.line,
                    code="blocking-in-seq",
                )
    for block in design.comb_blocks:
        for node in block.body.walk():
            if isinstance(node, ast.Assign) and not node.blocking:
                sink.warning(
                    "non-blocking assignment inside combinational always block",
                    line=node.line,
                    code="nonblocking-in-comb",
                )


def syntax_ok(text: str) -> bool:
    """Fast check used by Stage 1 of the pipeline: does the source parse at all?"""
    try:
        parse_source(text)
    except HdlError:
        return False
    return True
