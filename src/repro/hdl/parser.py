"""Recursive-descent parser for the Verilog-2001 / SVA subset.

The grammar covers exactly what the synthetic corpus generator and the
hand-written RTLLM-style designs use: ANSI and non-ANSI module headers,
parameters, net/reg declarations, continuous assignments, clocked and
combinational ``always`` blocks, ``if``/``case``/``for`` statements,
module instantiation, named and inline concurrent SVA assertions.
Anything outside that subset produces a :class:`~repro.hdl.errors.ParseError`
with a precise location, which is what the pipeline's compile stage needs.
"""

from __future__ import annotations

from typing import Optional

from repro.hdl import ast
from repro.hdl.errors import ParseError
from repro.hdl.lexer import Token, TokenKind, tokenize

#: Binary operator precedence levels (higher binds tighter).
_BINARY_PRECEDENCE: dict[str, int] = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "~^": 4,
    "^~": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "===": 6,
    "!==": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "<<<": 8,
    ">>>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
    "**": 11,
}

_UNARY_OPERATORS = frozenset({"~", "!", "-", "+", "&", "|", "^"})


class Parser:
    """Parses a token stream into a :class:`repro.hdl.ast.SourceUnit`."""

    def __init__(self, tokens: list[Token], text: str = ""):
        self._tokens = tokens
        self._pos = 0
        self._text = text

    # ------------------------------------------------------------------ #
    # token-stream helpers
    # ------------------------------------------------------------------ #

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if self._pos < len(self._tokens) - 1:
            self._pos += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self._current
        return ParseError(message, token.line, token.column, "syntax-error")

    def _expect_punct(self, punct: str) -> Token:
        if not self._current.is_punct(punct):
            raise self._error(f"expected '{punct}', found '{self._current.value or 'EOF'}'")
        return self._advance()

    def _expect_op(self, op: str) -> Token:
        if not self._current.is_op(op):
            raise self._error(f"expected '{op}', found '{self._current.value or 'EOF'}'")
        return self._advance()

    def _expect_keyword(self, *names: str) -> Token:
        if not self._current.is_keyword(*names):
            expected = " or ".join(f"'{n}'" for n in names)
            raise self._error(f"expected {expected}, found '{self._current.value or 'EOF'}'")
        return self._advance()

    def _expect_ident(self) -> Token:
        if self._current.kind is not TokenKind.IDENT:
            raise self._error(f"expected identifier, found '{self._current.value or 'EOF'}'")
        return self._advance()

    def _accept_punct(self, punct: str) -> bool:
        if self._current.is_punct(punct):
            self._advance()
            return True
        return False

    def _accept_op(self, op: str) -> bool:
        if self._current.is_op(op):
            self._advance()
            return True
        return False

    def _accept_keyword(self, *names: str) -> bool:
        if self._current.is_keyword(*names):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------ #
    # top level
    # ------------------------------------------------------------------ #

    def parse(self) -> ast.SourceUnit:
        """Parse the full token stream into a source unit."""
        unit = ast.SourceUnit(text=self._text)
        while self._current.kind is not TokenKind.EOF:
            if self._current.is_keyword("module"):
                unit.modules.append(self._parse_module())
            else:
                raise self._error(
                    f"expected 'module' at top level, found '{self._current.value}'"
                )
        if not unit.modules:
            raise ParseError("source contains no module", 1, 1, "no-module")
        return unit

    def _parse_module(self) -> ast.Module:
        start = self._expect_keyword("module")
        name = self._expect_ident().value
        module = ast.Module(name=name, line=start.line)

        if self._current.is_op("#"):
            self._advance()
            self._parse_parameter_port_list(module)

        if self._accept_punct("("):
            self._parse_port_list(module)
            self._expect_punct(")")
        self._expect_punct(";")

        while not self._current.is_keyword("endmodule"):
            if self._current.kind is TokenKind.EOF:
                raise self._error("unexpected end of file: missing 'endmodule'")
            self._parse_module_item(module)
        self._expect_keyword("endmodule")
        return module

    def _parse_parameter_port_list(self, module: ast.Module) -> None:
        self._expect_punct("(")
        while True:
            self._expect_keyword("parameter")
            decl = self._parse_single_parameter(local=False)
            module.parameters.append(decl)
            if not self._accept_punct(","):
                break
        self._expect_punct(")")

    def _parse_single_parameter(self, local: bool) -> ast.ParamDecl:
        rng = None
        if self._current.is_punct("["):
            rng = self._parse_range()
        token = self._expect_ident()
        self._expect_op("=")
        value = self._parse_expression()
        return ast.ParamDecl(name=token.value, value=value, local=local, range=rng, line=token.line)

    def _parse_port_list(self, module: ast.Module) -> None:
        if self._current.is_punct(")"):
            return
        while True:
            if self._current.is_keyword("input", "output", "inout"):
                module.ports.append(self._parse_ansi_port())
            elif self._current.kind is TokenKind.IDENT:
                # Non-ANSI style: just a name; direction comes from body decls.
                token = self._advance()
                module.ports.append(
                    ast.Port(direction="", net_type="wire", name=token.value, line=token.line)
                )
            else:
                raise self._error("expected port declaration")
            if not self._accept_punct(","):
                break

    def _parse_ansi_port(self) -> ast.Port:
        direction_token = self._advance()
        direction = direction_token.value
        net_type = "wire"
        signed = False
        if self._current.is_keyword("wire", "reg", "logic"):
            net_type = self._advance().value
        if self._current.is_keyword("signed"):
            signed = True
            self._advance()
        rng = None
        if self._current.is_punct("["):
            rng = self._parse_range()
        name = self._expect_ident().value
        return ast.Port(
            direction=direction,
            net_type=net_type,
            name=name,
            range=rng,
            signed=signed,
            line=direction_token.line,
        )

    def _parse_range(self) -> ast.Range:
        self._expect_punct("[")
        msb = self._parse_expression()
        self._expect_op(":")
        lsb = self._parse_expression()
        self._expect_punct("]")
        return ast.Range(msb=msb, lsb=lsb)

    # ------------------------------------------------------------------ #
    # module items
    # ------------------------------------------------------------------ #

    def _parse_module_item(self, module: ast.Module) -> None:
        token = self._current
        if token.is_keyword("input", "output", "inout"):
            self._parse_body_port_decl(module)
        elif token.is_keyword("wire", "reg", "logic", "integer", "genvar"):
            module.items.append(self._parse_net_decl())
        elif token.is_keyword("parameter", "localparam"):
            local = token.value == "localparam"
            self._advance()
            decl = self._parse_single_parameter(local=local)
            self._expect_punct(";")
            if local:
                module.items.append(decl)
            else:
                module.parameters.append(decl)
        elif token.is_keyword("assign"):
            module.items.append(self._parse_continuous_assign())
        elif token.is_keyword("always", "always_ff", "always_comb"):
            module.items.append(self._parse_always())
        elif token.is_keyword("initial"):
            self._advance()
            body = self._parse_statement()
            module.items.append(ast.InitialBlock(body=body, line=token.line))
        elif token.is_keyword("property"):
            module.items.append(self._parse_property_decl())
        elif token.is_keyword("assert", "assume", "cover"):
            module.items.append(self._parse_concurrent_assertion(label=""))
        elif token.is_keyword("generate", "endgenerate", "function", "task", "for"):
            raise self._error(f"construct '{token.value}' is not supported at module scope")
        elif token.kind is TokenKind.IDENT:
            self._parse_labeled_or_instantiation(module)
        else:
            raise self._error(f"unexpected token '{token.value}' in module body")

    def _parse_body_port_decl(self, module: ast.Module) -> None:
        """Non-ANSI body declaration: ``input [3:0] a, b;`` updates header ports."""
        direction_token = self._advance()
        direction = direction_token.value
        net_type = "wire"
        if self._current.is_keyword("wire", "reg", "logic"):
            net_type = self._advance().value
        signed = False
        if self._current.is_keyword("signed"):
            signed = True
            self._advance()
        rng = None
        if self._current.is_punct("["):
            rng = self._parse_range()
        while True:
            name = self._expect_ident().value
            port = module_port_by_name(module, name)
            if port is None:
                module.ports.append(
                    ast.Port(
                        direction=direction,
                        net_type=net_type,
                        name=name,
                        range=rng,
                        signed=signed,
                        line=direction_token.line,
                    )
                )
            else:
                port.direction = direction
                port.net_type = net_type
                port.range = rng
                port.signed = signed
            if not self._accept_punct(","):
                break
        self._expect_punct(";")

    def _parse_net_decl(self) -> ast.NetDecl:
        kind_token = self._advance()
        kind = kind_token.value
        signed = False
        if self._current.is_keyword("signed"):
            signed = True
            self._advance()
        rng = None
        if self._current.is_punct("["):
            rng = self._parse_range()
        names: list[str] = []
        initial: Optional[ast.Expression] = None
        while True:
            names.append(self._expect_ident().value)
            if self._current.is_op("="):
                self._advance()
                initial = self._parse_expression()
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return ast.NetDecl(
            kind=kind,
            names=names,
            range=rng,
            signed=signed,
            initial=initial,
            line=kind_token.line,
        )

    def _parse_continuous_assign(self) -> ast.ContinuousAssign:
        token = self._expect_keyword("assign")
        target = self._parse_lvalue()
        self._expect_op("=")
        value = self._parse_expression()
        self._expect_punct(";")
        return ast.ContinuousAssign(target=target, value=value, line=token.line)

    def _parse_always(self) -> ast.AlwaysBlock:
        keyword_token = self._advance()
        keyword = keyword_token.value
        sensitivity: list[ast.SensitivityItem] = []
        star = False
        if keyword == "always_comb":
            star = True
        else:
            self._expect_punct("@")
            if self._accept_op("*"):
                star = True
            else:
                self._expect_punct("(")
                if self._accept_op("*"):
                    star = True
                else:
                    sensitivity = self._parse_sensitivity_list()
                self._expect_punct(")")
        body = self._parse_statement()
        return ast.AlwaysBlock(
            sensitivity=sensitivity,
            star=star,
            body=body,
            keyword=keyword,
            line=keyword_token.line,
        )

    def _parse_sensitivity_list(self) -> list[ast.SensitivityItem]:
        items: list[ast.SensitivityItem] = []
        while True:
            edge: Optional[str] = None
            if self._current.is_keyword("posedge", "negedge"):
                edge = self._advance().value
            name = self._expect_ident().value
            items.append(ast.SensitivityItem(edge=edge, signal=name))
            if self._accept_keyword("or") or self._accept_punct(","):
                continue
            break
        return items

    def _parse_labeled_or_instantiation(self, module: ast.Module) -> None:
        """Disambiguate ``label: assert property`` from a module instantiation."""
        ident_token = self._current
        nxt = self._peek(1)
        if nxt.is_op(":"):
            self._advance()
            self._advance()
            if self._current.is_keyword("assert", "assume", "cover"):
                module.items.append(self._parse_concurrent_assertion(label=ident_token.value))
                return
            raise self._error("only assertion statements may be labelled at module scope")
        if nxt.kind is TokenKind.IDENT or nxt.is_op("#"):
            module.items.append(self._parse_instantiation())
            return
        raise self._error(f"unexpected identifier '{ident_token.value}' in module body")

    def _parse_instantiation(self) -> ast.Instantiation:
        module_token = self._expect_ident()
        parameter_overrides: dict[str, ast.Expression] = {}
        if self._accept_op("#"):
            self._expect_punct("(")
            while True:
                self._expect_punct(".")
                pname = self._expect_ident().value
                self._expect_punct("(")
                parameter_overrides[pname] = self._parse_expression()
                self._expect_punct(")")
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
        instance_name = self._expect_ident().value
        self._expect_punct("(")
        connections: list[ast.PortConnection] = []
        if not self._current.is_punct(")"):
            while True:
                self._expect_punct(".")
                port = self._expect_ident().value
                self._expect_punct("(")
                expr: Optional[ast.Expression] = None
                if not self._current.is_punct(")"):
                    expr = self._parse_expression()
                self._expect_punct(")")
                connections.append(ast.PortConnection(port=port, expr=expr))
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.Instantiation(
            module_name=module_token.value,
            instance_name=instance_name,
            connections=connections,
            parameter_overrides=parameter_overrides,
            line=module_token.line,
        )

    # ------------------------------------------------------------------ #
    # SVA properties and assertions
    # ------------------------------------------------------------------ #

    def _parse_property_decl(self) -> ast.PropertyDecl:
        token = self._expect_keyword("property")
        name = self._expect_ident().value
        self._expect_punct(";")
        clock, disable_iff, body = self._parse_property_spec()
        self._expect_punct(";")
        self._expect_keyword("endproperty")
        return ast.PropertyDecl(
            name=name, clock=clock, disable_iff=disable_iff, body=body, line=token.line
        )

    def _parse_property_spec(
        self,
    ) -> tuple[Optional[ast.ClockEvent], Optional[ast.Expression], ast.SvaProperty]:
        clock: Optional[ast.ClockEvent] = None
        disable_iff: Optional[ast.Expression] = None
        if self._current.is_punct("@"):
            self._advance()
            self._expect_punct("(")
            edge = self._expect_keyword("posedge", "negedge").value
            signal = self._expect_ident().value
            self._expect_punct(")")
            clock = ast.ClockEvent(edge=edge, signal=signal)
        if self._current.is_keyword("disable"):
            self._advance()
            self._expect_keyword("iff")
            self._expect_punct("(")
            disable_iff = self._parse_expression()
            self._expect_punct(")")
        body = self._parse_property_body()
        return clock, disable_iff, body

    def _parse_property_body(self) -> ast.SvaProperty:
        first = self._parse_sva_sequence()
        if self._current.is_op("|->", "|=>"):
            overlapping = self._current.value == "|->"
            self._advance()
            consequent = self._parse_sva_sequence()
            return ast.SvaProperty(antecedent=first, consequent=consequent, overlapping=overlapping)
        return ast.SvaProperty(antecedent=None, consequent=first, overlapping=True)

    def _parse_sva_sequence(self) -> ast.SvaSequence:
        elements: list[ast.SequenceElement] = []
        delay = 0
        if self._current.is_op("##"):
            self._advance()
            delay = self._parse_delay_count()
        elements.append(ast.SequenceElement(delay=delay, expr=self._parse_expression()))
        while self._current.is_op("##"):
            self._advance()
            delay = self._parse_delay_count()
            elements.append(ast.SequenceElement(delay=delay, expr=self._parse_expression()))
        return ast.SvaSequence(elements=elements)

    def _parse_delay_count(self) -> int:
        if self._current.kind is not TokenKind.NUMBER:
            raise self._error("expected a constant delay after '##'")
        token = self._advance()
        try:
            return int(token.value)
        except ValueError as exc:
            raise self._error(f"invalid delay '{token.value}'", token) from exc

    def _parse_concurrent_assertion(self, label: str) -> ast.ConcurrentAssertion:
        kind_token = self._advance()  # assert / assume / cover
        kind = kind_token.value
        self._expect_keyword("property")
        self._expect_punct("(")
        property_name: Optional[str] = None
        inline: Optional[ast.PropertyDecl] = None
        if (
            self._current.kind is TokenKind.IDENT
            and self._peek(1).is_punct(")")
        ):
            property_name = self._advance().value
        else:
            clock, disable_iff, body = self._parse_property_spec()
            inline = ast.PropertyDecl(
                name=f"__inline_{label or kind}_{kind_token.line}",
                clock=clock,
                disable_iff=disable_iff,
                body=body,
                line=kind_token.line,
            )
        self._expect_punct(")")
        error_message = ""
        if self._current.is_keyword("else"):
            self._advance()
            if self._current.kind is TokenKind.SYSTEM_IDENT:
                self._advance()
                self._expect_punct("(")
                if self._current.kind is TokenKind.STRING:
                    error_message = self._advance().value
                while not self._current.is_punct(")"):
                    if self._current.kind is TokenKind.EOF:
                        raise self._error("unterminated assertion action block")
                    self._advance()
                self._expect_punct(")")
            else:
                raise self._error("expected system task after 'else' in assertion")
        self._expect_punct(";")
        return ast.ConcurrentAssertion(
            label=label,
            property_name=property_name,
            inline=inline,
            kind=kind,
            error_message=error_message,
            line=kind_token.line,
        )

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #

    def _parse_statement(self) -> ast.Statement:
        token = self._current
        if token.is_keyword("begin"):
            return self._parse_block()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("case", "casez", "casex"):
            return self._parse_case()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.kind is TokenKind.SYSTEM_IDENT:
            return self._parse_system_task()
        if token.is_punct(";"):
            self._advance()
            return ast.NullStatement(line=token.line)
        if token.kind is TokenKind.IDENT or token.is_punct("{"):
            return self._parse_assignment()
        raise self._error(f"unexpected token '{token.value}' in statement")

    def _parse_block(self) -> ast.Block:
        self._expect_keyword("begin")
        name: Optional[str] = None
        if self._accept_op(":"):
            name = self._expect_ident().value
        statements: list[ast.Statement] = []
        while not self._current.is_keyword("end"):
            if self._current.kind is TokenKind.EOF:
                raise self._error("unexpected end of file: missing 'end'")
            statements.append(self._parse_statement())
        self._expect_keyword("end")
        return ast.Block(statements=statements, name=name)

    def _parse_if(self) -> ast.If:
        token = self._expect_keyword("if")
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        then_branch = self._parse_statement()
        else_branch: Optional[ast.Statement] = None
        if self._current.is_keyword("else"):
            self._advance()
            else_branch = self._parse_statement()
        return ast.If(
            condition=condition,
            then_branch=then_branch,
            else_branch=else_branch,
            line=token.line,
        )

    def _parse_case(self) -> ast.Case:
        token = self._advance()
        variant = token.value
        self._expect_punct("(")
        subject = self._parse_expression()
        self._expect_punct(")")
        items: list[ast.CaseItem] = []
        while not self._current.is_keyword("endcase"):
            if self._current.kind is TokenKind.EOF:
                raise self._error("unexpected end of file: missing 'endcase'")
            if self._current.is_keyword("default"):
                self._advance()
                self._accept_op(":")
                body = self._parse_statement()
                items.append(ast.CaseItem(labels=[], body=body))
                continue
            labels = [self._parse_expression()]
            while self._accept_punct(","):
                labels.append(self._parse_expression())
            self._expect_op(":")
            body = self._parse_statement()
            items.append(ast.CaseItem(labels=labels, body=body))
        self._expect_keyword("endcase")
        return ast.Case(subject=subject, items=items, variant=variant, line=token.line)

    def _parse_for(self) -> ast.For:
        token = self._expect_keyword("for")
        self._expect_punct("(")
        init_var = self._expect_ident().value
        self._expect_op("=")
        init_value = self._parse_expression()
        self._expect_punct(";")
        condition = self._parse_expression()
        self._expect_punct(";")
        step_var = self._expect_ident().value
        self._expect_op("=")
        step_value = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.For(
            init_var=init_var,
            init_value=init_value,
            condition=condition,
            step_var=step_var,
            step_value=step_value,
            body=body,
            line=token.line,
        )

    def _parse_system_task(self) -> ast.SystemTaskCall:
        token = self._advance()
        args: list[ast.Expression] = []
        if self._accept_punct("("):
            if not self._current.is_punct(")"):
                while True:
                    if self._current.kind is TokenKind.STRING:
                        string_token = self._advance()
                        args.append(
                            ast.Number(0, text=f'"{string_token.value}"')
                        )
                    else:
                        args.append(self._parse_expression())
                    if not self._accept_punct(","):
                        break
            self._expect_punct(")")
        self._expect_punct(";")
        return ast.SystemTaskCall(name=token.value, args=args, line=token.line)

    def _parse_assignment(self) -> ast.Assign:
        token = self._current
        target = self._parse_lvalue()
        if self._current.is_op("<="):
            self._advance()
            value = self._parse_expression()
            blocking = False
        elif self._current.is_op("="):
            self._advance()
            value = self._parse_expression()
            blocking = True
        else:
            raise self._error("expected '=' or '<=' in assignment")
        self._expect_punct(";")
        return ast.Assign(target=target, value=value, blocking=blocking, line=token.line)

    def _parse_lvalue(self) -> ast.Expression:
        if self._current.is_punct("{"):
            self._advance()
            parts = [self._parse_lvalue()]
            while self._accept_punct(","):
                parts.append(self._parse_lvalue())
            self._expect_punct("}")
            return ast.Concat(parts=parts)
        name_token = self._expect_ident()
        expr: ast.Expression = ast.Identifier(name=name_token.value)
        while self._current.is_punct("["):
            self._advance()
            first = self._parse_expression()
            if self._accept_op(":"):
                second = self._parse_expression()
                self._expect_punct("]")
                expr = ast.PartSelect(base=expr, msb=first, lsb=second)
            else:
                self._expect_punct("]")
                expr = ast.BitSelect(base=expr, index=first)
        return expr

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #

    def _parse_expression(self) -> ast.Expression:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expression:
        condition = self._parse_binary(1)
        if self._current.is_op("?"):
            self._advance()
            if_true = self._parse_expression()
            self._expect_op(":")
            if_false = self._parse_expression()
            return ast.Ternary(condition=condition, if_true=if_true, if_false=if_false)
        return condition

    def _parse_binary(self, min_precedence: int) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self._current
            if token.kind is not TokenKind.OPERATOR:
                break
            precedence = _BINARY_PRECEDENCE.get(token.value)
            if precedence is None or precedence < min_precedence:
                break
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(op=token.value, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expression:
        token = self._current
        if token.kind is TokenKind.OPERATOR and token.value in _UNARY_OPERATORS:
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(op=token.value, operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._current
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return parse_number(token)
        if token.kind is TokenKind.SYSTEM_IDENT:
            return self._parse_system_call()
        if token.is_punct("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return self._parse_postfix(expr)
        if token.is_punct("{"):
            return self._parse_concat_or_replicate()
        if token.kind is TokenKind.IDENT:
            self._advance()
            return self._parse_postfix(ast.Identifier(name=token.value))
        raise self._error(f"unexpected token '{token.value or 'EOF'}' in expression")

    def _parse_system_call(self) -> ast.Expression:
        token = self._advance()
        args: list[ast.Expression] = []
        if self._accept_punct("("):
            if not self._current.is_punct(")"):
                while True:
                    args.append(self._parse_expression())
                    if not self._accept_punct(","):
                        break
            self._expect_punct(")")
        return ast.SystemCall(name=token.value, args=args)

    def _parse_concat_or_replicate(self) -> ast.Expression:
        self._expect_punct("{")
        first = self._parse_expression()
        if self._current.is_punct("{"):
            # Replication: {count{value}}
            self._advance()
            value = self._parse_expression()
            self._expect_punct("}")
            self._expect_punct("}")
            return ast.Replicate(count=first, value=value)
        parts = [first]
        while self._accept_punct(","):
            parts.append(self._parse_expression())
        self._expect_punct("}")
        return ast.Concat(parts=parts)

    def _parse_postfix(self, expr: ast.Expression) -> ast.Expression:
        while self._current.is_punct("["):
            self._advance()
            first = self._parse_expression()
            if self._accept_op(":"):
                second = self._parse_expression()
                self._expect_punct("]")
                expr = ast.PartSelect(base=expr, msb=first, lsb=second)
            else:
                self._expect_punct("]")
                expr = ast.BitSelect(base=expr, index=first)
        return expr


def parse_number(token: Token) -> ast.Number:
    """Convert a NUMBER token into an :class:`ast.Number` node."""
    text = token.value
    if "'" not in text:
        cleaned = text.replace("_", "")
        return ast.Number(value=int(cleaned), width=None, base="", text=text)
    size_part, _, rest = text.partition("'")
    rest = rest.lstrip("sS")
    base_char = rest[0].lower()
    digits = rest[1:].replace("_", "")
    width = int(size_part) if size_part else None
    base_map = {"b": 2, "d": 10, "h": 16, "o": 8}
    radix = base_map[base_char]
    value = 0
    xz_mask = 0
    digit_bits = {2: 1, 8: 3, 16: 4, 10: 0}[radix]
    if radix == 10:
        if any(c in "xXzZ?" for c in digits):
            xz_mask = (1 << (width or 32)) - 1
            value = 0
        else:
            try:
                value = int(digits) if digits else 0
            except ValueError as exc:
                raise ParseError(
                    f"invalid decimal literal '{text}'", token.line, token.column, "bad-literal"
                ) from exc
    else:
        for ch in digits:
            value <<= digit_bits
            xz_mask <<= digit_bits
            if ch in "xXzZ?":
                xz_mask |= (1 << digit_bits) - 1
            else:
                try:
                    value |= int(ch, radix)
                except ValueError as exc:
                    raise ParseError(
                        f"invalid digit '{ch}' for base-{radix} literal",
                        token.line,
                        token.column,
                        "bad-literal",
                    ) from exc
    if width is not None:
        mask = (1 << width) - 1
        value &= mask
        xz_mask &= mask
    return ast.Number(value=value, width=width, base=base_char, xz_mask=xz_mask, text=text)


def module_port_by_name(module: ast.Module, name: str) -> Optional[ast.Port]:
    """Find a port of ``module`` by name, or ``None``."""
    for port in module.ports:
        if port.name == name:
            return port
    return None


def parse_source(text: str) -> ast.SourceUnit:
    """Parse Verilog source text into a :class:`SourceUnit`.

    Raises:
        LexError: on invalid characters or malformed literals.
        ParseError: on grammar violations.
    """
    tokens = tokenize(text)
    return Parser(tokens, text=text).parse()
