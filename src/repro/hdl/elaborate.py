"""Elaboration: turn a parsed module into a flat, analysable design.

Elaboration performs the front-end work a synthesis/simulation tool would do
before execution:

* constant-fold parameters and ranges to concrete widths,
* unroll ``for`` loops with constant bounds,
* flatten single-level module hierarchies (instantiations),
* build the signal table, driver map and signal dependency graph,
* resolve named properties referenced by concurrent assertions.

The resulting :class:`ElaboratedDesign` is the common substrate used by the
simulator (:mod:`repro.sim`), the assertion checker (:mod:`repro.sva`), the
bounded model checker (:mod:`repro.formal`) and the repair model's
structural analyses (cone of influence, suspicious-line features).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional

from repro.hdl import ast
from repro.hdl.errors import ElaborationError


@dataclass
class Signal:
    """One elaborated signal (port, wire, reg or integer)."""

    name: str
    width: int
    kind: str  # "input" | "output" | "inout" | "wire" | "reg" | "integer"
    signed: bool = False
    msb: int = 0
    lsb: int = 0
    line: int = 0

    @property
    def is_port(self) -> bool:
        return self.kind in ("input", "output", "inout")

    @property
    def is_input(self) -> bool:
        return self.kind == "input"

    @property
    def is_output(self) -> bool:
        return self.kind == "output"

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1


@dataclass
class AssertionSpec:
    """A fully resolved concurrent assertion ready for checking."""

    name: str
    clock: ast.ClockEvent
    disable_iff: Optional[ast.Expression]
    body: ast.SvaProperty
    error_message: str = ""
    line: int = 0
    kind: str = "assert"

    def identifiers(self) -> set[str]:
        names = self.body.identifiers()
        if self.disable_iff is not None:
            names |= self.disable_iff.identifiers()
        return names


@dataclass
class ProceduralBlock:
    """An elaborated always block (loops unrolled, hierarchy flattened)."""

    sensitivity: list[ast.SensitivityItem]
    star: bool
    body: ast.Statement
    line: int = 0

    @property
    def is_clocked(self) -> bool:
        return any(item.edge is not None for item in self.sensitivity)

    def clock_edges(self) -> list[ast.SensitivityItem]:
        return [item for item in self.sensitivity if item.edge is not None]


@dataclass
class ElaboratedDesign:
    """A flat, simulatable representation of one top-level module."""

    name: str
    signals: dict[str, Signal] = field(default_factory=dict)
    parameters: dict[str, int] = field(default_factory=dict)
    continuous_assigns: list[ast.ContinuousAssign] = field(default_factory=list)
    comb_blocks: list[ProceduralBlock] = field(default_factory=list)
    seq_blocks: list[ProceduralBlock] = field(default_factory=list)
    initial_blocks: list[ast.InitialBlock] = field(default_factory=list)
    assertions: list[AssertionSpec] = field(default_factory=list)
    dependency_graph: dict[str, set[str]] = field(default_factory=dict)
    driver_lines: dict[str, list[int]] = field(default_factory=dict)
    source_module: Optional[ast.Module] = None

    # ------------------------------------------------------------------ #
    # queries used throughout the project
    # ------------------------------------------------------------------ #

    @property
    def inputs(self) -> list[Signal]:
        return [s for s in self.signals.values() if s.is_input]

    @property
    def outputs(self) -> list[Signal]:
        return [s for s in self.signals.values() if s.is_output]

    @property
    def state_signals(self) -> list[Signal]:
        """Signals written by clocked blocks (the design's registers)."""
        written: set[str] = set()
        for block in self.seq_blocks:
            written.update(ast.assignment_targets(block.body))
        return [self.signals[name] for name in sorted(written) if name in self.signals]

    def signal(self, name: str) -> Signal:
        try:
            return self.signals[name]
        except KeyError as exc:
            raise ElaborationError(f"unknown signal '{name}'", code="unknown-signal") from exc

    def cone_of_influence(self, roots: set[str]) -> set[str]:
        """Transitively expand ``roots`` through the dependency graph (fan-in cone)."""
        cone: set[str] = set()
        frontier = [name for name in roots if name in self.signals]
        while frontier:
            name = frontier.pop()
            if name in cone:
                continue
            cone.add(name)
            for dep in self.dependency_graph.get(name, ()):  # fan-in of `name`
                if dep not in cone:
                    frontier.append(dep)
        return cone

    def lines_driving(self, signal_name: str) -> list[int]:
        """Source lines containing assignments to ``signal_name``."""
        return sorted(set(self.driver_lines.get(signal_name, [])))

    def clock_candidates(self) -> list[str]:
        """Signals used as clocks by sequential blocks, in declaration order."""
        clocks: list[str] = []
        for block in self.seq_blocks:
            for item in block.clock_edges():
                if item.signal not in clocks:
                    clocks.append(item.signal)
        for assertion in self.assertions:
            if assertion.clock.signal not in clocks:
                clocks.append(assertion.clock.signal)
        return clocks


# --------------------------------------------------------------------------- #
# constant folding
# --------------------------------------------------------------------------- #


def fold_constant(expr: ast.Expression, parameters: dict[str, int]) -> int:
    """Evaluate a constant expression using only parameter values.

    Raises:
        ElaborationError: if the expression references a non-parameter signal
            or uses an operator that cannot be constant-folded.
    """
    if isinstance(expr, ast.Number):
        return expr.value
    if isinstance(expr, ast.Identifier):
        if expr.name in parameters:
            return parameters[expr.name]
        raise ElaborationError(
            f"'{expr.name}' is not a constant parameter", code="non-constant"
        )
    if isinstance(expr, ast.Unary):
        operand = fold_constant(expr.operand, parameters)
        return _fold_unary(expr.op, operand)
    if isinstance(expr, ast.Binary):
        left = fold_constant(expr.left, parameters)
        right = fold_constant(expr.right, parameters)
        return _fold_binary(expr.op, left, right)
    if isinstance(expr, ast.Ternary):
        condition = fold_constant(expr.condition, parameters)
        branch = expr.if_true if condition else expr.if_false
        return fold_constant(branch, parameters)
    raise ElaborationError(
        f"expression '{expr}' is not constant", code="non-constant"
    )


def _fold_unary(op: str, operand: int) -> int:
    if op == "-":
        return -operand
    if op == "+":
        return operand
    if op == "!":
        return 0 if operand else 1
    if op == "~":
        return ~operand
    raise ElaborationError(f"operator '{op}' not allowed in constant expression", code="non-constant")


def _fold_binary(op: str, left: int, right: int) -> int:
    operations = {
        "+": lambda: left + right,
        "-": lambda: left - right,
        "*": lambda: left * right,
        "/": lambda: left // right if right else 0,
        "%": lambda: left % right if right else 0,
        "**": lambda: left ** right,
        "<<": lambda: left << right,
        ">>": lambda: left >> right,
        "<": lambda: int(left < right),
        ">": lambda: int(left > right),
        "<=": lambda: int(left <= right),
        ">=": lambda: int(left >= right),
        "==": lambda: int(left == right),
        "!=": lambda: int(left != right),
        "&&": lambda: int(bool(left) and bool(right)),
        "||": lambda: int(bool(left) or bool(right)),
        "&": lambda: left & right,
        "|": lambda: left | right,
        "^": lambda: left ^ right,
    }
    if op not in operations:
        raise ElaborationError(
            f"operator '{op}' not allowed in constant expression", code="non-constant"
        )
    return operations[op]()


# --------------------------------------------------------------------------- #
# elaborator
# --------------------------------------------------------------------------- #

_MAX_FOR_ITERATIONS = 4096
_MAX_HIERARCHY_DEPTH = 8


class Elaborator:
    """Elaborates a :class:`SourceUnit` into an :class:`ElaboratedDesign`."""

    def __init__(self, unit: ast.SourceUnit, top: Optional[str] = None):
        self._unit = unit
        self._top_name = top

    def elaborate(self) -> ElaboratedDesign:
        module = self._select_top()
        return self._elaborate_module(module, parameter_overrides={}, prefix="", depth=0)

    # ------------------------------------------------------------------ #
    # module selection and recursion
    # ------------------------------------------------------------------ #

    def _select_top(self) -> ast.Module:
        if self._top_name is not None:
            module = self._unit.find_module(self._top_name)
            if module is None:
                raise ElaborationError(
                    f"top module '{self._top_name}' not found", code="missing-top"
                )
            return module
        instantiated = {
            item.module_name
            for module in self._unit.modules
            for item in module.items_of_type(ast.Instantiation)
        }
        candidates = [m for m in self._unit.modules if m.name not in instantiated]
        if candidates:
            return candidates[-1]
        return self._unit.top

    def _elaborate_module(
        self,
        module: ast.Module,
        parameter_overrides: dict[str, int],
        prefix: str,
        depth: int,
    ) -> ElaboratedDesign:
        if depth > _MAX_HIERARCHY_DEPTH:
            raise ElaborationError("module hierarchy too deep", code="hierarchy-depth")
        design = ElaboratedDesign(name=module.name, source_module=module)
        design.parameters = self._resolve_parameters(module, parameter_overrides)
        self._declare_ports(module, design, prefix)
        self._declare_nets(module, design, prefix)
        self._collect_items(module, design, prefix, depth)
        self._resolve_assertions(module, design, prefix)
        _build_dependency_graph(design)
        _collect_driver_lines(design)
        _check_design(design)
        return design

    def _resolve_parameters(
        self, module: ast.Module, overrides: dict[str, int]
    ) -> dict[str, int]:
        parameters: dict[str, int] = {}
        for decl in module.parameters:
            if decl.name in overrides:
                parameters[decl.name] = overrides[decl.name]
            else:
                parameters[decl.name] = fold_constant(decl.value, parameters)
        for item in module.items_of_type(ast.ParamDecl):
            parameters[item.name] = fold_constant(item.value, parameters)
        return parameters

    def _declare_ports(self, module: ast.Module, design: ElaboratedDesign, prefix: str) -> None:
        for port in module.ports:
            if not port.direction:
                raise ElaborationError(
                    f"port '{port.name}' has no direction declaration",
                    line=port.line,
                    code="undirected-port",
                )
            width, msb, lsb = self._range_width(port.range, design.parameters)
            kind = port.direction if not prefix else ("reg" if port.net_type == "reg" else "wire")
            design.signals[prefix + port.name] = Signal(
                name=prefix + port.name,
                width=width,
                kind=kind if not prefix else kind,
                signed=port.signed,
                msb=msb,
                lsb=lsb,
                line=port.line,
            )

    def _declare_nets(self, module: ast.Module, design: ElaboratedDesign, prefix: str) -> None:
        for item in module.items_of_type(ast.NetDecl):
            width, msb, lsb = self._range_width(item.range, design.parameters)
            if item.kind == "integer":
                width, msb, lsb = 32, 31, 0
            if item.kind == "genvar":
                continue
            for name in item.names:
                full_name = prefix + name
                if full_name in design.signals:
                    existing = design.signals[full_name]
                    # `output reg [N:0] x;` style double declarations refine the kind.
                    if item.kind == "reg" and existing.is_port:
                        continue
                    raise ElaborationError(
                        f"signal '{name}' declared more than once",
                        line=item.line,
                        code="duplicate-declaration",
                    )
                design.signals[full_name] = Signal(
                    name=full_name,
                    width=width,
                    kind=item.kind if item.kind != "logic" else "wire",
                    signed=item.signed,
                    msb=msb,
                    lsb=lsb,
                    line=item.line,
                )
            if item.initial is not None and item.kind in ("wire", "logic"):
                design.continuous_assigns.append(
                    ast.ContinuousAssign(
                        target=ast.Identifier(prefix + item.names[-1]),
                        value=_prefix_expression(item.initial, prefix),
                        line=item.line,
                    )
                )

    def _range_width(
        self, rng: Optional[ast.Range], parameters: dict[str, int]
    ) -> tuple[int, int, int]:
        if rng is None:
            return 1, 0, 0
        msb = fold_constant(rng.msb, parameters)
        lsb = fold_constant(rng.lsb, parameters)
        if msb < lsb:
            raise ElaborationError(
                f"descending range [{msb}:{lsb}] is not supported", code="bad-range"
            )
        return msb - lsb + 1, msb, lsb

    def _collect_items(
        self, module: ast.Module, design: ElaboratedDesign, prefix: str, depth: int
    ) -> None:
        for item in module.items:
            if isinstance(item, ast.ContinuousAssign):
                design.continuous_assigns.append(
                    ast.ContinuousAssign(
                        target=_prefix_expression(item.target, prefix),
                        value=_prefix_expression(item.value, prefix),
                        line=item.line,
                    )
                )
            elif isinstance(item, ast.AlwaysBlock):
                block = self._elaborate_always(item, design, prefix)
                if block.is_clocked:
                    design.seq_blocks.append(block)
                else:
                    design.comb_blocks.append(block)
            elif isinstance(item, ast.InitialBlock):
                body = _prefix_statement(copy.deepcopy(item.body), prefix)
                design.initial_blocks.append(ast.InitialBlock(body=body, line=item.line))
            elif isinstance(item, ast.Instantiation):
                self._flatten_instance(item, design, prefix, depth)
            elif isinstance(item, (ast.NetDecl, ast.ParamDecl, ast.PropertyDecl, ast.ConcurrentAssertion)):
                continue
            else:  # pragma: no cover - defensive
                raise ElaborationError(
                    f"unsupported module item {type(item).__name__}", line=item.line
                )

    def _elaborate_always(
        self, block: ast.AlwaysBlock, design: ElaboratedDesign, prefix: str
    ) -> ProceduralBlock:
        body = copy.deepcopy(block.body)
        body = _unroll_statement(body, design.parameters)
        body = _prefix_statement(body, prefix)
        sensitivity = [
            ast.SensitivityItem(edge=item.edge, signal=prefix + item.signal)
            for item in block.sensitivity
        ]
        return ProceduralBlock(
            sensitivity=sensitivity, star=block.star, body=body, line=block.line
        )

    def _flatten_instance(
        self, inst: ast.Instantiation, design: ElaboratedDesign, prefix: str, depth: int
    ) -> None:
        submodule = self._unit.find_module(inst.module_name)
        if submodule is None:
            raise ElaborationError(
                f"instantiated module '{inst.module_name}' is not defined",
                line=inst.line,
                code="unknown-module",
            )
        overrides = {
            name: fold_constant(expr, design.parameters)
            for name, expr in inst.parameter_overrides.items()
        }
        sub_prefix = f"{prefix}{inst.instance_name}__"
        sub_design = self._elaborate_module(submodule, overrides, sub_prefix, depth + 1)
        design.signals.update(sub_design.signals)
        design.continuous_assigns.extend(sub_design.continuous_assigns)
        design.comb_blocks.extend(sub_design.comb_blocks)
        design.seq_blocks.extend(sub_design.seq_blocks)
        design.initial_blocks.extend(sub_design.initial_blocks)
        design.assertions.extend(sub_design.assertions)
        # Wire up port connections with continuous assignments.
        port_directions = {port.name: port.direction for port in submodule.ports}
        for connection in inst.connections:
            if connection.expr is None:
                continue
            if connection.port not in port_directions:
                raise ElaborationError(
                    f"module '{inst.module_name}' has no port '{connection.port}'",
                    line=inst.line,
                    code="unknown-port",
                )
            inner = ast.Identifier(sub_prefix + connection.port)
            outer = _prefix_expression(connection.expr, prefix)
            if port_directions[connection.port] == "input":
                design.continuous_assigns.append(
                    ast.ContinuousAssign(target=inner, value=outer, line=inst.line)
                )
            else:
                design.continuous_assigns.append(
                    ast.ContinuousAssign(target=outer, value=inner, line=inst.line)
                )

    def _resolve_assertions(
        self, module: ast.Module, design: ElaboratedDesign, prefix: str
    ) -> None:
        properties = {prop.name: prop for prop in module.properties}
        for index, assertion in enumerate(module.assertions):
            if assertion.property_name is not None:
                prop = properties.get(assertion.property_name)
                if prop is None:
                    raise ElaborationError(
                        f"assertion references unknown property '{assertion.property_name}'",
                        line=assertion.line,
                        code="unknown-property",
                    )
            else:
                prop = assertion.inline
            if prop is None:  # pragma: no cover - parser guarantees one of the two
                raise ElaborationError("assertion has no property", line=assertion.line)
            if prop.clock is None:
                raise ElaborationError(
                    f"property '{prop.name}' has no clocking event",
                    line=prop.line,
                    code="unclocked-property",
                )
            name = assertion.label or prop.name or f"assertion_{index}"
            clock = ast.ClockEvent(edge=prop.clock.edge, signal=prefix + prop.clock.signal)
            disable = (
                _prefix_expression(prop.disable_iff, prefix)
                if prop.disable_iff is not None
                else None
            )
            body = _prefix_property(prop.body, prefix)
            design.assertions.append(
                AssertionSpec(
                    name=prefix + name,
                    clock=clock,
                    disable_iff=disable,
                    body=body,
                    error_message=assertion.error_message,
                    line=assertion.line,
                    kind=assertion.kind,
                )
            )


# --------------------------------------------------------------------------- #
# statement / expression rewriting helpers
# --------------------------------------------------------------------------- #


def _prefix_expression(expr: ast.Expression, prefix: str) -> ast.Expression:
    if not prefix:
        return expr
    expr = copy.deepcopy(expr)
    for node in expr.walk():
        if isinstance(node, ast.Identifier):
            node.name = prefix + node.name
    return expr


def _prefix_statement(statement: ast.Statement, prefix: str) -> ast.Statement:
    if not prefix:
        return statement
    for node in statement.walk():
        if isinstance(node, ast.Assign):
            node.target = _prefix_expression(node.target, prefix)
            node.value = _prefix_expression(node.value, prefix)
        elif isinstance(node, ast.If):
            node.condition = _prefix_expression(node.condition, prefix)
        elif isinstance(node, ast.Case):
            node.subject = _prefix_expression(node.subject, prefix)
            for item in node.items:
                item.labels = [_prefix_expression(label, prefix) for label in item.labels]
    return statement


def _prefix_property(body: ast.SvaProperty, prefix: str) -> ast.SvaProperty:
    if not prefix:
        return body
    body = copy.deepcopy(body)
    sequences = [body.consequent]
    if body.antecedent is not None:
        sequences.append(body.antecedent)
    for sequence in sequences:
        for element in sequence.elements:
            element.expr = _prefix_expression(element.expr, prefix)
    return body


def _substitute_identifier(expr: ast.Expression, name: str, value: int) -> ast.Expression:
    expr = copy.deepcopy(expr)
    if isinstance(expr, ast.Identifier) and expr.name == name:
        return ast.Number(value=value, text=str(value))
    for node in expr.walk():
        for attr in ("operand", "left", "right", "condition", "if_true", "if_false", "base", "index", "msb", "lsb", "count", "value"):
            child = getattr(node, attr, None)
            if isinstance(child, ast.Identifier) and child.name == name:
                setattr(node, attr, ast.Number(value=value, text=str(value)))
        if isinstance(node, (ast.Concat,)):
            node.parts = [
                ast.Number(value=value, text=str(value))
                if isinstance(part, ast.Identifier) and part.name == name
                else part
                for part in node.parts
            ]
        if isinstance(node, ast.SystemCall):
            node.args = [
                ast.Number(value=value, text=str(value))
                if isinstance(arg, ast.Identifier) and arg.name == name
                else arg
                for arg in node.args
            ]
    return expr


def _substitute_statement(statement: ast.Statement, name: str, value: int) -> ast.Statement:
    statement = copy.deepcopy(statement)
    for node in statement.walk():
        if isinstance(node, ast.Assign):
            node.target = _substitute_identifier(node.target, name, value)
            node.value = _substitute_identifier(node.value, name, value)
        elif isinstance(node, ast.If):
            node.condition = _substitute_identifier(node.condition, name, value)
        elif isinstance(node, ast.Case):
            node.subject = _substitute_identifier(node.subject, name, value)
            for item in node.items:
                item.labels = [_substitute_identifier(label, name, value) for label in item.labels]
    return statement


def _unroll_statement(statement: ast.Statement, parameters: dict[str, int]) -> ast.Statement:
    """Recursively unroll for-loops with constant bounds."""
    if isinstance(statement, ast.Block):
        new_statements = [_unroll_statement(s, parameters) for s in statement.statements]
        return ast.Block(statements=new_statements, name=statement.name)
    if isinstance(statement, ast.If):
        return ast.If(
            condition=statement.condition,
            then_branch=_unroll_statement(statement.then_branch, parameters),
            else_branch=(
                _unroll_statement(statement.else_branch, parameters)
                if statement.else_branch is not None
                else None
            ),
            line=statement.line,
        )
    if isinstance(statement, ast.Case):
        return ast.Case(
            subject=statement.subject,
            items=[
                ast.CaseItem(labels=item.labels, body=_unroll_statement(item.body, parameters))
                for item in statement.items
            ],
            variant=statement.variant,
            line=statement.line,
        )
    if isinstance(statement, ast.For):
        return _unroll_for(statement, parameters)
    return statement


def _unroll_for(loop: ast.For, parameters: dict[str, int]) -> ast.Block:
    if loop.init_var != loop.step_var:
        raise ElaborationError(
            "for-loop must update its own induction variable", line=loop.line, code="bad-for"
        )
    var = loop.init_var
    value = fold_constant(loop.init_value, parameters)
    unrolled: list[ast.Statement] = []
    iterations = 0
    while True:
        condition_value = fold_constant(
            _substitute_identifier(loop.condition, var, value), parameters
        )
        if not condition_value:
            break
        body = _substitute_statement(loop.body, var, value)
        unrolled.append(_unroll_statement(body, parameters))
        value = fold_constant(_substitute_identifier(loop.step_value, var, value), parameters)
        iterations += 1
        if iterations > _MAX_FOR_ITERATIONS:
            raise ElaborationError(
                "for-loop exceeds maximum unroll count", line=loop.line, code="unbounded-for"
            )
    return ast.Block(statements=unrolled)


# --------------------------------------------------------------------------- #
# analyses
# --------------------------------------------------------------------------- #


def _statement_dependencies(
    statement: ast.Statement, context: Optional[list[ast.Expression]] = None
) -> dict[str, set[str]]:
    """Map each assigned signal to the set of signals it depends on."""
    context = context or []
    dependencies: dict[str, set[str]] = {}

    def visit(node: ast.Statement, active_context: list[ast.Expression]) -> None:
        if isinstance(node, ast.Block):
            for sub in node.statements:
                visit(sub, active_context)
        elif isinstance(node, ast.If):
            new_context = active_context + [node.condition]
            visit(node.then_branch, new_context)
            if node.else_branch is not None:
                visit(node.else_branch, new_context)
        elif isinstance(node, ast.Case):
            new_context = active_context + [node.subject] + [
                label for item in node.items for label in item.labels
            ]
            for item in node.items:
                visit(item.body, new_context)
        elif isinstance(node, ast.Assign):
            sources: set[str] = set(node.value.identifiers())
            for expr in active_context:
                sources |= expr.identifiers()
            if isinstance(node.target, (ast.BitSelect, ast.PartSelect)):
                sources |= node.target.identifiers()
            for target in ast._target_names(node.target):
                dependencies.setdefault(target, set()).update(sources - {target} | sources & {target})
                dependencies[target].update(sources)

    visit(statement, context)
    return dependencies


def _build_dependency_graph(design: ElaboratedDesign) -> None:
    graph: dict[str, set[str]] = {name: set() for name in design.signals}
    for assign in design.continuous_assigns:
        sources = assign.value.identifiers()
        if isinstance(assign.target, (ast.BitSelect, ast.PartSelect)):
            sources |= {
                name for name in assign.target.identifiers()
            } - set(ast._target_names(assign.target))
        for target in ast._target_names(assign.target):
            graph.setdefault(target, set()).update(sources)
    for block in design.comb_blocks + design.seq_blocks:
        for target, sources in _statement_dependencies(block.body).items():
            graph.setdefault(target, set()).update(sources)
        if block.is_clocked:
            edge_signals = {item.signal for item in block.clock_edges()}
            for target in _statement_dependencies(block.body):
                graph.setdefault(target, set()).update(edge_signals)
    design.dependency_graph = graph


def _collect_driver_lines(design: ElaboratedDesign) -> None:
    drivers: dict[str, list[int]] = {}
    for assign in design.continuous_assigns:
        for target in ast._target_names(assign.target):
            drivers.setdefault(target, []).append(assign.line)
    for block in design.comb_blocks + design.seq_blocks:
        for node in block.body.walk():
            if isinstance(node, ast.Assign):
                for target in ast._target_names(node.target):
                    drivers.setdefault(target, []).append(node.line)
    design.driver_lines = drivers


def _check_design(design: ElaboratedDesign) -> None:
    """Fatal structural checks performed at the end of elaboration."""
    for assign in design.continuous_assigns:
        for target in ast._target_names(assign.target):
            if target not in design.signals:
                raise ElaborationError(
                    f"assignment to undeclared signal '{target}'",
                    line=assign.line,
                    code="undeclared-signal",
                )
    for block in design.comb_blocks + design.seq_blocks:
        for node in block.body.walk():
            if isinstance(node, ast.Assign):
                for target in ast._target_names(node.target):
                    if target not in design.signals:
                        raise ElaborationError(
                            f"assignment to undeclared signal '{target}'",
                            line=node.line,
                            code="undeclared-signal",
                        )


def elaborate(unit: ast.SourceUnit, top: Optional[str] = None) -> ElaboratedDesign:
    """Elaborate ``unit`` (optionally selecting ``top``) into a flat design."""
    return Elaborator(unit, top=top).elaborate()
