"""Tokenizer for the Verilog-2001 / SVA subset used throughout the project.

The lexer is deliberately strict: anything outside the supported subset is
reported as a :class:`~repro.hdl.errors.LexError` with a line/column, which
is exactly what the data-augmentation pipeline needs from its "compiler"
stage (accept/reject plus a diagnostic).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hdl.errors import LexError


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENT = "ident"
    SYSTEM_IDENT = "system_ident"  # $error, $past, $display ...
    NUMBER = "number"  # 12, 4'b1010, 8'hFF
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


#: Keywords recognised by the parser.  Everything else that looks like an
#: identifier is an identifier.
KEYWORDS: frozenset[str] = frozenset(
    {
        "module",
        "endmodule",
        "input",
        "output",
        "inout",
        "wire",
        "reg",
        "logic",
        "integer",
        "parameter",
        "localparam",
        "assign",
        "always",
        "always_ff",
        "always_comb",
        "initial",
        "begin",
        "end",
        "if",
        "else",
        "case",
        "casez",
        "casex",
        "endcase",
        "default",
        "for",
        "posedge",
        "negedge",
        "or",
        "property",
        "endproperty",
        "assert",
        "assume",
        "cover",
        "disable",
        "iff",
        "not",
        "signed",
        "genvar",
        "generate",
        "endgenerate",
        "function",
        "endfunction",
        "task",
        "endtask",
    }
)

#: Multi-character operators, longest first so that maximal munch works.
_MULTI_CHAR_OPERATORS: tuple[str, ...] = (
    "|=>",
    "|->",
    "<<<",
    ">>>",
    "===",
    "!==",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "<<",
    ">>",
    "##",
    "+:",
    "-:",
    "::",
    "**",
)

_SINGLE_CHAR_OPERATORS: frozenset[str] = frozenset("+-*/%&|^~!<>=?:#")

_PUNCTUATION: frozenset[str] = frozenset("()[]{},;.@'")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    kind: TokenKind
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value in names

    def is_op(self, *ops: str) -> bool:
        return self.kind is TokenKind.OPERATOR and self.value in ops

    def is_punct(self, *puncts: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.value in puncts

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.kind.value}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Converts Verilog source text into a list of :class:`Token` objects."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1
        self._tokens: list[Token] = []

    def tokenize(self) -> list[Token]:
        """Tokenize the whole input, raising :class:`LexError` on bad input."""
        while self._pos < len(self._text):
            ch = self._text[self._pos]
            if ch in " \t\r":
                self._advance(1)
            elif ch == "\n":
                self._advance_newline()
            elif ch == "/" and self._peek(1) == "/":
                self._skip_line_comment()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            elif ch == "`":
                self._skip_directive()
            elif ch == '"':
                self._lex_string()
            elif ch == "$":
                self._lex_system_ident()
            elif ch.isdigit() or (ch == "'" and self._peek(1) in "bBdDhHoO"):
                self._lex_number()
            elif ch.isalpha() or ch == "_" or ch == "\\":
                self._lex_identifier()
            else:
                self._lex_operator_or_punct()
        self._tokens.append(Token(TokenKind.EOF, "", self._line, self._column))
        return self._tokens

    # ------------------------------------------------------------------ #
    # low-level cursor helpers
    # ------------------------------------------------------------------ #

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._text):
            return self._text[index]
        return ""

    def _advance(self, count: int) -> None:
        self._pos += count
        self._column += count

    def _advance_newline(self) -> None:
        self._pos += 1
        self._line += 1
        self._column = 1

    def _emit(self, kind: TokenKind, value: str, line: int, column: int) -> None:
        self._tokens.append(Token(kind, value, line, column))

    # ------------------------------------------------------------------ #
    # token scanners
    # ------------------------------------------------------------------ #

    def _skip_line_comment(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos] != "\n":
            self._pos += 1
            self._column += 1

    def _skip_block_comment(self) -> None:
        start_line, start_col = self._line, self._column
        self._advance(2)
        while self._pos < len(self._text):
            if self._text[self._pos] == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            if self._text[self._pos] == "\n":
                self._advance_newline()
            else:
                self._advance(1)
        raise LexError("unterminated block comment", start_line, start_col, "unterminated-comment")

    def _skip_directive(self) -> None:
        """Skip a compiler directive (`timescale, `define ...) to end of line."""
        while self._pos < len(self._text) and self._text[self._pos] != "\n":
            self._pos += 1
            self._column += 1

    def _lex_string(self) -> None:
        start_line, start_col = self._line, self._column
        self._advance(1)
        chars: list[str] = []
        while True:
            if self._pos >= len(self._text):
                raise LexError("unterminated string literal", start_line, start_col, "unterminated-string")
            ch = self._text[self._pos]
            if ch == '"':
                self._advance(1)
                break
            if ch == "\n":
                raise LexError("newline in string literal", start_line, start_col, "newline-in-string")
            if ch == "\\":
                nxt = self._peek(1)
                chars.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(nxt, nxt))
                self._advance(2)
                continue
            chars.append(ch)
            self._advance(1)
        self._emit(TokenKind.STRING, "".join(chars), start_line, start_col)

    def _lex_system_ident(self) -> None:
        start_line, start_col = self._line, self._column
        start = self._pos
        self._advance(1)
        while self._pos < len(self._text) and (self._text[self._pos].isalnum() or self._text[self._pos] == "_"):
            self._advance(1)
        value = self._text[start : self._pos]
        if value == "$":
            raise LexError("stray '$' in source", start_line, start_col, "stray-dollar")
        self._emit(TokenKind.SYSTEM_IDENT, value, start_line, start_col)

    def _lex_number(self) -> None:
        start_line, start_col = self._line, self._column
        start = self._pos
        # Optional decimal size prefix.
        while self._pos < len(self._text) and (self._text[self._pos].isdigit() or self._text[self._pos] == "_"):
            self._advance(1)
        if self._pos < len(self._text) and self._text[self._pos] == "'":
            self._advance(1)
            if self._pos < len(self._text) and self._text[self._pos] in "sS":
                self._advance(1)
            if self._pos >= len(self._text) or self._text[self._pos] not in "bBdDhHoO":
                raise LexError("malformed based literal", start_line, start_col, "bad-literal")
            self._advance(1)
            digits_start = self._pos
            while self._pos < len(self._text) and (
                self._text[self._pos].isalnum() or self._text[self._pos] in "_?xXzZ"
            ):
                self._advance(1)
            if self._pos == digits_start:
                raise LexError("based literal missing digits", start_line, start_col, "bad-literal")
        value = self._text[start : self._pos]
        self._emit(TokenKind.NUMBER, value, start_line, start_col)

    def _lex_identifier(self) -> None:
        start_line, start_col = self._line, self._column
        start = self._pos
        if self._text[self._pos] == "\\":
            # Escaped identifier: terminated by whitespace.
            self._advance(1)
            while self._pos < len(self._text) and not self._text[self._pos].isspace():
                self._advance(1)
            value = self._text[start + 1 : self._pos]
            self._emit(TokenKind.IDENT, value, start_line, start_col)
            return
        while self._pos < len(self._text) and (
            self._text[self._pos].isalnum() or self._text[self._pos] in "_$"
        ):
            self._advance(1)
        value = self._text[start : self._pos]
        kind = TokenKind.KEYWORD if value in KEYWORDS else TokenKind.IDENT
        self._emit(kind, value, start_line, start_col)

    def _lex_operator_or_punct(self) -> None:
        start_line, start_col = self._line, self._column
        for op in _MULTI_CHAR_OPERATORS:
            if self._text.startswith(op, self._pos):
                self._advance(len(op))
                self._emit(TokenKind.OPERATOR, op, start_line, start_col)
                return
        ch = self._text[self._pos]
        if ch in _SINGLE_CHAR_OPERATORS:
            self._advance(1)
            self._emit(TokenKind.OPERATOR, ch, start_line, start_col)
            return
        if ch in _PUNCTUATION:
            self._advance(1)
            self._emit(TokenKind.PUNCT, ch, start_line, start_col)
            return
        raise LexError(f"unexpected character {ch!r}", start_line, start_col, "unexpected-character")


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` and return the token list (including the EOF token)."""
    return Lexer(text).tokenize()
