"""Verilog front end: lexer, parser, AST, elaboration and semantic linting.

This package is the reproduction's substitute for the Icarus Verilog
compiler used by the paper's data-augmentation pipeline.  It accepts the
Verilog-2001 subset emitted by :mod:`repro.corpus` (and written by hand in
the RTLLM-style split), reports syntax and semantic diagnostics, and
produces an elaborated design representation consumed by the simulator,
the SVA checker, the bounded model checker and the repair model's
structural analyses.
"""

from repro.hdl.errors import (
    HdlError,
    LexError,
    ParseError,
    ElaborationError,
    LintError,
    Diagnostic,
    Severity,
)
from repro.hdl.lexer import Lexer, Token, TokenKind, tokenize
from repro.hdl.parser import Parser, parse_source
from repro.hdl.elaborate import ElaboratedDesign, Elaborator, elaborate
from repro.hdl.lint import CompileResult, compile_source, lint_design
from repro.hdl.source import SourceFile, replace_line, extract_line

__all__ = [
    "HdlError",
    "LexError",
    "ParseError",
    "ElaborationError",
    "LintError",
    "Diagnostic",
    "Severity",
    "Lexer",
    "Token",
    "TokenKind",
    "tokenize",
    "Parser",
    "parse_source",
    "ElaboratedDesign",
    "Elaborator",
    "elaborate",
    "CompileResult",
    "compile_source",
    "lint_design",
    "SourceFile",
    "replace_line",
    "extract_line",
]
