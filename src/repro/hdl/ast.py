"""Abstract syntax tree node definitions for the Verilog/SVA subset.

All nodes are plain dataclasses.  Expression nodes form one hierarchy
(:class:`Expression`), procedural statements another (:class:`Statement`),
and module items a third (:class:`ModuleItem`).  Concurrent assertion /
property constructs are part of the same AST because they live inside
module bodies in SystemVerilog source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #


@dataclass
class Expression:
    """Base class for all expression nodes."""

    def children(self) -> Iterator["Expression"]:
        """Yield direct sub-expressions (default: none)."""
        return iter(())

    def walk(self) -> Iterator["Expression"]:
        """Yield this node and every descendant expression."""
        yield self
        for child in self.children():
            yield from child.walk()

    def identifiers(self) -> set[str]:
        """Return the set of signal/parameter names referenced by the expression."""
        names: set[str] = set()
        for node in self.walk():
            if isinstance(node, Identifier):
                names.add(node.name)
        return names


@dataclass
class Identifier(Expression):
    """A reference to a signal, parameter or genvar by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class Number(Expression):
    """An integer literal, optionally sized/based (e.g. ``4'b1010``).

    Attributes:
        value: the numeric value with ``x``/``z`` digits treated as 0.
        width: declared width in bits, or ``None`` for unsized literals.
        base: one of ``"b"``, ``"d"``, ``"h"``, ``"o"`` or ``""`` for plain decimals.
        xz_mask: bitmask of positions holding ``x`` or ``z`` digits.
        text: the original literal text, preserved for re-emission.
    """

    value: int
    width: Optional[int] = None
    base: str = ""
    xz_mask: int = 0
    text: str = ""

    def __str__(self) -> str:
        return self.text if self.text else str(self.value)


@dataclass
class Unary(Expression):
    """A unary operation such as ``~a``, ``!a``, ``-a``, ``&a`` (reduction)."""

    op: str
    operand: Expression

    def children(self) -> Iterator[Expression]:
        yield self.operand

    def __str__(self) -> str:
        return f"{self.op}{_paren(self.operand)}"


@dataclass
class Binary(Expression):
    """A binary operation such as ``a + b`` or ``a && b``."""

    op: str
    left: Expression
    right: Expression

    def children(self) -> Iterator[Expression]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"{_paren(self.left)} {self.op} {_paren(self.right)}"


@dataclass
class Ternary(Expression):
    """The conditional operator ``cond ? a : b``."""

    condition: Expression
    if_true: Expression
    if_false: Expression

    def children(self) -> Iterator[Expression]:
        yield self.condition
        yield self.if_true
        yield self.if_false

    def __str__(self) -> str:
        return f"{_paren(self.condition)} ? {_paren(self.if_true)} : {_paren(self.if_false)}"


@dataclass
class BitSelect(Expression):
    """A single-bit select ``base[index]``."""

    base: Expression
    index: Expression

    def children(self) -> Iterator[Expression]:
        yield self.base
        yield self.index

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"


@dataclass
class PartSelect(Expression):
    """A constant part select ``base[msb:lsb]``."""

    base: Expression
    msb: Expression
    lsb: Expression

    def children(self) -> Iterator[Expression]:
        yield self.base
        yield self.msb
        yield self.lsb

    def __str__(self) -> str:
        return f"{self.base}[{self.msb}:{self.lsb}]"


@dataclass
class Concat(Expression):
    """A concatenation ``{a, b, c}``."""

    parts: list[Expression]

    def children(self) -> Iterator[Expression]:
        yield from self.parts

    def __str__(self) -> str:
        return "{" + ", ".join(str(p) for p in self.parts) + "}"


@dataclass
class Replicate(Expression):
    """A replication ``{count{value}}``."""

    count: Expression
    value: Expression

    def children(self) -> Iterator[Expression]:
        yield self.count
        yield self.value

    def __str__(self) -> str:
        return "{" + f"{self.count}{{{self.value}}}" + "}"


@dataclass
class SystemCall(Expression):
    """A system function call such as ``$past(x, 1)`` or ``$countones(v)``."""

    name: str
    args: list[Expression] = field(default_factory=list)

    def children(self) -> Iterator[Expression]:
        yield from self.args

    def __str__(self) -> str:
        return f"{self.name}(" + ", ".join(str(a) for a in self.args) + ")"


def _paren(expr: Expression) -> str:
    """Parenthesise compound sub-expressions when rendering."""
    if isinstance(expr, (Binary, Ternary)):
        return f"({expr})"
    return str(expr)


# --------------------------------------------------------------------------- #
# Procedural statements
# --------------------------------------------------------------------------- #


@dataclass
class Statement:
    """Base class for procedural statements."""

    def substatements(self) -> Iterator["Statement"]:
        return iter(())

    def walk(self) -> Iterator["Statement"]:
        yield self
        for sub in self.substatements():
            yield from sub.walk()


@dataclass
class Block(Statement):
    """A ``begin ... end`` block."""

    statements: list[Statement] = field(default_factory=list)
    name: Optional[str] = None

    def substatements(self) -> Iterator[Statement]:
        yield from self.statements


@dataclass
class Assign(Statement):
    """A procedural assignment, blocking (``=``) or non-blocking (``<=``)."""

    target: Expression
    value: Expression
    blocking: bool
    line: int = 0

    def substatements(self) -> Iterator[Statement]:
        return iter(())


@dataclass
class If(Statement):
    """An ``if``/``else`` statement."""

    condition: Expression
    then_branch: Statement
    else_branch: Optional[Statement] = None
    line: int = 0

    def substatements(self) -> Iterator[Statement]:
        yield self.then_branch
        if self.else_branch is not None:
            yield self.else_branch


@dataclass
class CaseItem:
    """One arm of a case statement (``labels`` empty means ``default``)."""

    labels: list[Expression]
    body: Statement


@dataclass
class Case(Statement):
    """A ``case``/``casez``/``casex`` statement."""

    subject: Expression
    items: list[CaseItem]
    variant: str = "case"  # "case" | "casez" | "casex"
    line: int = 0

    def substatements(self) -> Iterator[Statement]:
        for item in self.items:
            yield item.body


@dataclass
class For(Statement):
    """A ``for`` loop with constant bounds (unrolled at elaboration)."""

    init_var: str
    init_value: Expression
    condition: Expression
    step_var: str
    step_value: Expression
    body: Statement
    line: int = 0

    def substatements(self) -> Iterator[Statement]:
        yield self.body


@dataclass
class SystemTaskCall(Statement):
    """A procedural system task call such as ``$display(...)`` or ``$error(...)``."""

    name: str
    args: list[Expression] = field(default_factory=list)
    line: int = 0


@dataclass
class NullStatement(Statement):
    """A lone ``;`` (empty statement)."""

    line: int = 0


# --------------------------------------------------------------------------- #
# SVA property constructs
# --------------------------------------------------------------------------- #


@dataclass
class SequenceElement:
    """One element of an SVA sequence: a boolean expression after a ``##delay``."""

    delay: int
    expr: Expression


@dataclass
class SvaSequence:
    """An SVA sequence: a chain of boolean expressions separated by ``##N`` delays."""

    elements: list[SequenceElement]

    def identifiers(self) -> set[str]:
        names: set[str] = set()
        for element in self.elements:
            names |= element.expr.identifiers()
        return names

    @property
    def length(self) -> int:
        """Number of cycles spanned by the sequence (sum of delays)."""
        return sum(e.delay for e in self.elements)


@dataclass
class SvaProperty:
    """A property body: either a plain sequence or an implication."""

    antecedent: Optional[SvaSequence]
    consequent: SvaSequence
    overlapping: bool = True  # |-> vs |=>

    def identifiers(self) -> set[str]:
        names = self.consequent.identifiers()
        if self.antecedent is not None:
            names |= self.antecedent.identifiers()
        return names

    @property
    def is_implication(self) -> bool:
        return self.antecedent is not None


@dataclass
class ClockEvent:
    """A clocking event ``@(posedge clk)`` / ``@(negedge clk)``."""

    edge: str  # "posedge" | "negedge"
    signal: str


# --------------------------------------------------------------------------- #
# Module items
# --------------------------------------------------------------------------- #


@dataclass
class ModuleItem:
    """Base class for items appearing in a module body."""

    line: int = 0


@dataclass
class Range:
    """A packed range ``[msb:lsb]`` with constant bounds."""

    msb: Expression
    lsb: Expression

    def __str__(self) -> str:
        return f"[{self.msb}:{self.lsb}]"


@dataclass
class Port(ModuleItem):
    """An ANSI-style port declaration."""

    direction: str = "input"  # "input" | "output" | "inout"
    net_type: str = "wire"  # "wire" | "reg" | "logic"
    name: str = ""
    range: Optional[Range] = None
    signed: bool = False


@dataclass
class NetDecl(ModuleItem):
    """A ``wire``/``reg``/``logic``/``integer`` declaration (one or more names)."""

    kind: str = "wire"
    names: list[str] = field(default_factory=list)
    range: Optional[Range] = None
    signed: bool = False
    initial: Optional[Expression] = None


@dataclass
class ParamDecl(ModuleItem):
    """A ``parameter`` or ``localparam`` declaration."""

    name: str = ""
    value: Expression = field(default_factory=lambda: Number(0))
    local: bool = False
    range: Optional[Range] = None


@dataclass
class ContinuousAssign(ModuleItem):
    """A continuous assignment ``assign lhs = rhs;``."""

    target: Expression = field(default_factory=lambda: Identifier(""))
    value: Expression = field(default_factory=lambda: Identifier(""))


@dataclass
class SensitivityItem:
    """One entry of an ``always @(...)`` sensitivity list."""

    edge: Optional[str]  # "posedge" | "negedge" | None for level sensitivity
    signal: str


@dataclass
class AlwaysBlock(ModuleItem):
    """An ``always`` block (clocked or combinational)."""

    sensitivity: list[SensitivityItem] = field(default_factory=list)
    star: bool = False  # always @(*)
    body: Statement = field(default_factory=Block)
    keyword: str = "always"  # "always" | "always_ff" | "always_comb"

    @property
    def is_clocked(self) -> bool:
        return any(item.edge is not None for item in self.sensitivity)


@dataclass
class InitialBlock(ModuleItem):
    """An ``initial`` block (used only for register initialisation)."""

    body: Statement = field(default_factory=Block)


@dataclass
class PropertyDecl(ModuleItem):
    """A named property declaration ``property p; @(posedge clk) ... endproperty``."""

    name: str = ""
    clock: Optional[ClockEvent] = None
    disable_iff: Optional[Expression] = None
    body: SvaProperty = field(
        default_factory=lambda: SvaProperty(None, SvaSequence([SequenceElement(0, Number(1))]))
    )


@dataclass
class ConcurrentAssertion(ModuleItem):
    """A concurrent assertion ``label: assert property (...) else $error(...);``."""

    label: str = ""
    property_name: Optional[str] = None  # reference to a named PropertyDecl
    inline: Optional[PropertyDecl] = None  # inline property spec
    kind: str = "assert"  # "assert" | "assume" | "cover"
    error_message: str = ""


@dataclass
class PortConnection:
    """One named connection in an instantiation ``.port(expr)``."""

    port: str
    expr: Optional[Expression]


@dataclass
class Instantiation(ModuleItem):
    """A module instantiation ``sub #(params) inst (.a(x), ...);``."""

    module_name: str = ""
    instance_name: str = ""
    connections: list[PortConnection] = field(default_factory=list)
    parameter_overrides: dict[str, Expression] = field(default_factory=dict)


@dataclass
class Module:
    """A parsed module."""

    name: str
    ports: list[Port] = field(default_factory=list)
    parameters: list[ParamDecl] = field(default_factory=list)
    items: list[ModuleItem] = field(default_factory=list)
    line: int = 0

    def items_of_type(self, item_type: type) -> list:
        """Return all body items of a given type, in source order."""
        return [item for item in self.items if isinstance(item, item_type)]

    @property
    def assertions(self) -> list[ConcurrentAssertion]:
        return self.items_of_type(ConcurrentAssertion)

    @property
    def properties(self) -> list[PropertyDecl]:
        return self.items_of_type(PropertyDecl)

    def find_property(self, name: str) -> Optional[PropertyDecl]:
        for prop in self.properties:
            if prop.name == name:
                return prop
        return None


@dataclass
class SourceUnit:
    """A parsed source file: one or more modules."""

    modules: list[Module] = field(default_factory=list)
    text: str = ""

    def find_module(self, name: str) -> Optional[Module]:
        for module in self.modules:
            if module.name == name:
                return module
        return None

    @property
    def top(self) -> Module:
        """The last module in the file is treated as the top by convention."""
        if not self.modules:
            raise ValueError("source unit contains no modules")
        return self.modules[-1]


AnyAssignTarget = Union[Identifier, BitSelect, PartSelect, Concat]


def assignment_targets(statement: Statement) -> list[str]:
    """Return the base signal names assigned anywhere inside ``statement``."""
    names: list[str] = []
    for node in statement.walk():
        if isinstance(node, Assign):
            names.extend(_target_names(node.target))
    return names


def _target_names(target: Expression) -> list[str]:
    if isinstance(target, Identifier):
        return [target.name]
    if isinstance(target, (BitSelect, PartSelect)):
        return _target_names(target.base)
    if isinstance(target, Concat):
        names: list[str] = []
        for part in target.parts:
            names.extend(_target_names(part))
        return names
    return []


def statement_expressions(statement: Statement) -> Iterator[Expression]:
    """Yield every expression appearing inside ``statement`` (conditions, RHS, LHS)."""
    for node in statement.walk():
        if isinstance(node, Assign):
            yield node.target
            yield node.value
        elif isinstance(node, If):
            yield node.condition
        elif isinstance(node, Case):
            yield node.subject
            for item in node.items:
                yield from item.labels
        elif isinstance(node, For):
            yield node.init_value
            yield node.condition
            yield node.step_value
        elif isinstance(node, SystemTaskCall):
            yield from node.args
