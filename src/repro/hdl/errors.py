"""Diagnostics and exception types shared by the HDL front end."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """Severity level of a diagnostic emitted by the front end."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """A single compiler diagnostic.

    Attributes:
        severity: how serious the diagnostic is.
        message: human-readable description.
        line: 1-based source line the diagnostic refers to (0 = unknown).
        column: 1-based source column (0 = unknown).
        code: short machine-readable identifier, e.g. ``"undeclared-signal"``.
    """

    severity: Severity
    message: str
    line: int = 0
    column: int = 0
    code: str = ""

    def render(self) -> str:
        """Format the diagnostic the way a command-line compiler would."""
        location = f"{self.line}:{self.column}: " if self.line else ""
        tag = f" [{self.code}]" if self.code else ""
        return f"{location}{self.severity.value}: {self.message}{tag}"


class HdlError(Exception):
    """Base class for all HDL front-end errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0, code: str = ""):
        super().__init__(message)
        self.message = message
        self.line = line
        self.column = column
        self.code = code

    def to_diagnostic(self) -> Diagnostic:
        """Convert the exception into an error-severity diagnostic."""
        return Diagnostic(
            severity=Severity.ERROR,
            message=self.message,
            line=self.line,
            column=self.column,
            code=self.code,
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.to_diagnostic().render()


class LexError(HdlError):
    """Raised when the lexer encounters an invalid character or literal."""


class ParseError(HdlError):
    """Raised when the parser cannot match the token stream to the grammar."""


class ElaborationError(HdlError):
    """Raised when a structurally valid design cannot be elaborated."""


class LintError(HdlError):
    """Raised when semantic checking finds a fatal problem."""


@dataclass
class DiagnosticSink:
    """Accumulates diagnostics produced while processing one source file."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def error(self, message: str, line: int = 0, column: int = 0, code: str = "") -> None:
        self.diagnostics.append(
            Diagnostic(Severity.ERROR, message, line=line, column=column, code=code)
        )

    def warning(self, message: str, line: int = 0, column: int = 0, code: str = "") -> None:
        self.diagnostics.append(
            Diagnostic(Severity.WARNING, message, line=line, column=column, code=code)
        )

    def info(self, message: str, line: int = 0, column: int = 0, code: str = "") -> None:
        self.diagnostics.append(
            Diagnostic(Severity.INFO, message, line=line, column=column, code=code)
        )

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def extend(self, other: "DiagnosticSink") -> None:
        self.diagnostics.extend(other.diagnostics)

    def render(self) -> str:
        return "\n".join(d.render() for d in self.diagnostics)
