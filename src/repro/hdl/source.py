"""Source-text utilities: line extraction, line replacement, normalisation.

Fix candidates produced by the repair model are *line rewrites*, so the whole
project needs a small, well-tested set of helpers for working with source
lines: pull a line out of a file, put a replacement back, and normalise lines
for comparison (the paper judges a repair correct by comparing the suggested
buggy line with the golden answer).
"""

from __future__ import annotations

import re
from dataclasses import dataclass


@dataclass
class SourceFile:
    """A Verilog source file held as text with convenient line access."""

    text: str

    @property
    def lines(self) -> list[str]:
        return self.text.split("\n")

    @property
    def line_count(self) -> int:
        return len(self.lines)

    def line(self, number: int) -> str:
        """Return 1-based line ``number`` (without trailing newline)."""
        lines = self.lines
        if not 1 <= number <= len(lines):
            raise IndexError(f"line {number} out of range 1..{len(lines)}")
        return lines[number - 1]

    def with_line_replaced(self, number: int, new_line: str) -> "SourceFile":
        """Return a new source file with 1-based line ``number`` replaced."""
        lines = self.lines
        if not 1 <= number <= len(lines):
            raise IndexError(f"line {number} out of range 1..{len(lines)}")
        indentation = leading_whitespace(lines[number - 1])
        replacement = new_line if new_line.startswith((" ", "\t")) else indentation + new_line.strip()
        new_lines = lines[:number - 1] + [replacement] + lines[number:]
        return SourceFile(text="\n".join(new_lines))

    def find_line(self, fragment: str) -> int:
        """Return the first 1-based line number whose normalised text matches
        the normalised ``fragment`` (exact match), or containing it, or 0."""
        target = normalize_line(fragment)
        if not target:
            return 0
        for index, line in enumerate(self.lines, start=1):
            if normalize_line(line) == target:
                return index
        for index, line in enumerate(self.lines, start=1):
            if target in normalize_line(line):
                return index
        return 0

    def code_line_numbers(self) -> list[int]:
        """1-based numbers of lines that contain actual code (not blank/comment)."""
        numbers = []
        for index, line in enumerate(self.lines, start=1):
            stripped = strip_comment(line).strip()
            if stripped:
                numbers.append(index)
        return numbers


def leading_whitespace(line: str) -> str:
    """Return the leading whitespace of ``line``."""
    return line[: len(line) - len(line.lstrip())]


def strip_comment(line: str) -> str:
    """Remove a trailing ``//`` comment from a single line (string-unaware by design:
    the corpus never embeds ``//`` inside string literals)."""
    index = line.find("//")
    if index >= 0:
        return line[:index]
    return line


def normalize_line(line: str) -> str:
    """Normalise a code line for comparison: drop comments, collapse whitespace."""
    code = strip_comment(line)
    code = code.strip()
    code = re.sub(r"\s+", " ", code)
    # Remove spaces around punctuation so `a<=b;` and `a <= b ;` compare equal.
    code = re.sub(r"\s*([(){}\[\],;:=<>!&|^~+\-*/%@#?])\s*", r"\1", code)
    return code


def extract_line(text: str, number: int) -> str:
    """Convenience wrapper: 1-based line extraction from raw text."""
    return SourceFile(text).line(number)


def replace_line(text: str, number: int, new_line: str) -> str:
    """Convenience wrapper: 1-based line replacement in raw text."""
    return SourceFile(text).with_line_replaced(number, new_line).text


def lines_equivalent(left: str, right: str) -> bool:
    """True when two code lines are equal after normalisation."""
    return normalize_line(left) == normalize_line(right)


def count_code_lines(text: str) -> int:
    """Number of non-blank, non-comment lines (used for the length bins of Table II)."""
    return len(SourceFile(text).code_line_numbers())
