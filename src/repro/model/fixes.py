"""Candidate-fix generation for a suspected buggy line.

Repairs in this task are single-line rewrites, so the space of plausible
fixes for a line is exactly the space of single-line edits: operator swaps,
constant perturbations, signal substitutions, condition negations and
structural assignment edits.  The same edit library that the bug injector
uses (:mod:`repro.bugs.mutators`) therefore doubles as the fix generator --
if a bug was created by one edit, the inverse edit is in the candidate pool.

Each candidate carries a *pattern* identifier (the mutation operator name);
the SFT stage learns a weight per pattern from the training pairs, which is
what lets the model prefer, e.g., "flip the condition polarity" for Cond bugs
and "adjust the constant" for Value bugs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bugs.mutators import MutationCandidate, enumerate_mutations
from repro.hdl.source import lines_equivalent, strip_comment
from repro.model.case import RepairCase

#: every pattern id the fix generator can emit (used to size the weight table).
FIX_PATTERNS: tuple[str, ...] = (
    "op_eq_to_neq",
    "op_neq_to_eq",
    "op_and_to_or",
    "op_or_to_and",
    "op_ge_to_gt",
    "op_lt_to_le",
    "op_gt_to_ge",
    "op_shl_to_shr",
    "op_shr_to_shl",
    "op_plus_to_minus",
    "op_minus_to_plus",
    "op_bitand_to_bitor",
    "op_bitor_to_bitand",
    "op_xor_to_and",
    "value_literal_change",
    "value_width_change",
    "value_decimal_change",
    "var_substitution",
    "cond_drop_negation",
    "cond_add_negation",
    "assign_drop_term",
    "assign_freeze_register",
    "keep_line",
)


@dataclass(frozen=True)
class FixCandidate:
    """One candidate rewrite of a suspected buggy line."""

    line_number: int
    original_line: str
    fixed_line: str
    pattern: str
    description: str

    @property
    def is_noop(self) -> bool:
        return lines_equivalent(self.original_line, self.fixed_line)


def ranked_scope_signals(case: RepairCase, line: str) -> list[str]:
    """In-scope signals ordered by relevance to the failing assertions.

    Signals sampled by the failing assertion come first, then the rest of the
    cone of influence, then everything else -- this ordering is what the
    ``var_substitution`` fix pattern explores first.
    """
    all_signals = case.in_scope_signals()
    asserted = [s for s in all_signals if s in case.asserted_signals]
    cone = [s for s in all_signals if s in case.cone_signals and s not in case.asserted_signals]
    rest = [s for s in all_signals if s not in case.asserted_signals and s not in case.cone_signals]
    ordered = asserted + cone + rest
    return [s for s in ordered if s not in ("clk",)]


def generate_fix_candidates(
    case: RepairCase, line_number: int, max_candidates: int = 24
) -> list[FixCandidate]:
    """All candidate rewrites of one line, deduplicated and capped."""
    original = case.line_text(line_number)
    scope = ranked_scope_signals(case, original)
    mutations: list[MutationCandidate] = enumerate_mutations(original, scope)
    candidates: list[FixCandidate] = []
    seen: set[str] = set()
    for mutation in mutations:
        key = " ".join(strip_comment(mutation.buggy_line).split())
        if not key or key in seen:
            continue
        seen.add(key)
        candidates.append(
            FixCandidate(
                line_number=line_number,
                original_line=original,
                fixed_line=mutation.buggy_line,
                pattern=mutation.mutation_name,
                description=mutation.description,
            )
        )
        if len(candidates) >= max_candidates:
            break
    # The "keep the line" candidate gives the policy an explicit way to say
    # "this line is fine after all"; it is never the correct answer for a real
    # bug, so SFT learns to push its weight down.
    candidates.append(
        FixCandidate(
            line_number=line_number,
            original_line=original,
            fixed_line=original,
            pattern="keep_line",
            description="keep the line unchanged",
        )
    )
    return candidates


def find_matching_candidate(
    candidates: list[FixCandidate], target_line: str
) -> FixCandidate | None:
    """Locate the candidate equivalent to ``target_line`` (the golden fix)."""
    for candidate in candidates:
        if lines_equivalent(candidate.fixed_line, target_line):
            return candidate
    return None
