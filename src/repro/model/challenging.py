"""Challenging-case mining for the preference-optimisation stage.

Following Section III-C of the paper: the SFT model is evaluated on every
sample of the SVA-Bug training set with n = 20 responses per question.
Samples with at least one incorrect response are the *challenging cases*;
each becomes a preference triple (question, correct answer, incorrect
responses) for DPO.

Correctness is judged **semantically**, not textually: a response that
matches the golden answer is accepted immediately, and any other response is
applied to the buggy source and re-verified end to end (compile, simulate on
fresh stimulus seeds, check the assertions) by
:class:`repro.eval.verifier.SemanticVerifier`.  A behaviourally equivalent
rewrite of the golden line therefore never becomes a DPO negative, and a
textually plausible fix that still trips an assertion always does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.dataaug.datasets import SvaBugEntry
from repro.hdl.source import lines_equivalent
from repro.model.case import RepairCase
from repro.model.response import RepairEngine, RepairResponse, candidate_key

if TYPE_CHECKING:  # imported lazily at runtime: repro.eval builds on repro.model
    from repro.eval.verifier import SemanticVerifier


@dataclass
class PreferenceTriple:
    """(x, p, n[k]) of Section III-C: a question, its golden answer, and the
    distinct incorrect responses the SFT model produced for it."""

    case: RepairCase
    positive_line_number: int
    positive_fixed_line: str
    negatives: list[tuple[int, str]] = field(default_factory=list)

    @property
    def negative_count(self) -> int:
        return len(self.negatives)


def response_matches_golden(entry: SvaBugEntry, response: RepairResponse) -> bool:
    """The textual fast path: the suggested buggy line and fix equal the
    golden answer after normalisation (location and corrected code)."""
    right_location = response.line_number == entry.line_number or lines_equivalent(
        response.bug_line, entry.buggy_line
    )
    right_fix = lines_equivalent(response.fixed_line, entry.golden_line)
    return right_location and right_fix


def response_is_correct(
    entry: SvaBugEntry,
    response: RepairResponse,
    verifier: Optional["SemanticVerifier"] = None,
    seeds: Optional[Sequence[int]] = None,
) -> bool:
    """Semantic correctness of one response for one training entry.

    A golden-equivalent response is correct by definition.  Anything else is
    patched into the buggy source and must clear the full verification loop
    on independent stimulus seeds.  Without a verifier only the textual fast
    path applies (the pre-verifier behaviour).
    """
    if response_matches_golden(entry, response):
        return True
    if verifier is None:
        return False
    from repro.eval.verifier import CandidateFix, derive_verification_seeds

    if seeds is None:
        seeds = derive_verification_seeds(entry.name, entry.stimulus_seed)
    fix = CandidateFix(
        line_number=response.line_number,
        fixed_line=response.fixed_line,
        bug_line=response.bug_line,
    )
    verdict = verifier.verify(entry.buggy_source, fix, seeds, cycles=entry.stimulus_cycles)
    # A vacuous pass (no assertion ever exercised -- e.g. the response
    # rewrote the assertion itself) is not a correct repair.
    return verdict.passed and verdict.exercised


def collect_challenging_cases(
    engine: RepairEngine,
    entries: Sequence[SvaBugEntry],
    samples: int = 20,
    temperature: float = 0.2,
    seed: int = 31,
    verifier: Optional["SemanticVerifier"] = None,
) -> tuple[list[PreferenceTriple], dict[str, int]]:
    """Sample the SFT model on the training questions and mine the failures.

    Responses are deduplicated *before* verification, so each distinct
    rewrite is simulated at most once per entry (the verifier additionally
    memoises across entries that share a source).

    Args:
        verifier: the semantic verifier to judge non-golden responses with;
            one is constructed on demand when omitted.

    Returns:
        (triples, stats) where stats counts evaluated/challenging cases and
        incorrect responses.
    """
    if verifier is None:
        from repro.eval.verifier import SemanticVerifier

        verifier = SemanticVerifier()
    triples: list[PreferenceTriple] = []
    stats = {"evaluated": 0, "challenging": 0, "incorrect_responses": 0}
    for index, entry in enumerate(entries):
        case = RepairCase.from_entry(entry)
        if case.design is None:
            continue
        stats["evaluated"] += 1
        responses = engine.propose(
            case, samples=samples, temperature=temperature, seed=seed + index
        )
        distinct: dict[str, RepairResponse] = {}
        for response in responses:
            distinct.setdefault(
                candidate_key(response.line_number, response.fixed_line), response
            )
        negatives: list[tuple[int, str]] = []
        for response in distinct.values():
            if response_is_correct(entry, response, verifier=verifier):
                continue
            negatives.append((response.line_number, response.fixed_line))
        stats["incorrect_responses"] += len(negatives)
        if negatives:
            stats["challenging"] += 1
            triples.append(
                PreferenceTriple(
                    case=case,
                    positive_line_number=entry.line_number,
                    positive_fixed_line=entry.golden_line,
                    negatives=negatives,
                )
            )
    return triples, stats
