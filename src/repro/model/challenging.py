"""Challenging-case mining for the preference-optimisation stage.

Following Section III-C of the paper: the SFT model is evaluated on every
sample of the SVA-Bug training set with n = 20 responses per question.
Correctness is judged by comparing the suggested buggy line (and fix) with
the golden answer.  Samples with at least one incorrect response are the
*challenging cases*; each becomes a preference triple (question, correct
answer, incorrect responses) for DPO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.dataaug.datasets import SvaBugEntry
from repro.hdl.source import lines_equivalent
from repro.model.case import RepairCase
from repro.model.response import RepairEngine, RepairResponse


@dataclass
class PreferenceTriple:
    """(x, p, n[k]) of Section III-C: a question, its golden answer, and the
    distinct incorrect responses the SFT model produced for it."""

    case: RepairCase
    positive_line_number: int
    positive_fixed_line: str
    negatives: list[tuple[int, str]] = field(default_factory=list)

    @property
    def negative_count(self) -> int:
        return len(self.negatives)


def response_is_correct(entry: SvaBugEntry, response: RepairResponse) -> bool:
    """The paper's correctness check for challenging-case mining: the suggested
    buggy line must match the golden answer (location and corrected code)."""
    right_location = response.line_number == entry.line_number or lines_equivalent(
        response.bug_line, entry.buggy_line
    )
    right_fix = lines_equivalent(response.fixed_line, entry.golden_line)
    return right_location and right_fix


def collect_challenging_cases(
    engine: RepairEngine,
    entries: Sequence[SvaBugEntry],
    samples: int = 20,
    temperature: float = 0.2,
    seed: int = 31,
) -> tuple[list[PreferenceTriple], dict[str, int]]:
    """Sample the SFT model on the training questions and mine the failures.

    Returns:
        (triples, stats) where stats counts evaluated/challenging cases and
        incorrect responses.
    """
    triples: list[PreferenceTriple] = []
    stats = {"evaluated": 0, "challenging": 0, "incorrect_responses": 0}
    for index, entry in enumerate(entries):
        case = RepairCase.from_entry(entry)
        if case.design is None:
            continue
        stats["evaluated"] += 1
        responses = engine.propose(
            case, samples=samples, temperature=temperature, seed=seed + index
        )
        negatives: list[tuple[int, str]] = []
        seen: set[str] = set()
        for response in responses:
            if response_is_correct(entry, response):
                continue
            key = f"{response.line_number}::{' '.join(response.fixed_line.split())}"
            if key in seen:
                continue
            seen.add(key)
            negatives.append((response.line_number, response.fixed_line))
        stats["incorrect_responses"] += len(negatives)
        if negatives:
            stats["challenging"] += 1
            triples.append(
                PreferenceTriple(
                    case=case,
                    positive_line_number=entry.line_number,
                    positive_fixed_line=entry.golden_line,
                    negatives=negatives,
                )
            )
    return triples, stats
