"""Repair responses and the engine interface shared by all models.

Every model in the comparison (AssertSolver, its SFT-only ablation, the base
model, and the proxy engines standing in for the closed/open-source LLMs)
implements :class:`RepairEngine`: given a :class:`~repro.model.case.RepairCase`
it returns ``n`` :class:`RepairResponse` objects, the JSON-shaped output of
Fig. 2 (III).
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.hdl.source import normalize_line
from repro.model.case import RepairCase


def candidate_key(line_number: int, fixed_line: str) -> str:
    """Canonical identity of one candidate repair (line + normalised rewrite).

    Shared by every dedup site (top-k ranking, exact enumeration,
    challenging-case mining) so `y<=a|b;` and `y <= a | b;` always count as
    the same candidate.
    """
    return f"{line_number}::{normalize_line(fixed_line)}"


@dataclass
class RepairResponse:
    """One proposed repair: the JSON object the paper requires models to emit."""

    bug_line: str
    fixed_line: str
    line_number: int
    explanation: str = ""
    confidence: float = 0.0
    metadata: dict = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialise to the JSON format requested at inference time."""
        return json.dumps(
            {
                "bug_line": self.bug_line.strip(),
                "fixed_line": self.fixed_line.strip(),
                "line_number": self.line_number,
                "explanation": self.explanation,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "RepairResponse":
        """Parse a JSON response (raises ``ValueError`` on malformed input)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed JSON response: {exc}") from exc
        required = ("bug_line", "fixed_line", "line_number")
        missing = [key for key in required if key not in payload]
        if missing:
            raise ValueError(f"JSON response missing fields: {', '.join(missing)}")
        return cls(
            bug_line=str(payload["bug_line"]),
            fixed_line=str(payload["fixed_line"]),
            line_number=int(payload["line_number"]),
            explanation=str(payload.get("explanation", "")),
        )

    @property
    def is_noop(self) -> bool:
        """True when the proposed fix does not change the line at all."""
        return self.bug_line.strip() == self.fixed_line.strip()


class RepairEngine(abc.ABC):
    """Interface implemented by every repair model in the evaluation."""

    #: display name used in tables (e.g. "AssertSolver", "o1-preview (proxy)").
    name: str = "engine"

    @abc.abstractmethod
    def propose(
        self, case: RepairCase, samples: int = 20, temperature: float = 0.2, seed: int = 0
    ) -> list[RepairResponse]:
        """Produce ``samples`` candidate repairs for one case."""

    def propose_one(self, case: RepairCase, seed: int = 0) -> RepairResponse:
        """Convenience: a single (greedy-ish) response."""
        responses = self.propose(case, samples=1, temperature=0.05, seed=seed)
        return responses[0]

    def propose_topk(
        self,
        case: RepairCase,
        k: int = 5,
        samples: int = 20,
        temperature: float = 0.2,
        seed: int = 0,
    ) -> list[RepairResponse]:
        """Up to ``k`` *distinct* candidate repairs, best first.

        The default implementation draws ``samples`` responses, merges the
        duplicates (same line, equivalent rewrite) and ranks the survivors by
        how often they were sampled, then by confidence -- the empirical
        ranking used for pass@k when an engine has no exact candidate
        enumeration.  Engines with tractable candidate spaces should override
        this with an exact top-k.
        """
        budget = max(samples, 2 * k)
        responses = self.propose(case, samples=budget, temperature=temperature, seed=seed)
        merged: dict[str, tuple[int, float, int, RepairResponse]] = {}
        for index, response in enumerate(responses):
            key = candidate_key(response.line_number, response.fixed_line)
            count, best_confidence, first_index, first = merged.get(
                key, (0, response.confidence, index, response)
            )
            merged[key] = (
                count + 1,
                max(best_confidence, response.confidence),
                first_index,
                first,
            )
        ranked = sorted(
            merged.values(), key=lambda item: (-item[0], -item[1], item[2])
        )
        return [item[3] for item in ranked[:k]]


def responses_as_json(responses: Sequence[RepairResponse]) -> str:
    """Render a batch of responses as a JSON array (used by examples/logging)."""
    return json.dumps(
        [json.loads(response.to_json()) for response in responses], indent=2
    )
