"""The repair-task input: spec + buggy SystemVerilog + failure logs.

A :class:`RepairCase` is what the model (and every baseline) receives at
inference time -- exactly the three ingredients of Fig. 2 (III).  The class
also caches the structural analyses that feature extraction needs (compiled
design, cone of influence of the failing assertions, spec keywords) so the
evaluation runner can share them across models and samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

from repro.corpus.spec import spec_keywords
from repro.dataaug.datasets import SvaBugEntry
from repro.hdl.elaborate import AssertionSpec, ElaboratedDesign
from repro.hdl.lint import compile_source
from repro.hdl.source import SourceFile, strip_comment
from repro.sva.logs import FailureLog, parse_failure_log


@dataclass
class RepairCase:
    """One assertion-failure instance presented to a repair engine."""

    name: str
    spec: str
    buggy_source: str
    logs: str
    origin: str = "machine"
    design_name: str = ""
    stimulus_seed: int = 0
    stimulus_cycles: int = 48
    golden_line: Optional[str] = None
    golden_line_number: Optional[int] = None
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_entry(cls, entry: SvaBugEntry) -> "RepairCase":
        """Build a case from one dataset entry (ground truth kept for scoring)."""
        return cls(
            name=entry.name,
            spec=entry.spec,
            buggy_source=entry.buggy_source,
            logs=entry.logs,
            origin=entry.origin,
            design_name=entry.design_name,
            stimulus_seed=entry.stimulus_seed,
            stimulus_cycles=entry.stimulus_cycles,
            golden_line=entry.golden_line,
            golden_line_number=entry.line_number,
            metadata={
                "edit_kind": entry.edit_kind,
                "is_conditional": entry.is_conditional,
                "is_direct": entry.is_direct,
                "bug_type_labels": entry.bug_type_labels,
                "length_bin": entry.length_bin,
                "family": entry.family,
            },
        )

    # ------------------------------------------------------------------ #
    # cached analyses
    # ------------------------------------------------------------------ #

    @cached_property
    def source_file(self) -> SourceFile:
        return SourceFile(self.buggy_source)

    @cached_property
    def design(self) -> Optional[ElaboratedDesign]:
        """The elaborated buggy design, or ``None`` when it does not compile."""
        result = compile_source(self.buggy_source)
        return result.design if result.ok else None

    @cached_property
    def failure_log(self) -> FailureLog:
        return parse_failure_log(self.logs)

    @cached_property
    def failing_assertions(self) -> list[AssertionSpec]:
        """Assertion specs named in the failure log (resolved in the design)."""
        design = self.design
        if design is None:
            return []
        failing_names = set(self.failure_log.failed_assertions)
        return [spec for spec in design.assertions if spec.name in failing_names]

    @cached_property
    def asserted_signals(self) -> set[str]:
        """Signals referenced by the failing assertions."""
        signals: set[str] = set()
        for spec in self.failing_assertions:
            signals |= spec.identifiers()
        if not signals and self.design is not None:
            for spec in self.design.assertions:
                signals |= spec.identifiers()
        return signals

    @cached_property
    def cone_signals(self) -> set[str]:
        """Cone of influence (transitive fan-in) of the asserted signals."""
        design = self.design
        if design is None:
            return set()
        return design.cone_of_influence(self.asserted_signals)

    @cached_property
    def dataflow(self):
        """The buggy design's :class:`~repro.analyze.dfg.SignalDfg`, or None."""
        design = self.design
        if design is None:
            return None
        from repro.analyze.dfg import SignalDfg

        return SignalDfg(design)

    @cached_property
    def failing_cone(self) -> set[str]:
        """Cone of influence of the *failing* assertions, per the DFG.

        Unlike :attr:`cone_signals` (fan-in of the asserted body signals),
        this includes each failing assertion's clocking signal and
        ``disable iff`` identifiers -- the exact signal set the verifier's
        cone screen uses.  Falls back to :attr:`cone_signals` when no
        failing assertion resolves in the design.
        """
        dfg = self.dataflow
        if dfg is None:
            return set(self.cone_signals)
        cone: set[str] = set()
        for spec in self.failing_assertions:
            cone |= dfg.assertion_cone(spec)
        return cone if cone else set(self.cone_signals)

    @cached_property
    def analysis_diagnostics_by_line(self) -> dict[int, int]:
        """line number -> count of advisory analysis-pass diagnostics there.

        Runs the non-lint (analysis-tier) passes of :mod:`repro.analyze`;
        lines that trip them (dead writes, width truncation, inferred
        latches, ...) are disproportionately often the injected bug line.
        """
        design = self.design
        if design is None:
            return {}
        from repro.analyze.passes import registered_passes, run_passes

        passes = [p for p in registered_passes() if not p.lint]
        sink = run_passes(design, passes=passes, dfg=self.dataflow)
        counts: dict[int, int] = {}
        for diag in sink.diagnostics:
            if diag.line:
                counts[diag.line] = counts.get(diag.line, 0) + 1
        return counts

    @cached_property
    def spec_tokens(self) -> set[str]:
        return spec_keywords(self.spec)

    @cached_property
    def code_line_numbers(self) -> list[int]:
        return self.source_file.code_line_numbers()

    @cached_property
    def assigned_by_line(self) -> dict[int, list[str]]:
        """line number -> signals assigned on that line (from the elaborated design)."""
        assigned: dict[int, list[str]] = {}
        design = self.design
        if design is None:
            return assigned
        for signal, lines in design.driver_lines.items():
            for line in lines:
                assigned.setdefault(line, []).append(signal)
        return assigned

    @cached_property
    def assertion_region_lines(self) -> set[int]:
        """Lines belonging to property/assert constructs (never repair targets)."""
        region: set[int] = set()
        inside = False
        for number, line in enumerate(self.source_file.lines, start=1):
            stripped = strip_comment(line).strip().lower()
            if stripped.startswith("property"):
                inside = True
            if inside:
                region.add(number)
            if stripped.startswith("endproperty"):
                inside = False
            if "assert property" in stripped or stripped.startswith(("assert", "assume", "cover")):
                region.add(number)
        return region

    # ------------------------------------------------------------------ #
    # candidate lines for repair
    # ------------------------------------------------------------------ #

    def candidate_lines(self) -> list[int]:
        """Functional lines a repair could plausibly target."""
        structural_prefixes = (
            "module",
            "endmodule",
            "begin",
            "end",
            "endcase",
            ");",
            "(",
        )
        candidates: list[int] = []
        for number in self.code_line_numbers:
            if number in self.assertion_region_lines:
                continue
            stripped = strip_comment(self.source_file.line(number)).strip().lower()
            if not stripped:
                continue
            if any(stripped.startswith(prefix) for prefix in structural_prefixes):
                continue
            candidates.append(number)
        return candidates

    def line_text(self, number: int) -> str:
        return self.source_file.line(number)

    def in_scope_signals(self) -> list[str]:
        design = self.design
        if design is None:
            return []
        return sorted(design.signals)
