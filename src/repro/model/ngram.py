"""An interpolated n-gram language model over Verilog tokens.

This is the pretraining substrate of the repair policy: it is fitted on the
Verilog-PT dataset (next-token prediction, the same objective as the paper's
pretraining stage, clause for clause) and later provides the "how unusual is
this line" surprisal feature used by bug localisation, as well as a
naturalness score for ranking candidate fixes.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.model.tokenizer import BOS_TOKEN, EOS_TOKEN, tokenize_line, tokenize_text


@dataclass
class NgramLanguageModel:
    """Interpolated trigram model with additive smoothing.

    The probability of a token given its context mixes unigram, bigram and
    trigram estimates; interpolation weights are fixed (tuned once), additive
    smoothing keeps unseen events finite.
    """

    order: int = 3
    alpha: float = 0.1
    interpolation: tuple[float, float, float] = (0.1, 0.3, 0.6)
    unigrams: Counter = field(default_factory=Counter)
    bigrams: dict = field(default_factory=lambda: defaultdict(Counter))
    trigrams: dict = field(default_factory=lambda: defaultdict(Counter))
    total_tokens: int = 0
    trained_sequences: int = 0

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #

    def fit_sequence(self, tokens: Sequence[str]) -> None:
        """Count one token sequence."""
        padded = [BOS_TOKEN, BOS_TOKEN, *tokens, EOS_TOKEN]
        for index in range(2, len(padded)):
            token = padded[index]
            previous = padded[index - 1]
            previous2 = (padded[index - 2], padded[index - 1])
            self.unigrams[token] += 1
            self.bigrams[previous][token] += 1
            self.trigrams[previous2][token] += 1
            self.total_tokens += 1
        self.trained_sequences += 1

    def fit_text(self, text: str) -> None:
        """Tokenize and count a full text (one corpus entry)."""
        self.fit_sequence(tokenize_text(text))

    def fit_corpus(self, texts: Iterable[str]) -> None:
        for text in texts:
            self.fit_text(text)

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #

    @property
    def vocabulary_size(self) -> int:
        return max(1, len(self.unigrams))

    def _unigram_probability(self, token: str) -> float:
        return (self.unigrams.get(token, 0) + self.alpha) / (
            self.total_tokens + self.alpha * self.vocabulary_size
        )

    def _bigram_probability(self, previous: str, token: str) -> float:
        context = self.bigrams.get(previous)
        if not context:
            return self._unigram_probability(token)
        total = sum(context.values())
        return (context.get(token, 0) + self.alpha) / (total + self.alpha * self.vocabulary_size)

    def _trigram_probability(self, previous2: tuple[str, str], token: str) -> float:
        context = self.trigrams.get(previous2)
        if not context:
            return self._bigram_probability(previous2[1], token)
        total = sum(context.values())
        return (context.get(token, 0) + self.alpha) / (total + self.alpha * self.vocabulary_size)

    def token_probability(self, previous2: tuple[str, str], token: str) -> float:
        """Interpolated probability of ``token`` after the two-token context."""
        lambda1, lambda2, lambda3 = self.interpolation
        return (
            lambda1 * self._unigram_probability(token)
            + lambda2 * self._bigram_probability(previous2[1], token)
            + lambda3 * self._trigram_probability(previous2, token)
        )

    def sequence_log_probability(self, tokens: Sequence[str]) -> float:
        """Sum of log probabilities of a token sequence (natural log)."""
        padded = [BOS_TOKEN, BOS_TOKEN, *tokens, EOS_TOKEN]
        total = 0.0
        for index in range(2, len(padded)):
            probability = self.token_probability(
                (padded[index - 2], padded[index - 1]), padded[index]
            )
            total += math.log(max(probability, 1e-12))
        return total

    def perplexity(self, text: str) -> float:
        """Perplexity of a text under the model (lower = more natural)."""
        tokens = tokenize_text(text)
        if not tokens:
            return 1.0
        log_probability = self.sequence_log_probability(tokens)
        return math.exp(-log_probability / (len(tokens) + 1))

    def line_surprisal(self, line: str) -> float:
        """Average negative log probability per token of one source line."""
        tokens = tokenize_line(line)[1:-1]
        if not tokens:
            return 0.0
        log_probability = self.sequence_log_probability(tokens)
        return -log_probability / (len(tokens) + 1)

    def line_naturalness(self, line: str) -> float:
        """Higher is more natural; used to rank candidate fixes."""
        return -self.line_surprisal(line)
