"""A Verilog-aware tokenizer for the language-model components.

The pretraining stage treats every Verilog-PT entry as a token sequence; this
tokenizer produces those sequences.  It splits source text (and the natural
language around it) into identifiers, numbers, operators and punctuation,
normalising numeric literals so the n-gram model generalises across constant
values.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field

_TOKEN_PATTERN = re.compile(
    r"\d+'[bdhoBDHO][0-9a-fA-F_xXzZ?]+"  # based literals
    r"|[A-Za-z_][A-Za-z0-9_$]*"  # identifiers and keywords
    r"|\d+"  # plain numbers
    r"|\|->|\|=>|<=|>=|==|!=|&&|\|\||<<|>>|##"  # multi-char operators
    r"|[-+*/%&|^~!<>=?:;,.(){}\[\]@#'\"$]"  # single characters
)

#: token emitted in place of any numeric literal (improves n-gram generalisation).
NUMBER_TOKEN = "<num>"

#: tokens bounding a line when scoring lines individually.
BOS_TOKEN = "<bos>"
EOS_TOKEN = "<eos>"
UNKNOWN_TOKEN = "<unk>"


def tokenize_text(text: str, normalise_numbers: bool = True) -> list[str]:
    """Tokenize Verilog (or mixed Verilog/English) text."""
    tokens: list[str] = []
    for match in _TOKEN_PATTERN.finditer(text):
        token = match.group(0)
        if normalise_numbers and (token[0].isdigit()):
            tokens.append(NUMBER_TOKEN)
        else:
            tokens.append(token)
    return tokens


def tokenize_line(line: str, normalise_numbers: bool = True) -> list[str]:
    """Tokenize one source line, wrapped in sentence boundary markers."""
    return [BOS_TOKEN, *tokenize_text(line, normalise_numbers), EOS_TOKEN]


@dataclass
class Vocabulary:
    """Token vocabulary with frequency counts."""

    counts: Counter = field(default_factory=Counter)
    min_count: int = 1

    def add_text(self, text: str) -> None:
        self.counts.update(tokenize_text(text))

    def add_tokens(self, tokens: list[str]) -> None:
        self.counts.update(tokens)

    def __len__(self) -> int:
        return len(self.tokens())

    def __contains__(self, token: str) -> bool:
        return self.counts.get(token, 0) >= self.min_count

    def tokens(self) -> list[str]:
        return [token for token, count in self.counts.items() if count >= self.min_count]

    def map_token(self, token: str) -> str:
        """Map out-of-vocabulary tokens to ``<unk>``."""
        return token if token in self else UNKNOWN_TOKEN

    def coverage(self, text: str) -> float:
        """Fraction of tokens of ``text`` that are in vocabulary."""
        tokens = tokenize_text(text)
        if not tokens:
            return 1.0
        known = sum(1 for t in tokens if t in self)
        return known / len(tokens)

    def most_common(self, limit: int = 20) -> list[tuple[str, int]]:
        return self.counts.most_common(limit)
