"""Inference-time chain-of-thought text for the model's responses.

The paper's model returns, alongside the bug line and the fix, an explanation
of its reasoning (the CoT of Fig. 2 - III).  The reproduction builds that text
from the evidence the policy actually used: the failing assertions from the
log, the cone-of-influence relationship between the suspected line and the
asserted signals, and the chosen fix pattern.
"""

from __future__ import annotations

from repro.hdl.source import strip_comment
from repro.model.case import RepairCase


def build_explanation(
    case: RepairCase,
    line_number: int,
    original_line: str,
    fixed_line: str,
    pattern: str = "",
) -> str:
    """Compose the step-by-step explanation for one proposed repair."""
    failing = case.failure_log.failed_assertions
    assertion_text = ", ".join(failing) if failing else "the reported assertion"
    assigned = case.assigned_by_line.get(line_number, [])
    assigned_text = ", ".join(assigned) if assigned else "the signals driven near this line"
    relation = (
        "drives a signal sampled directly by the failing assertion"
        if set(assigned) & case.asserted_signals
        else "lies in the cone of influence of the signals the assertion samples"
        if set(assigned) & case.cone_signals
        else "is the closest functional statement to the reported failure"
    )
    pattern_text = {
        "cond_add_negation": "the condition's polarity is inverted relative to the specification",
        "cond_drop_negation": "the condition's polarity is inverted relative to the specification",
        "value_literal_change": "the constant does not match the value required by the specification",
        "value_decimal_change": "the constant does not match the value required by the specification",
        "value_width_change": "the literal width does not match the declared signal width",
        "var_substitution": "the statement references the wrong signal",
        "op_plus_to_minus": "the arithmetic operator does not implement the documented behaviour",
        "op_minus_to_plus": "the arithmetic operator does not implement the documented behaviour",
        "assign_drop_term": "the expression is missing a required term",
        "keep_line": "on reflection the statement already matches the specification",
    }.get(pattern, "the statement does not implement the behaviour the specification documents")
    steps = [
        f"Step 1: The log reports failing assertion(s): {assertion_text}.",
        (
            f"Step 2: Those assertions sample {', '.join(sorted(case.asserted_signals)) or 'design outputs'}; "
            "their drivers were traced through the design's dependency graph."
        ),
        (
            f"Step 3: Line {line_number} (`{strip_comment(original_line).strip()}`) assigns {assigned_text} and "
            f"{relation}."
        ),
        f"Step 4: Comparing the line against the specification, {pattern_text}.",
        (
            "Step 5: Rewriting the line as "
            f"`{strip_comment(fixed_line).strip()}` makes the implementation consistent with the "
            "specification, so the failing assertion should now hold."
        ),
    ]
    return "\n".join(steps)
