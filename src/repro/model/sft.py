"""Supervised fine-tuning of the repair policy.

SFT fits the policy weights by maximising the log-likelihood of the golden
answers (the buggy line and its corrected code) over the SVA-Bug dataset,
with the Verilog-Bug dataset as an auxiliary task -- the same data recipe as
the paper's SFT stage.  Because the policy is a pair of linear softmaxes, the
maximum-likelihood gradient has the standard "observed features minus
expected features" form and plain SGD converges quickly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.dataaug.datasets import SvaBugEntry, VerilogBugEntry
from repro.model.case import RepairCase
from repro.model.fixes import find_matching_candidate
from repro.model.policy import RepairPolicy


@dataclass
class SftConfig:
    """Hyper-parameters of the SFT stage."""

    epochs: int = 12
    learning_rate: float = 0.6
    learning_rate_decay: float = 0.85
    l2: float = 1e-3
    #: Per-step ridge penalty on the *localisation* head.  The localisation
    #: features are heavily collinear (``assigns_failing_signal`` is a subset
    #: of ``is_assignment``), and at small training scale the unregularised
    #: MLE parks a large *negative* weight on ``assigns_failing_signal``
    #: while ``is_assignment`` soaks up the shared evidence -- outright
    #: down-ranking the very lines a verification engineer reads first.  The
    #: ridge pulls the solution toward the first-order (gradient-at-zero)
    #: direction, which distributes the shared evidence across the
    #: correlated features and keeps the sign right; the fix head is not
    #: collinear and stays unregularised.
    localisation_l2: float = 0.5
    auxiliary_weight: float = 0.3  # weight of Verilog-Bug (no-assertion) cases
    seed: int = 23


@dataclass
class SftReport:
    """Training diagnostics returned by the trainer."""

    cases_used: int = 0
    cases_skipped: int = 0
    fix_targets_found: int = 0
    epoch_log_likelihood: list[float] = field(default_factory=list)
    final_localisation_accuracy: float = 0.0
    final_fix_accuracy: float = 0.0


def _case_from_verilog_bug(entry: VerilogBugEntry) -> RepairCase:
    return RepairCase(
        name=entry.name,
        spec=entry.spec,
        buggy_source=entry.buggy_source,
        logs="",
        origin="machine",
        design_name=entry.name,
        golden_line=entry.golden_line,
        golden_line_number=entry.line_number,
    )


@dataclass
class _TrainingExample:
    case: RepairCase
    line_number: int
    golden_line: str
    weight: float


class SftTrainer:
    """Fits the policy on the question/answer pairs of the augmented datasets."""

    def __init__(self, policy: RepairPolicy, config: Optional[SftConfig] = None):
        self._policy = policy
        self._config = config or SftConfig()
        self._random = random.Random(self._config.seed)

    # ------------------------------------------------------------------ #
    # dataset preparation
    # ------------------------------------------------------------------ #

    def _prepare(
        self,
        sva_entries: Sequence[SvaBugEntry],
        verilog_bug_entries: Sequence[VerilogBugEntry],
        report: SftReport,
    ) -> list[_TrainingExample]:
        examples: list[_TrainingExample] = []
        for entry in sva_entries:
            case = RepairCase.from_entry(entry)
            if case.design is None or entry.line_number not in case.candidate_lines():
                report.cases_skipped += 1
                continue
            examples.append(
                _TrainingExample(
                    case=case,
                    line_number=entry.line_number,
                    golden_line=entry.golden_line,
                    weight=1.0,
                )
            )
        for entry in verilog_bug_entries:
            case = _case_from_verilog_bug(entry)
            if case.design is None or entry.line_number not in case.candidate_lines():
                report.cases_skipped += 1
                continue
            examples.append(
                _TrainingExample(
                    case=case,
                    line_number=entry.line_number,
                    golden_line=entry.golden_line,
                    weight=self._config.auxiliary_weight,
                )
            )
        report.cases_used = len(examples)
        return examples

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #

    def train(
        self,
        sva_entries: Sequence[SvaBugEntry],
        verilog_bug_entries: Sequence[VerilogBugEntry] = (),
    ) -> SftReport:
        """Run SFT in place on the trainer's policy."""
        report = SftReport()
        examples = self._prepare(sva_entries, verilog_bug_entries, report)
        if not examples:
            return report

        weights = self._policy.weights
        learning_rate = self._config.learning_rate
        for _ in range(self._config.epochs):
            self._random.shuffle(examples)
            epoch_log_likelihood = 0.0
            for example in examples:
                epoch_log_likelihood += self._update_example(example, learning_rate)
            report.epoch_log_likelihood.append(epoch_log_likelihood / len(examples))
            learning_rate *= self._config.learning_rate_decay
            # L2 shrinkage once per epoch keeps the weights bounded.
            weights.localisation *= 1.0 - self._config.l2
            weights.fix_features *= 1.0 - self._config.l2
            weights.fix_patterns *= 1.0 - self._config.l2

        accuracy_loc, accuracy_fix = self._evaluate(examples)
        report.final_localisation_accuracy = accuracy_loc
        report.final_fix_accuracy = accuracy_fix
        report.fix_targets_found = sum(
            1 for example in examples if self._fix_target_index(example) is not None
        )
        return report

    def _update_example(self, example: _TrainingExample, learning_rate: float) -> float:
        """One SGD step on one (question, answer) pair; returns its log-likelihood."""
        policy = self._policy
        weights = policy.weights
        case = example.case

        analysis = policy.analyse(case)
        line_numbers, line_probabilities = policy.line_distribution(case, temperature=1.0)
        line_index = line_numbers.index(example.line_number)
        observed = analysis.line_features[line_index]
        expected = line_probabilities @ analysis.line_features
        weights.localisation += learning_rate * example.weight * (observed - expected)
        # SGD on the ridge-penalised likelihood: the decay is the -l2*w term
        # of the gradient, scaled like the data term.
        weights.localisation *= (
            1.0 - learning_rate * example.weight * self._config.localisation_l2
        )
        log_likelihood = float(np.log(max(line_probabilities[line_index], 1e-12)))

        fix_index = self._fix_target_index(example)
        if fix_index is not None:
            candidates, fix_features, patterns = policy.fix_options(case, example.line_number)
            _, fix_probabilities = policy.fix_distribution(case, example.line_number, temperature=1.0)
            observed_fix = fix_features[fix_index]
            expected_fix = fix_probabilities @ fix_features
            weights.fix_features += learning_rate * example.weight * (observed_fix - expected_fix)
            pattern_update = np.zeros_like(weights.fix_patterns)
            pattern_update[patterns[fix_index]] += 1.0
            for index, probability in enumerate(fix_probabilities):
                pattern_update[patterns[index]] -= probability
            weights.fix_patterns += learning_rate * example.weight * pattern_update
            log_likelihood += float(np.log(max(fix_probabilities[fix_index], 1e-12)))
        return log_likelihood

    def _fix_target_index(self, example: _TrainingExample) -> Optional[int]:
        candidates, _, _ = self._policy.fix_options(example.case, example.line_number)
        match = find_matching_candidate(candidates, example.golden_line)
        if match is None:
            return None
        return candidates.index(match)

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #

    def _evaluate(self, examples: list[_TrainingExample]) -> tuple[float, float]:
        """Greedy localisation / fix accuracy on the training examples."""
        policy = self._policy
        correct_lines = 0
        correct_fixes = 0
        fix_total = 0
        for example in examples:
            line_numbers, probabilities = policy.line_distribution(example.case, temperature=1.0)
            if not line_numbers:
                continue
            best_line = line_numbers[int(np.argmax(probabilities))]
            if best_line == example.line_number:
                correct_lines += 1
            fix_index = self._fix_target_index(example)
            if fix_index is None:
                continue
            fix_total += 1
            candidates, fix_probabilities = policy.fix_distribution(
                example.case, example.line_number, temperature=1.0
            )
            if int(np.argmax(fix_probabilities)) == fix_index:
                correct_fixes += 1
        localisation_accuracy = correct_lines / len(examples) if examples else 0.0
        fix_accuracy = correct_fixes / fix_total if fix_total else 0.0
        return localisation_accuracy, fix_accuracy
