"""Direct Preference Optimisation on the repair policy.

Implements the loss of Section III-C:

    L_DPO = -E[ log sigma( beta * ( log pi_theta(p|x)/pi_ref(p|x)
                                   - log pi_theta(n|x)/pi_ref(n|x) ) ) ]

with the SFT policy frozen as the reference.  Because the policy's
log-probabilities are differentiable in the weights (linear softmaxes), the
gradient of each preference pair is

    -sigma(-delta) * beta * ( d log pi_theta(p|x) - d log pi_theta(n|x) )

and plain gradient descent on the pairs implements the update.  The scaling
factor beta is 0.1 as in the paper, and the learning rate is much smaller
than in SFT, mirroring the paper's 1e-4 (SFT) vs 1e-6 (DPO) ratio.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.model.challenging import PreferenceTriple
from repro.model.policy import RepairPolicy


@dataclass
class DpoConfig:
    """Hyper-parameters of the preference-optimisation stage."""

    beta: float = 0.1
    epochs: int = 6
    learning_rate: float = 0.08
    max_negatives_per_case: int = 6
    seed: int = 41


@dataclass
class DpoReport:
    """Training diagnostics."""

    triples: int = 0
    pairs: int = 0
    pairs_skipped: int = 0
    epoch_loss: list[float] = field(default_factory=list)
    mean_margin_before: float = 0.0
    mean_margin_after: float = 0.0


class DpoTrainer:
    """Optimises the policy weights against a frozen reference policy."""

    def __init__(
        self,
        policy: RepairPolicy,
        reference: RepairPolicy,
        config: Optional[DpoConfig] = None,
    ):
        self._policy = policy
        self._reference = reference
        self._config = config or DpoConfig()
        self._random = random.Random(self._config.seed)

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #

    def train(self, triples: Sequence[PreferenceTriple]) -> DpoReport:
        """Run DPO in place on the trainer's policy."""
        report = DpoReport(triples=len(triples))
        pairs = self._build_pairs(triples, report)
        if not pairs:
            return report
        report.mean_margin_before = self._mean_margin(pairs)

        learning_rate = self._config.learning_rate
        for _ in range(self._config.epochs):
            self._random.shuffle(pairs)
            epoch_loss = 0.0
            for pair in pairs:
                epoch_loss += self._update_pair(pair, learning_rate)
            report.epoch_loss.append(epoch_loss / len(pairs))
            learning_rate *= 0.9

        report.mean_margin_after = self._mean_margin(pairs)
        return report

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _build_pairs(
        self, triples: Sequence[PreferenceTriple], report: DpoReport
    ) -> list[dict]:
        pairs: list[dict] = []
        for triple in triples:
            negatives = triple.negatives[: self._config.max_negatives_per_case]
            for negative_line, negative_fix in negatives:
                pair = {
                    "case": triple.case,
                    "positive": (triple.positive_line_number, triple.positive_fixed_line),
                    "negative": (negative_line, negative_fix),
                }
                if self._representable(pair):
                    pairs.append(pair)
                    report.pairs += 1
                else:
                    report.pairs_skipped += 1
        return pairs

    def _representable(self, pair: dict) -> bool:
        case = pair["case"]
        for line_number, fixed_line in (pair["positive"], pair["negative"]):
            if self._policy.log_probability(case, line_number, fixed_line) is None:
                return False
            if self._reference.log_probability(case, line_number, fixed_line) is None:
                return False
        return True

    def _delta(self, pair: dict) -> float:
        case = pair["case"]
        positive_line, positive_fix = pair["positive"]
        negative_line, negative_fix = pair["negative"]
        log_p_theta = self._policy.log_probability(case, positive_line, positive_fix)
        log_n_theta = self._policy.log_probability(case, negative_line, negative_fix)
        log_p_ref = self._reference.log_probability(case, positive_line, positive_fix)
        log_n_ref = self._reference.log_probability(case, negative_line, negative_fix)
        return self._config.beta * (
            (log_p_theta - log_p_ref) - (log_n_theta - log_n_ref)
        )

    def _update_pair(self, pair: dict, learning_rate: float) -> float:
        """One gradient step on one preference pair; returns its loss."""
        case = pair["case"]
        positive_line, positive_fix = pair["positive"]
        negative_line, negative_fix = pair["negative"]
        delta = self._delta(pair)
        loss = -math.log(_sigmoid(delta))
        coefficient = _sigmoid(-delta) * self._config.beta  # d(-log sigma)/d(delta) * -1

        positive_gradient = self._policy.log_probability_gradient(
            case, positive_line, positive_fix
        )
        negative_gradient = self._policy.log_probability_gradient(
            case, negative_line, negative_fix
        )
        if positive_gradient is None or negative_gradient is None:
            return loss
        weights = self._policy.weights
        for block, attribute in (
            ("localisation", "localisation"),
            ("fix_features", "fix_features"),
            ("fix_patterns", "fix_patterns"),
        ):
            update = coefficient * (positive_gradient[block] - negative_gradient[block])
            setattr(
                weights,
                attribute,
                getattr(weights, attribute) + learning_rate * update,
            )
        return loss

    def _mean_margin(self, pairs: list[dict]) -> float:
        if not pairs:
            return 0.0
        return float(np.mean([self._delta(pair) for pair in pairs]))


def _sigmoid(value: float) -> float:
    if value >= 0:
        return 1.0 / (1.0 + math.exp(-value))
    exponential = math.exp(value)
    return exponential / (1.0 + exponential)
