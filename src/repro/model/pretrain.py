"""Pretraining: next-token statistics of Verilog from the Verilog-PT dataset.

The paper continues pretraining Deepseek-Coder on Verilog-PT (code that failed
to compile, its specification, and an analysis of the failure) with the usual
negative-log-likelihood objective.  The reproduction's policy is not a
transformer, but it has the same ingredient: a language model of Verilog fitted
with exactly that next-token objective, whose per-line surprisal and
naturalness scores feed the localisation and fix-ranking features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.dataaug.datasets import VerilogPTEntry
from repro.model.ngram import NgramLanguageModel
from repro.model.tokenizer import Vocabulary


@dataclass
class PretrainedKnowledge:
    """Everything the pretraining stage produces."""

    language_model: NgramLanguageModel = field(default_factory=NgramLanguageModel)
    vocabulary: Vocabulary = field(default_factory=Vocabulary)
    entries_seen: int = 0

    def perplexity(self, text: str) -> float:
        return self.language_model.perplexity(text)

    @property
    def is_trained(self) -> bool:
        return self.language_model.total_tokens > 0


def run_pretraining(
    entries: Sequence[VerilogPTEntry],
    extra_sources: Iterable[str] = (),
) -> PretrainedKnowledge:
    """Fit the language model and vocabulary on the Verilog-PT dataset.

    Args:
        entries: the Verilog-PT entries (code + spec + failure analysis).
        extra_sources: optional additional raw Verilog texts (the paper also
            notes that C-like corpora help; any extra text can be passed here).
    """
    knowledge = PretrainedKnowledge()
    for entry in entries:
        text = entry.text()
        knowledge.language_model.fit_text(text)
        knowledge.vocabulary.add_text(text)
        knowledge.entries_seen += 1
    for source in extra_sources:
        knowledge.language_model.fit_text(source)
        knowledge.vocabulary.add_text(source)
        knowledge.entries_seen += 1
    return knowledge
