"""The linear-softmax repair policy.

The policy factorises a repair into two decisions:

* **where** -- a softmax over the case's candidate lines, scored by the
  localisation features of :mod:`repro.model.features`;
* **what** -- a softmax over the candidate rewrites of the chosen line,
  scored by a learned weight per fix *pattern* plus the fix-ranking features.

Both scores are linear in their weights, which makes the three training
stages straightforward: pretraining supplies the language-model feature, SFT
fits the weights by maximum likelihood, and DPO moves the same weights along
the preference gradient (the policy's log-probabilities -- and therefore the
DPO objective -- are differentiable in closed form).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.model.case import RepairCase
from repro.model.features import (
    FIX_FEATURE_NAMES,
    LOCALISATION_FEATURE_NAMES,
    FixFeatureExtractor,
    LocalisationFeatureExtractor,
)
from repro.model.fixes import FIX_PATTERNS, FixCandidate, generate_fix_candidates
from repro.model.ngram import NgramLanguageModel
from repro.model.response import candidate_key


@dataclass
class PolicyWeights:
    """All learnable parameters of the repair policy."""

    localisation: np.ndarray = field(
        default_factory=lambda: np.zeros(len(LOCALISATION_FEATURE_NAMES))
    )
    fix_features: np.ndarray = field(default_factory=lambda: np.zeros(len(FIX_FEATURE_NAMES)))
    fix_patterns: np.ndarray = field(default_factory=lambda: np.zeros(len(FIX_PATTERNS)))

    def copy(self) -> "PolicyWeights":
        return PolicyWeights(
            localisation=self.localisation.copy(),
            fix_features=self.fix_features.copy(),
            fix_patterns=self.fix_patterns.copy(),
        )

    def to_dict(self) -> dict:
        return {
            "localisation": self.localisation.tolist(),
            "fix_features": self.fix_features.tolist(),
            "fix_patterns": self.fix_patterns.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PolicyWeights":
        return cls(
            localisation=np.asarray(payload["localisation"], dtype=float),
            fix_features=np.asarray(payload["fix_features"], dtype=float),
            fix_patterns=np.asarray(payload["fix_patterns"], dtype=float),
        )


_PATTERN_INDEX = {pattern: index for index, pattern in enumerate(FIX_PATTERNS)}


@dataclass
class CaseAnalysis:
    """Cached per-case candidate structure shared by sampling and training."""

    line_numbers: list[int]
    line_features: np.ndarray
    fix_candidates: dict[int, list[FixCandidate]] = field(default_factory=dict)
    fix_features: dict[int, np.ndarray] = field(default_factory=dict)
    fix_pattern_indices: dict[int, np.ndarray] = field(default_factory=dict)


def softmax(scores: np.ndarray, temperature: float = 1.0) -> np.ndarray:
    """Numerically stable softmax with temperature."""
    if scores.size == 0:
        return scores
    temperature = max(temperature, 1e-3)
    scaled = scores / temperature
    scaled = scaled - scaled.max()
    exponentials = np.exp(scaled)
    return exponentials / exponentials.sum()


class RepairPolicy:
    """Scores, samples and differentiates repairs for one set of weights."""

    def __init__(
        self,
        weights: Optional[PolicyWeights] = None,
        language_model: Optional[NgramLanguageModel] = None,
    ):
        self.weights = weights or PolicyWeights()
        self.language_model = language_model
        self._localisation_extractor = LocalisationFeatureExtractor(language_model)
        self._fix_extractor = FixFeatureExtractor(language_model)
        self._analysis_cache: dict[str, CaseAnalysis] = {}

    # ------------------------------------------------------------------ #
    # analysis
    # ------------------------------------------------------------------ #

    def set_language_model(self, language_model: NgramLanguageModel) -> None:
        """Install the pretrained LM (invalidates cached features)."""
        self.language_model = language_model
        self._localisation_extractor = LocalisationFeatureExtractor(language_model)
        self._fix_extractor = FixFeatureExtractor(language_model)
        self._analysis_cache.clear()

    def analyse(self, case: RepairCase) -> CaseAnalysis:
        """Candidate lines and their features (cached per case name)."""
        cached = self._analysis_cache.get(case.name)
        if cached is not None:
            return cached
        line_numbers = case.candidate_lines()
        features = self._localisation_extractor.extract(case, line_numbers)
        analysis = CaseAnalysis(line_numbers=line_numbers, line_features=features)
        self._analysis_cache[case.name] = analysis
        return analysis

    def fix_options(self, case: RepairCase, line_number: int) -> tuple[
        list[FixCandidate], np.ndarray, np.ndarray
    ]:
        """Fix candidates of a line plus their features and pattern indices."""
        analysis = self.analyse(case)
        if line_number not in analysis.fix_candidates:
            candidates = generate_fix_candidates(case, line_number)
            original = case.line_text(line_number)
            features = self._fix_extractor.extract_batch(
                case, original, [c.fixed_line for c in candidates]
            )
            patterns = np.array(
                [_PATTERN_INDEX.get(c.pattern, _PATTERN_INDEX["keep_line"]) for c in candidates]
            )
            analysis.fix_candidates[line_number] = candidates
            analysis.fix_features[line_number] = features
            analysis.fix_pattern_indices[line_number] = patterns
        return (
            analysis.fix_candidates[line_number],
            analysis.fix_features[line_number],
            analysis.fix_pattern_indices[line_number],
        )

    # ------------------------------------------------------------------ #
    # probabilities
    # ------------------------------------------------------------------ #

    def line_scores(self, case: RepairCase) -> tuple[list[int], np.ndarray]:
        analysis = self.analyse(case)
        if analysis.line_features.size == 0:
            return analysis.line_numbers, np.zeros(0)
        scores = analysis.line_features @ self.weights.localisation
        return analysis.line_numbers, scores

    def line_distribution(self, case: RepairCase, temperature: float = 1.0) -> tuple[list[int], np.ndarray]:
        line_numbers, scores = self.line_scores(case)
        return line_numbers, softmax(scores, temperature)

    def fix_scores(self, case: RepairCase, line_number: int) -> tuple[list[FixCandidate], np.ndarray]:
        candidates, features, patterns = self.fix_options(case, line_number)
        if features.size == 0:
            return candidates, np.zeros(0)
        scores = features @ self.weights.fix_features + self.weights.fix_patterns[patterns]
        return candidates, scores

    def fix_distribution(
        self, case: RepairCase, line_number: int, temperature: float = 1.0
    ) -> tuple[list[FixCandidate], np.ndarray]:
        candidates, scores = self.fix_scores(case, line_number)
        return candidates, softmax(scores, temperature)

    def log_probability(
        self, case: RepairCase, line_number: int, fixed_line: str, temperature: float = 1.0
    ) -> Optional[float]:
        """log pi(line, fix | case); ``None`` when the pair is not representable."""
        line_numbers, line_probabilities = self.line_distribution(case, temperature)
        if line_number not in line_numbers:
            return None
        line_index = line_numbers.index(line_number)
        candidates, fix_probabilities = self.fix_distribution(case, line_number, temperature)
        fix_index = _candidate_index(candidates, fixed_line)
        if fix_index is None:
            return None
        return float(
            np.log(max(line_probabilities[line_index], 1e-12))
            + np.log(max(fix_probabilities[fix_index], 1e-12))
        )

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #

    def sample(
        self, case: RepairCase, rng: np.random.Generator, temperature: float = 0.2
    ) -> Optional[tuple[int, FixCandidate, float]]:
        """Sample (line number, fix candidate, joint probability) for one response."""
        line_numbers, line_probabilities = self.line_distribution(case, temperature)
        if not line_numbers:
            return None
        line_index = int(rng.choice(len(line_numbers), p=line_probabilities))
        line_number = line_numbers[line_index]
        candidates, fix_probabilities = self.fix_distribution(case, line_number, temperature)
        if not candidates:
            return None
        fix_index = int(rng.choice(len(candidates), p=fix_probabilities))
        probability = float(line_probabilities[line_index] * fix_probabilities[fix_index])
        return line_number, candidates[fix_index], probability

    def top_candidates(
        self, case: RepairCase, k: int = 5, temperature: float = 1.0
    ) -> list[tuple[int, FixCandidate, float]]:
        """The ``k`` most probable distinct (line, fix) pairs, best first.

        Because the policy factorises into two small softmaxes, the joint
        distribution can be enumerated exactly -- no sampling noise, which is
        what makes ranked pass@k on the benchmark deterministic.  Exact
        probability ties (adjacent lines with identical feature rows are
        common in generated RTL) are broken *toward lines whose assigned
        signal appears in the failing assertion* -- the line a verification
        engineer would read first -- then by line number and rewrite text,
        so the order is stable across processes and platforms.
        """
        line_numbers, line_probabilities = self.line_distribution(case, temperature)
        assigned_by_line = case.assigned_by_line
        asserted = case.asserted_signals
        scored: list[tuple[float, int, int, str, FixCandidate]] = []
        for line_index, line_number in enumerate(line_numbers):
            # 0 sorts first: the line drives a signal the failing assertion samples.
            assigns_failing = 0 if asserted.intersection(
                assigned_by_line.get(line_number, ())
            ) else 1
            candidates, fix_probabilities = self.fix_distribution(case, line_number, temperature)
            for fix_index, candidate in enumerate(candidates):
                joint = float(line_probabilities[line_index] * fix_probabilities[fix_index])
                scored.append(
                    (joint, assigns_failing, line_number, candidate.fixed_line, candidate)
                )
        scored.sort(key=lambda item: (-item[0], item[1], item[2], item[3]))
        top: list[tuple[int, FixCandidate, float]] = []
        seen: set[str] = set()
        for joint, _assigns_failing, line_number, fixed_line, candidate in scored:
            key = candidate_key(line_number, fixed_line)
            if key in seen:
                continue
            seen.add(key)
            top.append((line_number, candidate, joint))
            if len(top) >= k:
                break
        return top

    # ------------------------------------------------------------------ #
    # gradients (used by SFT and DPO)
    # ------------------------------------------------------------------ #

    def log_probability_gradient(
        self, case: RepairCase, line_number: int, fixed_line: str, temperature: float = 1.0
    ) -> Optional[dict[str, np.ndarray]]:
        """d log pi(line, fix | case) / d weights, for each weight block.

        For a softmax that is linear in the weights the gradient is the
        feature vector of the chosen option minus the probability-weighted
        average feature vector of all options (independently for the line
        choice and the fix choice, because the policy factorises).
        """
        analysis = self.analyse(case)
        if line_number not in analysis.line_numbers:
            return None
        line_index = analysis.line_numbers.index(line_number)
        _, line_probabilities = self.line_distribution(case, temperature)
        line_gradient = (
            analysis.line_features[line_index]
            - line_probabilities @ analysis.line_features
        ) / max(temperature, 1e-3)

        candidates, fix_features, patterns = self.fix_options(case, line_number)
        fix_index = _candidate_index(candidates, fixed_line)
        if fix_index is None:
            return None
        _, fix_probabilities = self.fix_distribution(case, line_number, temperature)
        fix_feature_gradient = (
            fix_features[fix_index] - fix_probabilities @ fix_features
        ) / max(temperature, 1e-3)
        pattern_gradient = np.zeros(len(FIX_PATTERNS))
        pattern_gradient[patterns[fix_index]] += 1.0
        for index, probability in enumerate(fix_probabilities):
            pattern_gradient[patterns[index]] -= probability
        pattern_gradient /= max(temperature, 1e-3)

        return {
            "localisation": line_gradient,
            "fix_features": fix_feature_gradient,
            "fix_patterns": pattern_gradient,
        }


def _candidate_index(candidates: list[FixCandidate], fixed_line: str) -> Optional[int]:
    from repro.hdl.source import lines_equivalent

    for index, candidate in enumerate(candidates):
        if lines_equivalent(candidate.fixed_line, fixed_line):
            return index
    return None
