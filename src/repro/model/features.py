"""Feature extraction for bug localisation and fix ranking.

The repair policy is linear in these features; they encode exactly the kind
of evidence a verification engineer (or a code LLM) uses when reading a
failing assertion: which signals the assertion samples, which lines drive
those signals (cone of influence), how "unusual" a line looks to a language
model of Verilog, and how well a line matches the vocabulary of the
specification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.bugs.mutators import line_identifiers
from repro.hdl.source import strip_comment
from repro.model.case import RepairCase
from repro.model.ngram import NgramLanguageModel

#: names of the localisation features, in vector order.
LOCALISATION_FEATURE_NAMES: tuple[str, ...] = (
    "bias",
    "assigns_failing_signal",
    "assigns_cone_signal",
    "cone_proximity",
    "mentions_failing_signal",
    "is_assignment",
    "is_conditional",
    "is_declaration",
    "lm_surprisal",
    "spec_overlap",
    "line_length",
    "distance_to_assertion",
    "lint_density",
)

#: names of the fix-ranking features (pattern weights are handled separately).
FIX_FEATURE_NAMES: tuple[str, ...] = (
    "bias",
    "lm_gain",
    "spec_overlap_gain",
    "reuses_existing_line",
    "touches_failing_signal",
    "edit_size",
    "cone_overlap_gain",
)

_DECLARATION_PREFIXES = ("wire", "reg", "logic", "integer", "parameter", "localparam",
                         "input", "output", "inout")


@dataclass
class LocalisationFeatureExtractor:
    """Builds the feature matrix over a case's candidate lines."""

    language_model: Optional[NgramLanguageModel] = None

    def feature_names(self) -> tuple[str, ...]:
        return LOCALISATION_FEATURE_NAMES

    def extract(self, case: RepairCase, line_numbers: Sequence[int]) -> np.ndarray:
        """Return a (len(line_numbers), n_features) matrix."""
        rows = [self._line_features(case, number) for number in line_numbers]
        if not rows:
            return np.zeros((0, len(LOCALISATION_FEATURE_NAMES)))
        return np.vstack(rows)

    # ------------------------------------------------------------------ #
    # per-line features
    # ------------------------------------------------------------------ #

    def _line_features(self, case: RepairCase, number: int) -> np.ndarray:
        line = case.line_text(number)
        code = strip_comment(line).strip()
        lowered = code.lower()
        identifiers = set(line_identifiers(code))
        assigned = set(case.assigned_by_line.get(number, []))
        asserted = case.asserted_signals
        cone = case.cone_signals

        assigns_failing = bool(assigned & asserted)
        assigns_cone = bool(assigned & cone)
        proximity = self._cone_proximity(case, assigned)
        mentions_failing = bool(identifiers & asserted)
        is_assignment = ("=" in code) and not lowered.startswith(_DECLARATION_PREFIXES)
        is_conditional = lowered.startswith(("if", "else", "case", "casez", "casex"))
        is_declaration = lowered.startswith(_DECLARATION_PREFIXES) and "=" not in code
        surprisal = self._normalised_surprisal(code)
        spec_overlap = self._spec_overlap(case, identifiers)
        line_length = min(len(code) / 80.0, 1.5)
        distance = self._distance_to_assertion(case, number)
        # Advisory static-analysis diagnostics on this line (dead writes,
        # width truncation, inferred latches, ...): injected bugs trip them
        # far more often than golden lines do.
        lint_density = min(case.analysis_diagnostics_by_line.get(number, 0), 3) / 3.0

        return np.array(
            [
                1.0,
                float(assigns_failing),
                float(assigns_cone),
                proximity,
                float(mentions_failing),
                float(is_assignment),
                float(is_conditional),
                float(is_declaration),
                surprisal,
                spec_overlap,
                line_length,
                distance,
                lint_density,
            ]
        )

    def _cone_proximity(self, case: RepairCase, assigned: set[str]) -> float:
        """1/(1+d) where d is the dependency distance from the assigned signals
        to the asserted signals (0 when the line assigns an asserted signal)."""
        if not assigned or case.design is None or not case.asserted_signals:
            return 0.0
        graph = case.design.dependency_graph
        # breadth-first search backwards from the asserted signals.
        distance = {name: 0 for name in case.asserted_signals if name in graph}
        frontier = list(distance)
        while frontier:
            next_frontier = []
            for name in frontier:
                for dep in graph.get(name, ()):  # fan-in
                    if dep not in distance:
                        distance[dep] = distance[name] + 1
                        next_frontier.append(dep)
            frontier = next_frontier
        best = min((distance.get(name, 99) for name in assigned), default=99)
        return 1.0 / (1.0 + best)

    def _normalised_surprisal(self, code: str) -> float:
        if self.language_model is None or self.language_model.total_tokens == 0:
            return 0.0
        surprisal = self.language_model.line_surprisal(code)
        # Typical per-token surprisal lands in [1, 8]; normalise to roughly [0, 1].
        return min(surprisal / 8.0, 1.5)

    def _spec_overlap(self, case: RepairCase, identifiers: set[str]) -> float:
        if not identifiers:
            return 0.0
        lowered = {name.lower() for name in identifiers}
        overlap = lowered & case.spec_tokens
        return len(overlap) / len(lowered)

    def _distance_to_assertion(self, case: RepairCase, number: int) -> float:
        region = case.assertion_region_lines
        if not region:
            return 0.0
        nearest = min(abs(number - line) for line in region)
        return 1.0 / (1.0 + nearest)


@dataclass
class FixFeatureExtractor:
    """Features of one candidate rewrite of one line."""

    language_model: Optional[NgramLanguageModel] = None

    def feature_names(self) -> tuple[str, ...]:
        return FIX_FEATURE_NAMES

    def extract(
        self, case: RepairCase, original_line: str, candidate_line: str
    ) -> np.ndarray:
        original_code = strip_comment(original_line).strip()
        candidate_code = strip_comment(candidate_line).strip()
        lm_gain = self._lm_gain(original_code, candidate_code)
        spec_gain = self._spec_overlap(case, candidate_code) - self._spec_overlap(case, original_code)
        reuses = float(self._reuses_existing_line(case, candidate_code, original_code))
        touches_failing = float(
            bool(set(line_identifiers(candidate_code)) & case.asserted_signals)
        )
        edit_size = self._edit_size(original_code, candidate_code)
        cone_gain = self._cone_overlap_gain(case, original_code, candidate_code)
        return np.array(
            [1.0, lm_gain, spec_gain, reuses, touches_failing, edit_size, cone_gain]
        )

    def extract_batch(
        self, case: RepairCase, original_line: str, candidates: Sequence[str]
    ) -> np.ndarray:
        rows = [self.extract(case, original_line, candidate) for candidate in candidates]
        if not rows:
            return np.zeros((0, len(FIX_FEATURE_NAMES)))
        return np.vstack(rows)

    def _lm_gain(self, original: str, candidate: str) -> float:
        if self.language_model is None or self.language_model.total_tokens == 0:
            return 0.0
        gain = self.language_model.line_naturalness(candidate) - self.language_model.line_naturalness(original)
        return float(np.clip(gain, -2.0, 2.0))

    def _spec_overlap(self, case: RepairCase, code: str) -> float:
        identifiers = {name.lower() for name in line_identifiers(code)}
        if not identifiers:
            return 0.0
        return len(identifiers & case.spec_tokens) / len(identifiers)

    @staticmethod
    def _cone_fraction(cone: set[str], code: str) -> float:
        identifiers = set(line_identifiers(code))
        if not identifiers:
            return 0.0
        return len(identifiers & cone) / len(identifiers)

    def _cone_overlap_gain(self, case: RepairCase, original: str, candidate: str) -> float:
        """How much the rewrite moves the line *into* the failing cone.

        The cone is the failing assertions' cone of influence per the
        dataflow graph (clock and ``disable iff`` signals included).  A fix
        that swaps cone signals for unrelated ones is moving the logic away
        from what the assertion observes -- usually the wrong direction.
        """
        cone = case.failing_cone
        if not cone:
            return 0.0
        return self._cone_fraction(cone, candidate) - self._cone_fraction(cone, original)

    def _reuses_existing_line(self, case: RepairCase, candidate: str, original: str) -> bool:
        """Does the candidate replicate another line of the design (a common idiom)?"""
        normalised = " ".join(candidate.split())
        if not normalised or normalised == " ".join(original.split()):
            return False
        for number in case.code_line_numbers:
            other = " ".join(strip_comment(case.line_text(number)).strip().split())
            if other == normalised:
                return True
        return False

    @staticmethod
    def _edit_size(original: str, candidate: str) -> float:
        """Rough normalised edit size (smaller edits are more plausible fixes)."""
        original_tokens = original.split()
        candidate_tokens = candidate.split()
        changed = sum(1 for a, b in zip(original_tokens, candidate_tokens) if a != b)
        changed += abs(len(original_tokens) - len(candidate_tokens))
        return min(changed / max(len(original_tokens), 1), 1.5)
