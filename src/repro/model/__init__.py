"""The AssertSolver repair model (the paper's core contribution).

The paper fine-tunes Deepseek-Coder-6.7b in three stages; this reproduction
trains a statistical repair *policy* with the same three stages and the same
data flow:

* **Pretraining** (:mod:`repro.model.pretrain`): fit an n-gram language model
  and token statistics of Verilog on the Verilog-PT dataset.  The LM feeds a
  "surprisal" feature used by bug localisation.
* **Supervised fine-tuning** (:mod:`repro.model.sft`): fit the localisation
  weights (softmax over candidate lines) and the fix-pattern weights (softmax
  over candidate rewrites) on the SVA-Bug and Verilog-Bug datasets.
* **Learning from error responses** (:mod:`repro.model.dpo`): sample n = 20
  responses per training question, collect the challenging cases that receive
  at least one wrong response, and run Direct Preference Optimisation on the
  policy weights with the SFT policy as the frozen reference.

Inference (:mod:`repro.model.inference`) samples JSON responses — candidate
buggy line, suggested fix, line number and a chain-of-thought explanation —
exactly the output contract of Fig. 2 (III).
"""

from repro.model.case import RepairCase
from repro.model.response import RepairResponse, RepairEngine
from repro.model.policy import RepairPolicy, PolicyWeights
from repro.model.assertsolver_model import AssertSolverModel, ModelStage
from repro.model.pretrain import PretrainedKnowledge, run_pretraining
from repro.model.sft import SftTrainer, SftConfig
from repro.model.dpo import DpoTrainer, DpoConfig, PreferenceTriple
from repro.model.challenging import collect_challenging_cases

__all__ = [
    "RepairCase",
    "RepairResponse",
    "RepairEngine",
    "RepairPolicy",
    "PolicyWeights",
    "AssertSolverModel",
    "ModelStage",
    "PretrainedKnowledge",
    "run_pretraining",
    "SftTrainer",
    "SftConfig",
    "DpoTrainer",
    "DpoConfig",
    "PreferenceTriple",
    "collect_challenging_cases",
]
