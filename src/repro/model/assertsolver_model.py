"""The AssertSolver model: the trained repair engine with its three stages.

``AssertSolverModel`` wraps one :class:`~repro.model.policy.RepairPolicy` and
exposes the paper's training flow:

* ``pretrain(verilog_pt)``          -> stage PRETRAINED
* ``supervised_finetune(...)``      -> stage SFT  (this is the "SFT Model" of Table III)
* ``learn_from_errors(...)``        -> stage DPO  (this is "AssertSolver" in the tables)

A freshly constructed model (stage BASE) plays the role of the untuned base
model (Deepseek-Coder-6.7b in the paper): it only has a generic code prior
and performs accordingly poorly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.dataaug.datasets import AugmentedDatasets, SvaBugEntry, VerilogBugEntry, VerilogPTEntry
from repro.model.case import RepairCase
from repro.model.challenging import collect_challenging_cases
from repro.model.cot import build_explanation
from repro.model.dpo import DpoConfig, DpoReport, DpoTrainer
from repro.model.features import LOCALISATION_FEATURE_NAMES
from repro.model.policy import PolicyWeights, RepairPolicy
from repro.model.pretrain import PretrainedKnowledge, run_pretraining
from repro.model.response import RepairEngine, RepairResponse
from repro.model.sft import SftConfig, SftReport, SftTrainer


class ModelStage(enum.Enum):
    """How far through the training recipe this model instance has progressed."""

    BASE = "base"
    PRETRAINED = "pretrained"
    SFT = "sft"
    DPO = "dpo"


def _base_prior_weights() -> PolicyWeights:
    """The generic 'code model' prior of the untuned base model.

    A general-purpose code LLM knows that repairs land on functional
    statements rather than declarations, and that is about all it knows about
    this task before fine-tuning.
    """
    weights = PolicyWeights()
    names = list(LOCALISATION_FEATURE_NAMES)
    weights.localisation[names.index("is_assignment")] = 0.8
    weights.localisation[names.index("is_declaration")] = -0.8
    return weights


@dataclass
class TrainingHistory:
    """Reports produced by the successive training stages."""

    pretraining_entries: int = 0
    sft: Optional[SftReport] = None
    challenging_stats: dict = field(default_factory=dict)
    dpo: Optional[DpoReport] = None


class AssertSolverModel(RepairEngine):
    """The trainable repair engine reproducing AssertSolver."""

    def __init__(self, name: str = "AssertSolver", seed: int = 97):
        self.name = name
        self._seed = seed
        self.stage = ModelStage.BASE
        self.knowledge = PretrainedKnowledge()
        self.policy = RepairPolicy(weights=_base_prior_weights())
        self.history = TrainingHistory()
        self._reference_policy: Optional[RepairPolicy] = None

    # ------------------------------------------------------------------ #
    # training stages
    # ------------------------------------------------------------------ #

    def pretrain(self, entries: Sequence[VerilogPTEntry]) -> PretrainedKnowledge:
        """Continual pretraining on the Verilog-PT dataset (Section III-A)."""
        self.knowledge = run_pretraining(entries)
        self.policy.set_language_model(self.knowledge.language_model)
        self.history.pretraining_entries = self.knowledge.entries_seen
        if self.stage is ModelStage.BASE:
            self.stage = ModelStage.PRETRAINED
        return self.knowledge

    def supervised_finetune(
        self,
        sva_entries: Sequence[SvaBugEntry],
        verilog_bug_entries: Sequence[VerilogBugEntry] = (),
        config: Optional[SftConfig] = None,
    ) -> SftReport:
        """Supervised fine-tuning on SVA-Bug + Verilog-Bug (Section III-B)."""
        trainer = SftTrainer(self.policy, config)
        report = trainer.train(sva_entries, verilog_bug_entries)
        self.history.sft = report
        self.stage = ModelStage.SFT
        return report

    def learn_from_errors(
        self,
        sva_entries: Sequence[SvaBugEntry],
        samples: int = 20,
        temperature: float = 0.2,
        config: Optional[DpoConfig] = None,
        verifier=None,
    ) -> DpoReport:
        """Challenging-case mining + DPO (Section III-C).

        ``verifier`` (a :class:`repro.eval.verifier.SemanticVerifier`) lets
        the caller share a verdict cache with the evaluation harness, making
        repeat mining runs incremental; omitted, a fresh uncached verifier
        is used.
        """
        self._reference_policy = RepairPolicy(
            weights=self.policy.weights.copy(),
            language_model=self.knowledge.language_model if self.knowledge.is_trained else None,
        )
        triples, stats = collect_challenging_cases(
            self,
            sva_entries,
            samples=samples,
            temperature=temperature,
            seed=self._seed,
            verifier=verifier,
        )
        self.history.challenging_stats = stats
        trainer = DpoTrainer(self.policy, self._reference_policy, config)
        report = trainer.train(triples)
        self.history.dpo = report
        self.stage = ModelStage.DPO
        return report

    def train_full(self, datasets: AugmentedDatasets, dpo_samples: int = 20) -> "AssertSolverModel":
        """Run the complete recipe (PT -> SFT -> DPO) on one dataset bundle."""
        self.pretrain(datasets.verilog_pt)
        self.supervised_finetune(datasets.sva_bug_train, datasets.verilog_bug)
        self.learn_from_errors(datasets.sva_bug_train, samples=dpo_samples)
        return self

    # ------------------------------------------------------------------ #
    # snapshots (for the Table III / Fig. 3 comparisons)
    # ------------------------------------------------------------------ #

    def snapshot(self, name: Optional[str] = None) -> "AssertSolverModel":
        """A frozen copy of the current model (e.g. keep the SFT model around
        while the original continues to the DPO stage)."""
        clone = AssertSolverModel(name=name or f"{self.name}@{self.stage.value}", seed=self._seed)
        clone.stage = self.stage
        clone.knowledge = self.knowledge
        clone.policy = RepairPolicy(
            weights=self.policy.weights.copy(),
            language_model=self.knowledge.language_model if self.knowledge.is_trained else None,
        )
        return clone

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #

    def propose(
        self, case: RepairCase, samples: int = 20, temperature: float = 0.2, seed: int = 0
    ) -> list[RepairResponse]:
        """Sample ``samples`` JSON responses for one assertion-failure case."""
        rng = np.random.default_rng(self._seed * 100_003 + seed)
        responses: list[RepairResponse] = []
        for _ in range(samples):
            sampled = self.policy.sample(case, rng, temperature=temperature)
            if sampled is None:
                responses.append(self._fallback_response(case))
                continue
            line_number, candidate, probability = sampled
            explanation = build_explanation(
                case, line_number, candidate.original_line, candidate.fixed_line, candidate.pattern
            )
            responses.append(
                RepairResponse(
                    bug_line=candidate.original_line.strip(),
                    fixed_line=candidate.fixed_line.strip(),
                    line_number=line_number,
                    explanation=explanation,
                    confidence=probability,
                    metadata={"pattern": candidate.pattern, "stage": self.stage.value},
                )
            )
        return responses

    def propose_topk(
        self,
        case: RepairCase,
        k: int = 5,
        samples: int = 20,
        temperature: float = 0.2,
        seed: int = 0,
    ) -> list[RepairResponse]:
        """Exact top-k: enumerate the policy's joint distribution directly.

        Unlike the sampling default on :class:`RepairEngine`, this is
        deterministic for a fixed set of weights (``samples`` and ``seed``
        are accepted for interface compatibility and ignored).
        """
        ranked = self.policy.top_candidates(case, k=k, temperature=temperature)
        if not ranked:
            return [self._fallback_response(case)]
        responses: list[RepairResponse] = []
        for line_number, candidate, probability in ranked:
            explanation = build_explanation(
                case, line_number, candidate.original_line, candidate.fixed_line, candidate.pattern
            )
            responses.append(
                RepairResponse(
                    bug_line=candidate.original_line.strip(),
                    fixed_line=candidate.fixed_line.strip(),
                    line_number=line_number,
                    explanation=explanation,
                    confidence=probability,
                    metadata={"pattern": candidate.pattern, "stage": self.stage.value},
                )
            )
        return responses

    @staticmethod
    def _fallback_response(case: RepairCase) -> RepairResponse:
        """Degenerate response used when a case yields no candidates at all."""
        lines = case.code_line_numbers
        line_number = lines[0] if lines else 1
        text = case.line_text(line_number) if lines else ""
        return RepairResponse(
            bug_line=text.strip(),
            fixed_line=text.strip(),
            line_number=line_number,
            explanation="No candidate repair could be derived for this design.",
            confidence=0.0,
        )
