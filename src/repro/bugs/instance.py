"""The record describing one injected (or hand-planted) bug."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hdl.source import lines_equivalent


@dataclass
class BugInstance:
    """One buggy variant of a golden design.

    Attributes:
        design_name: module name of the design the bug lives in.
        golden_source: the correct source.
        buggy_source: the source with exactly one line changed.
        line_number: 1-based number of the changed line.
        golden_line: the original (correct) line text.
        buggy_line: the mutated line text.
        mutation_name: identifier of the mutation operator used.
        edit_kind: ``"op"`` | ``"value"`` | ``"var"`` | ``"noncond"`` (free-form edits).
        is_conditional: True when the edit touches a conditional statement.
        assigned_signals: signals assigned on the mutated line (empty for pure
            condition edits).
        failing_assertions: names of assertions observed to fail (filled in by
            the validation stage).
        is_direct: True when an assigned signal appears directly in a failing
            assertion (filled in by the validation stage).
        description: human-readable summary of the mutation.
    """

    design_name: str
    golden_source: str
    buggy_source: str
    line_number: int
    golden_line: str
    buggy_line: str
    mutation_name: str
    edit_kind: str
    is_conditional: bool
    assigned_signals: list[str] = field(default_factory=list)
    failing_assertions: list[str] = field(default_factory=list)
    is_direct: Optional[bool] = None
    description: str = ""

    @property
    def triggers_assertion(self) -> bool:
        return bool(self.failing_assertions)

    def matches_fix(self, proposed_line: str) -> bool:
        """True when a proposed replacement line is equivalent to the golden line."""
        return lines_equivalent(proposed_line, self.golden_line)

    def matches_location(self, proposed_line_number: int, tolerance: int = 0) -> bool:
        """True when a proposed line number points at the bug (within ``tolerance``)."""
        return abs(proposed_line_number - self.line_number) <= tolerance
