"""Mutation operators that rewrite a single source line.

Every operator takes one line of Verilog and produces zero or more
:class:`MutationCandidate` objects: the rewritten line, the operator's name,
its edit kind (``op`` / ``value`` / ``var`` / ``noncond``) and a description.
The injector decides where to apply them and verifies that the mutated design
still compiles.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.hdl.source import strip_comment

#: Verilog keywords that must never be treated as signal identifiers.
_KEYWORDS = frozenset(
    "module endmodule input output inout wire reg logic integer parameter localparam assign "
    "always always_ff always_comb initial begin end if else case casez casex endcase default "
    "for posedge negedge or property endproperty assert assume cover disable iff not signed "
    "genvar generate endgenerate function endfunction task endtask".split()
)

_IDENTIFIER = re.compile(r"\b[A-Za-z_][A-Za-z0-9_]*\b")
_BASED_LITERAL = re.compile(r"(\d+)'([bdhBDH])([0-9a-fA-F_xXzZ?]+)")
_DECIMAL_LITERAL = re.compile(r"(?<![\w'])(\d+)(?![\w'])")


@dataclass(frozen=True)
class MutationCandidate:
    """One possible rewrite of a source line."""

    buggy_line: str
    mutation_name: str
    edit_kind: str
    description: str


def _mask_literals(code: str) -> str:
    """Replace based literals (4'd3, 8'hFF, ...) with spaces so identifier scans
    never pick up their base/digit characters."""
    return _BASED_LITERAL.sub(lambda m: " " * len(m.group(0)), code)


def line_identifiers(line: str) -> list[str]:
    """Signal-like identifiers appearing on a code line (keywords excluded)."""
    code = _mask_literals(strip_comment(line))
    names = []
    for match in _IDENTIFIER.finditer(code):
        name = match.group(0)
        if name in _KEYWORDS or name.isdigit():
            continue
        names.append(name)
    return names


# --------------------------------------------------------------------------- #
# operator mutations
# --------------------------------------------------------------------------- #

#: (pattern, replacement, name) -- applied once per line where they match.
_OPERATOR_SWAPS: Sequence[tuple[str, str, str]] = (
    (r"==", "!=", "op_eq_to_neq"),
    (r"!=", "==", "op_neq_to_eq"),
    (r"&&", "||", "op_and_to_or"),
    (r"\|\|", "&&", "op_or_to_and"),
    (r"(?<![<>])>=", ">", "op_ge_to_gt"),
    (r"(?<![<>=!])<(?![<=])", "<=", "op_lt_to_le"),
    (r"(?<![<>=!\-|])>(?![>=])", ">=", "op_gt_to_ge"),
    (r"<<", ">>", "op_shl_to_shr"),
    (r">>", "<<", "op_shr_to_shl"),
)

#: single-character bitwise swaps need context so they do not hit && / || / ^~.
_BITWISE_SWAPS: Sequence[tuple[str, str, str]] = (
    (r"(?<!&)&(?!&)", "|", "op_bitand_to_bitor"),
    (r"(?<!\|)\|(?!\|)(?!->)(?!=>)", "&", "op_bitor_to_bitand"),
    (r"\^", "&", "op_xor_to_and"),
)

_ARITH_SWAPS: Sequence[tuple[str, str, str]] = (
    (r"(?<![+])\+(?![+:])", "-", "op_plus_to_minus"),
    (r"(?<![-])-(?![->:])", "+", "op_minus_to_plus"),
)


def _swap_once(line: str, pattern: str, replacement: str) -> str | None:
    code = strip_comment(line)
    match = re.search(pattern, code)
    if match is None:
        return None
    comment_tail = line[len(code):]
    return code[: match.start()] + replacement + code[match.end():] + comment_tail


def operator_mutations(line: str) -> Iterable[MutationCandidate]:
    """Swap comparison, logical, bitwise, shift and arithmetic operators."""
    seen: set[str] = set()
    for pattern, replacement, name in (*_OPERATOR_SWAPS, *_ARITH_SWAPS, *_BITWISE_SWAPS):
        mutated = _swap_once(line, pattern, replacement)
        if mutated is None or mutated == line or mutated in seen:
            continue
        seen.add(mutated)
        yield MutationCandidate(
            buggy_line=mutated,
            mutation_name=name,
            edit_kind="op",
            description=f"operator changed ({name.replace('op_', '').replace('_', ' ')})",
        )


# --------------------------------------------------------------------------- #
# value mutations
# --------------------------------------------------------------------------- #


def _render_based(width: str, base: str, value: int) -> str:
    base = base.lower()
    if base == "b":
        digits = format(value, "b")
    elif base == "h":
        digits = format(value, "x")
    else:
        digits = str(value)
    return f"{width}'{base}{digits}"


def value_mutations(line: str) -> Iterable[MutationCandidate]:
    """Perturb numeric literals: off-by-one, zeroing, bit flips, width changes."""
    code = strip_comment(line)
    produced: set[str] = set()
    for match in _BASED_LITERAL.finditer(code):
        width_text, base, digits = match.group(1), match.group(2), match.group(3)
        clean = digits.replace("_", "")
        if any(c in "xXzZ?" for c in clean):
            continue
        radix = {"b": 2, "d": 10, "h": 16}[base.lower()]
        value = int(clean, radix) if clean else 0
        width = int(width_text)
        max_value = (1 << width) - 1
        variants = {value + 1, value - 1, 0, max_value, value ^ 1}
        for variant in variants:
            if variant == value or variant < 0 or variant > max_value:
                continue
            replacement = _render_based(width_text, base, variant)
            mutated = code[: match.start()] + replacement + code[match.end():]
            if mutated in produced:
                continue
            produced.add(mutated)
            yield MutationCandidate(
                buggy_line=mutated,
                mutation_name="value_literal_change",
                edit_kind="value",
                description=f"constant {match.group(0)} changed to {replacement}",
            )
        # A width change is also a Value-class bug per Table I.
        if width > 1:
            replacement = _render_based(str(width - 1), base, min(value, (1 << (width - 1)) - 1))
            mutated = code[: match.start()] + replacement + code[match.end():]
            if mutated not in produced and mutated != code:
                produced.add(mutated)
                yield MutationCandidate(
                    buggy_line=mutated,
                    mutation_name="value_width_change",
                    edit_kind="value",
                    description=f"literal width of {match.group(0)} shrunk to {width - 1} bits",
                )
    for match in _DECIMAL_LITERAL.finditer(code):
        value = int(match.group(1))
        if value > 64:
            continue
        for variant in (value + 1, max(0, value - 1)):
            if variant == value:
                continue
            mutated = code[: match.start()] + str(variant) + code[match.end():]
            if mutated in produced:
                continue
            produced.add(mutated)
            yield MutationCandidate(
                buggy_line=mutated,
                mutation_name="value_decimal_change",
                edit_kind="value",
                description=f"constant {value} changed to {variant}",
            )


# --------------------------------------------------------------------------- #
# variable mutations
# --------------------------------------------------------------------------- #


def variable_mutations(
    line: str, in_scope_signals: Sequence[str]
) -> Iterable[MutationCandidate]:
    """Replace one referenced signal with a different in-scope signal."""
    code = strip_comment(line)
    produced: set[str] = set()
    identifiers = line_identifiers(code)
    if not identifiers:
        return
    scope = [s for s in in_scope_signals if s not in ("clk",)]
    # Replace occurrences after the first token when the line is an assignment:
    # mutating the RHS/condition is far more interesting than renaming the target.
    assignment = "=" in code
    for index, name in enumerate(identifiers):
        if assignment and index == 0:
            continue
        for replacement in scope:
            if replacement == name:
                continue
            mutated = re.sub(rf"(?<!')\b{re.escape(name)}\b", replacement, code, count=1)
            if mutated == code or mutated in produced:
                continue
            produced.add(mutated)
            yield MutationCandidate(
                buggy_line=mutated,
                mutation_name="var_substitution",
                edit_kind="var",
                description=f"signal '{name}' replaced by '{replacement}'",
            )
            break  # one replacement per original identifier keeps the pool balanced
        if len(produced) >= 4:
            break


# --------------------------------------------------------------------------- #
# condition-specific mutations
# --------------------------------------------------------------------------- #


def condition_mutations(line: str) -> Iterable[MutationCandidate]:
    """Negate or un-negate the condition of an ``if`` on this line."""
    code = strip_comment(line)
    produced: set[str] = set()
    match = re.search(r"\bif\s*\(\s*!\s*([A-Za-z_][\w]*)\s*\)", code)
    if match:
        mutated = code[: match.start()] + f"if ({match.group(1)})" + code[match.end():]
        produced.add(mutated)
        yield MutationCandidate(
            buggy_line=mutated,
            mutation_name="cond_drop_negation",
            edit_kind="op",
            description=f"negation dropped from the condition on '{match.group(1)}'",
        )
    match = re.search(r"\bif\s*\(\s*([A-Za-z_][\w]*)\s*\)", code)
    if match and f"if (!{match.group(1)})" not in code:
        mutated = code[: match.start()] + f"if (!{match.group(1)})" + code[match.end():]
        if mutated not in produced:
            yield MutationCandidate(
                buggy_line=mutated,
                mutation_name="cond_add_negation",
                edit_kind="op",
                description=f"condition on '{match.group(1)}' negated",
            )


# --------------------------------------------------------------------------- #
# assignment-structure mutations
# --------------------------------------------------------------------------- #


def assignment_mutations(line: str) -> Iterable[MutationCandidate]:
    """Structural edits to an assignment that are none of op/value/var above."""
    code = strip_comment(line)
    # Drop one "+ term" from a sum on the right-hand side.
    match = re.search(r"=\s*([A-Za-z_][\w]*)\s*\+\s*([A-Za-z_][\w]*)\s*;", code)
    if match:
        mutated = code[: match.start()] + f"= {match.group(1)};" + code[match.end():]
        yield MutationCandidate(
            buggy_line=mutated,
            mutation_name="assign_drop_term",
            edit_kind="var",
            description=f"the '+ {match.group(2)}' term was dropped from the assignment",
        )
    # Freeze the register: assign it to itself.
    match = re.search(r"\b([A-Za-z_][\w]*)\s*<=\s*[^;]+;", code)
    if match and "<=" in code:
        target = match.group(1)
        mutated = code[: match.start()] + f"{target} <= {target};" + code[match.end():]
        if mutated != code:
            yield MutationCandidate(
                buggy_line=mutated,
                mutation_name="assign_freeze_register",
                edit_kind="other",
                description=f"'{target}' reassigned to itself, freezing its value",
            )


def enumerate_mutations(
    line: str, in_scope_signals: Sequence[str] = ()
) -> list[MutationCandidate]:
    """All mutation candidates for one line, across every operator class."""
    candidates: list[MutationCandidate] = []
    candidates.extend(operator_mutations(line))
    candidates.extend(value_mutations(line))
    candidates.extend(condition_mutations(line))
    candidates.extend(variable_mutations(line, in_scope_signals))
    candidates.extend(assignment_mutations(line))
    unique: dict[str, MutationCandidate] = {}
    for candidate in candidates:
        if candidate.buggy_line.strip() and candidate.buggy_line != line:
            unique.setdefault(candidate.buggy_line, candidate)
    return list(unique.values())
