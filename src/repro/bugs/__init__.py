"""Bug injection: the seven-type mutation engine of Table I.

In the paper, Claude-3.5 generates "random bugs" that are injected into the
golden Verilog and validated with EDA tools.  Here the bugs come from a
mutation engine with operators covering the same taxonomy:

* ``Op`` -- operator misuse (``+`` vs ``-``, ``&&`` vs ``||``, ``==`` vs ``!=`` ...),
* ``Value`` -- wrong constants, off-by-one values, wrong literal widths,
* ``Var`` -- wrong signal referenced,
* ``Cond`` / ``Non_cond`` -- whether the edit lands in a conditional statement,
* ``Direct`` / ``Indirect`` -- whether the signal assigned on the buggy line
  appears directly in the failing assertion (assigned after verification).
"""

from repro.bugs.instance import BugInstance
from repro.bugs.mutators import MutationCandidate, enumerate_mutations
from repro.bugs.injector import BugInjector, InjectionConfig
from repro.bugs.taxonomy import (
    BUG_TYPE_ORDER,
    classify_cond,
    classify_direct,
    bug_type_labels,
    taxonomy_table,
)

__all__ = [
    "BugInstance",
    "MutationCandidate",
    "enumerate_mutations",
    "BugInjector",
    "InjectionConfig",
    "BUG_TYPE_ORDER",
    "classify_cond",
    "classify_direct",
    "bug_type_labels",
    "taxonomy_table",
]
