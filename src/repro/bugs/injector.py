"""Bug injection into golden designs.

The injector enumerates functional source lines of a design (declarations,
port lists and assertion regions are excluded), applies the mutation
operators of :mod:`repro.bugs.mutators`, and keeps only mutants that still
compile -- mirroring Stage 2 of the paper's pipeline, which uses the compiler
to "identify and eliminate syntax errors introduced during the random bug
generation process".  Whether a surviving mutant actually triggers an
assertion failure is decided later by the validation stage.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Optional

from repro.bugs.instance import BugInstance
from repro.bugs.mutators import MutationCandidate, enumerate_mutations
from repro.hdl.elaborate import ElaboratedDesign
from repro.hdl.lint import compile_source
from repro.hdl.source import SourceFile, strip_comment


@dataclass
class InjectionConfig:
    """Controls how many mutants are produced per design."""

    seed: int = 7
    max_bugs_per_design: int = 6
    max_candidates_per_line: int = 3
    require_compile: bool = True


#: line prefixes that never receive bugs (structure, declarations, assertions).
_EXCLUDED_PREFIXES = (
    "module",
    "endmodule",
    "input",
    "output",
    "inout",
    "wire",
    "reg",
    "logic",
    "integer",
    "parameter",
    "localparam",
    "property",
    "endproperty",
    "assert",
    "assume",
    "cover",
    "begin",
    "end",
    "endcase",
    ");",
)

_ASSIGN_TARGET = re.compile(r"^\s*(?:assign\s+)?([A-Za-z_][\w]*)\s*(?:\[[^\]]*\])?\s*<?=")


class BugInjector:
    """Produces compiling single-line mutants of a golden design."""

    def __init__(self, config: Optional[InjectionConfig] = None):
        self._config = config or InjectionConfig()
        self._random = random.Random(self._config.seed)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def inject(
        self,
        design_name: str,
        golden_source: str,
        design: Optional[ElaboratedDesign] = None,
    ) -> list[BugInstance]:
        """Generate up to ``max_bugs_per_design`` bug instances for one design."""
        source_file = SourceFile(golden_source)
        signal_names = sorted(design.signals) if design is not None else []
        assigned_by_line = self._assigned_by_line(design)
        candidate_lines = self.mutable_lines(golden_source)
        self._random.shuffle(candidate_lines)
        instances: list[BugInstance] = []
        for line_number in candidate_lines:
            if len(instances) >= self._config.max_bugs_per_design:
                break
            golden_line = source_file.line(line_number)
            scope = self._scope_for_line(golden_line, signal_names)
            mutations = enumerate_mutations(golden_line, scope)
            self._random.shuffle(mutations)
            accepted = 0
            for mutation in mutations:
                if accepted >= self._config.max_candidates_per_line:
                    break
                if len(instances) >= self._config.max_bugs_per_design:
                    break
                instance = self._materialise(
                    design_name,
                    source_file,
                    line_number,
                    golden_line,
                    mutation,
                    assigned_by_line.get(line_number, []),
                )
                if instance is not None:
                    instances.append(instance)
                    accepted += 1
        return instances

    @staticmethod
    def _assigned_by_line(design: Optional[ElaboratedDesign]) -> dict[int, list[str]]:
        """Invert the design's driver map: line number -> signals assigned there."""
        assigned: dict[int, list[str]] = {}
        if design is None:
            return assigned
        for signal, lines in design.driver_lines.items():
            for line in lines:
                assigned.setdefault(line, []).append(signal)
        return assigned

    def mutable_lines(self, source: str) -> list[int]:
        """1-based numbers of lines eligible for mutation."""
        source_file = SourceFile(source)
        in_property = False
        eligible: list[int] = []
        for number in source_file.code_line_numbers():
            stripped = strip_comment(source_file.line(number)).strip()
            lowered = stripped.lower()
            if lowered.startswith("property"):
                in_property = True
            if lowered.startswith("endproperty"):
                in_property = False
                continue
            if in_property:
                continue
            if any(lowered.startswith(prefix) for prefix in _EXCLUDED_PREFIXES):
                # `assign` statements are functional even though `wire`/`reg` are not.
                if not lowered.startswith("assign"):
                    continue
            if lowered.endswith(":") or "assert property" in lowered:
                continue
            if "=" in stripped or lowered.startswith(("if", "else", "case", "casez", "casex")):
                eligible.append(number)
        return eligible

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _scope_for_line(self, line: str, signal_names: list[str]) -> list[str]:
        """In-scope replacement signals, shuffled, current line's names first removed."""
        scope = [name for name in signal_names if "__" not in name]
        self._random.shuffle(scope)
        return scope[:12]

    def _materialise(
        self,
        design_name: str,
        source_file: SourceFile,
        line_number: int,
        golden_line: str,
        mutation: MutationCandidate,
        elaborated_targets: Optional[list[str]] = None,
    ) -> Optional[BugInstance]:
        buggy_source = source_file.with_line_replaced(line_number, mutation.buggy_line).text
        if self._config.require_compile:
            result = compile_source(buggy_source)
            if not result.ok:
                return None
        assigned = list(elaborated_targets) if elaborated_targets else self._assigned_signals(golden_line)
        return BugInstance(
            design_name=design_name,
            golden_source=source_file.text,
            buggy_source=buggy_source,
            line_number=line_number,
            golden_line=golden_line,
            buggy_line=mutation.buggy_line,
            mutation_name=mutation.mutation_name,
            edit_kind=mutation.edit_kind,
            is_conditional=self._is_conditional(golden_line, mutation),
            assigned_signals=assigned,
            description=mutation.description,
        )

    @staticmethod
    def _assigned_signals(line: str) -> list[str]:
        match = _ASSIGN_TARGET.match(strip_comment(line))
        if match:
            return [match.group(1)]
        return []

    @staticmethod
    def _is_conditional(line: str, mutation: MutationCandidate) -> bool:
        """True when the edit touches the *condition* of a conditional statement.

        A bug on the right-hand side of an assignment that merely sits under an
        ``if`` is not a Cond bug (Table I calls those Non_cond); only edits to
        the condition expression itself, to case selectors/labels, or to
        structural conditional lines count.
        """
        if mutation.mutation_name.startswith("cond_"):
            return True
        golden = strip_comment(line)
        buggy = strip_comment(mutation.buggy_line)
        diff_index = _first_difference(golden, buggy)
        if diff_index is None:
            return False
        lowered = golden.strip().lower()
        if lowered.startswith(("case", "casez", "casex")):
            return True
        for keyword in ("if",):
            for match in re.finditer(rf"\b{keyword}\b", golden):
                open_paren = golden.find("(", match.end())
                if open_paren < 0:
                    continue
                close_paren = _matching_paren(golden, open_paren)
                if close_paren is not None and open_paren <= diff_index <= close_paren:
                    return True
        # A case label such as "2'd1:" at the start of the line is a conditional edit.
        label_match = re.match(r"\s*[^:=]+:", golden)
        if label_match and "::" not in golden and "<=" not in golden[: label_match.end()]:
            if diff_index < label_match.end() and not lowered.startswith(("assign",)):
                return True
        return False


def _first_difference(left: str, right: str) -> Optional[int]:
    """Index of the first differing character between two strings (None if equal)."""
    for index, (a, b) in enumerate(zip(left, right)):
        if a != b:
            return index
    if len(left) != len(right):
        return min(len(left), len(right))
    return None


def _matching_paren(text: str, open_index: int) -> Optional[int]:
    """Index of the parenthesis matching ``text[open_index]``."""
    depth = 0
    for index in range(open_index, len(text)):
        if text[index] == "(":
            depth += 1
        elif text[index] == ")":
            depth -= 1
            if depth == 0:
                return index
    return None
