"""Bug taxonomy of Table I and the classifiers that assign its labels.

A bug instance is labelled along three orthogonal dimensions:

* ``Direct`` / ``Indirect`` -- does the signal assigned on the buggy line
  appear directly in a failing assertion's expression?
* ``Var`` / ``Value`` / ``Op`` -- the class of edit that produced the bug
  (some structural edits fall outside these three, as in the paper where the
  three counts do not add up to the dataset size).
* ``Cond`` / ``Non_cond`` -- does the bug sit in a conditional statement?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bugs.instance import BugInstance
from repro.hdl.elaborate import AssertionSpec

#: canonical ordering of the seven categories used by Tables II and Figs. 4/5.
BUG_TYPE_ORDER: tuple[str, ...] = (
    "Direct",
    "Indirect",
    "Var",
    "Value",
    "Op",
    "Cond",
    "Non_cond",
)


@dataclass(frozen=True)
class TaxonomyRow:
    """One row of Table I."""

    name: str
    description: str
    expected_form: str
    unexpected_form: str
    assertion: str


def taxonomy_table() -> list[TaxonomyRow]:
    """The content of Table I (used by the Table-I benchmark)."""
    return [
        TaxonomyRow(
            "Direct",
            "Bug signal appears directly in the assertion.",
            "out <= in;",
            "out <= in + 1;",
            "assert(out == in)",
        ),
        TaxonomyRow(
            "Indirect",
            "Bug signal does not appear directly in the assertion.",
            "temp <= in; out <= temp;",
            "temp <= in + 1; out <= temp;",
            "assert(out == in)",
        ),
        TaxonomyRow(
            "Var",
            "Incorrect variable name or type.",
            "out = in;",
            "out = input;",
            "-",
        ),
        TaxonomyRow(
            "Value",
            "Incorrect variable values, constants, or signal bit widths.",
            "out = 4'b1010;",
            "out = 4'b1110;",
            "-",
        ),
        TaxonomyRow(
            "Op",
            "Misuse of operators.",
            "out = a | b;",
            "out = a & b;",
            "-",
        ),
        TaxonomyRow(
            "Cond",
            "Bug in conditional statement (e.g., if, always).",
            "if (valid) out <= in;",
            "if (!valid) out <= in;",
            "-",
        ),
        TaxonomyRow(
            "Non_cond",
            "Bug unrelated to conditional statements.",
            "if (valid) out <= in;",
            "if (valid) out <= input;",
            "-",
        ),
    ]


def classify_direct(bug: BugInstance, failing_assertions: list[AssertionSpec]) -> bool:
    """True when a signal assigned on the buggy line appears in a failing assertion."""
    if not failing_assertions:
        return False
    assigned = set(bug.assigned_signals)
    if not assigned:
        return False
    for spec in failing_assertions:
        if assigned & spec.identifiers():
            return True
    return False


def classify_cond(bug: BugInstance) -> bool:
    """True when the bug lives in a conditional statement (Cond vs Non_cond)."""
    return bug.is_conditional


def edit_label(bug: BugInstance) -> str:
    """Map the mutation's edit kind to the Table-I label (Var/Value/Op or Other)."""
    mapping = {"var": "Var", "value": "Value", "op": "Op"}
    return mapping.get(bug.edit_kind, "Other")


def bug_type_labels(bug: BugInstance) -> list[str]:
    """All Table-I labels that apply to a (validated) bug instance."""
    labels: list[str] = []
    if bug.is_direct is True:
        labels.append("Direct")
    elif bug.is_direct is False and bug.triggers_assertion:
        labels.append("Indirect")
    edit = edit_label(bug)
    if edit in ("Var", "Value", "Op"):
        labels.append(edit)
    labels.append("Cond" if classify_cond(bug) else "Non_cond")
    return labels
