"""Content-addressed compiled-artifact caching and incremental relowering.

``repro.artifacts`` is the layer that makes verifying a one-line mutant
cost one line's worth of lowering:

* :mod:`repro.artifacts.canon` -- canonical design rendering,
  :func:`design_fingerprint` (the content address) and per-node keys (the
  unit of incremental relowering);
* :mod:`repro.artifacts.store` -- :class:`ArtifactStore`: a bounded
  in-process LRU of lowered simulators/checkers keyed by fingerprint, plus
  an optional on-disk tier (over :class:`repro.runtime.cache.ResultCache`)
  that shares elaborated designs across worker processes.

Consumers: :class:`repro.eval.verifier.SemanticVerifier` (compiles each
case's buggy base once and relowers candidates incrementally),
:mod:`repro.eval.executor` (per-process stores with a shared disk tier),
Stage 2 (:mod:`repro.dataaug.stage2`, golden-trace and per-mutant reuse)
and :func:`repro.sva.checker.check_assertions`.
"""

from repro.artifacts.canon import (
    FINGERPRINT_VERSION,
    assertion_key,
    assign_node_key,
    block_node_key,
    design_canonical_text,
    design_fingerprint,
    initial_node_key,
)
from repro.artifacts.store import (
    DEFAULT_LRU_ENTRIES,
    ELABORATION_VERSION,
    ArtifactStore,
    default_store,
    process_store,
)

__all__ = [
    "ArtifactStore",
    "DEFAULT_LRU_ENTRIES",
    "ELABORATION_VERSION",
    "FINGERPRINT_VERSION",
    "assertion_key",
    "assign_node_key",
    "block_node_key",
    "default_store",
    "design_canonical_text",
    "design_fingerprint",
    "initial_node_key",
    "process_store",
]
