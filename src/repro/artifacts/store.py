"""The compiled-artifact cache: a bounded LRU plus an on-disk tier.

Every candidate repair the verification loop judges is a one-line mutant of
a design it has already compiled, yet historically each one paid a full
parse + elaborate + lower.  :class:`ArtifactStore` removes that waste at
three levels:

* an **in-process LRU** keyed by :func:`~repro.artifacts.canon.design_fingerprint`
  holds lowered state -- :class:`~repro.sim.compile.CompiledDesign` and
  :class:`~repro.sva.checker.CheckerBackend` instances.  Lowered closures
  are process-local by nature (they do not pickle), so this tier is bounded
  (``REPRO_ARTIFACT_LRU``, default 128 entries) and evicts least-recently
  used entries instead of pinning them forever;
* an optional **on-disk tier** (a :class:`~repro.runtime.cache.ResultCache`)
  shares *elaborated designs* across worker processes, keyed by the SHA-256
  of the source text: a worker that misses in memory skips the parse +
  elaborate of a design any other worker has already seen (the payload is a
  pickled :class:`~repro.hdl.elaborate.ElaboratedDesign`; compile failures
  are cached with their first rendered diagnostic so a failing candidate is
  diagnosed once per fleet, not once per worker);
* **incremental relowering**: the typed helpers accept a ``base`` artifact
  and hand it to :func:`repro.sim.compile.compile_design` /
  :func:`repro.sva.checker.CheckerBackend`, which reuse the base's closures
  for every content-identical node and relower only the dirty cone.

Counters (``artifact.hits`` / ``artifact.misses`` / ``artifact.evictions``,
``artifact.disk.hits`` / ``artifact.disk.misses``) land in the ambient
:mod:`repro.obs` registry and surface in ``python -m repro.obs summarize``.
Cache state never changes results: incremental relowering is byte-identical
to full recompilation (pinned by ``tests/test_artifacts.py``).
"""

from __future__ import annotations

import base64
import os
import pickle
import weakref
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

from repro.artifacts.canon import design_fingerprint
from repro.hdl.elaborate import ElaboratedDesign
from repro.obs.metrics import get_registry
from repro.runtime.cache import ResultCache, content_key

#: Versions the on-disk elaboration payloads: bump on pickle-incompatible
#: changes to ElaboratedDesign or on parser/elaborator semantic changes.
ELABORATION_VERSION = "repro_artifacts_elaboration/v1"

#: Default in-process LRU bound (entries, not bytes); ``REPRO_ARTIFACT_LRU``
#: overrides it per process.
DEFAULT_LRU_ENTRIES = 128

#: Cached marker for designs the compiled simulator backend rejects, so the
#: (expensive, exception-raising) compile attempt happens once per design.
_UNCOMPILABLE = "uncompilable"


def _lru_bound() -> int:
    raw = os.environ.get("REPRO_ARTIFACT_LRU", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_LRU_ENTRIES


class ArtifactStore:
    """Content-addressed cache of compiled simulators, checkers and designs."""

    def __init__(
        self,
        max_entries: Optional[int] = None,
        disk: Union[ResultCache, Path, str, None] = None,
    ):
        self.max_entries = max_entries if max_entries is not None else _lru_bound()
        if disk is not None and not isinstance(disk, ResultCache):
            disk = ResultCache(disk)
        self.disk: Optional[ResultCache] = disk
        self._lru: "OrderedDict[str, object]" = OrderedDict()
        #: Fingerprints memoised per design *object*, keyed by ``id()`` with a
        #: weakref finalizer evicting the entry when the design dies (designs
        #: are unhashable dataclasses, so WeakKeyDictionary cannot hold them;
        #: the finalizer runs before the id can be reused).  Rendering the
        #: canonical text is cheap next to lowering, but callers fingerprint
        #: the same object several times per verdict.
        self._fingerprints: dict[int, str] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # the generic keyed LRU
    # ------------------------------------------------------------------ #

    def get(self, key: str):
        """The cached artifact, or ``None`` on a miss (values are never None)."""
        entry = self._lru.get(key)
        if entry is None:
            self.misses += 1
            get_registry().inc("artifact.misses")
            return None
        self._lru.move_to_end(key)
        self.hits += 1
        get_registry().inc("artifact.hits")
        return entry

    def put(self, key: str, value: object) -> None:
        self._lru[key] = value
        self._lru.move_to_end(key)
        while len(self._lru) > self.max_entries:
            self._lru.popitem(last=False)
            self.evictions += 1
            get_registry().inc("artifact.evictions")

    def __len__(self) -> int:
        return len(self._lru)

    def stats(self) -> dict:
        """This instance's traffic counters (process-local, since creation)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._lru),
        }

    def fingerprint(self, design: ElaboratedDesign) -> str:
        """:func:`design_fingerprint`, memoised per design object."""
        key = id(design)
        cached = self._fingerprints.get(key)
        if cached is None:
            cached = design_fingerprint(design)
            self._fingerprints[key] = cached
            weakref.finalize(design, self._fingerprints.pop, key, None)
        return cached

    # ------------------------------------------------------------------ #
    # typed helpers: lowered simulators and checkers
    # ------------------------------------------------------------------ #

    def compiled_design(self, design: ElaboratedDesign, base=None):
        """The design lowered for the compiled simulator backend, via the LRU.

        Returns ``None`` when the compiled backend rejects the design (the
        rejection is cached too -- callers fall back to the interpreter
        exactly as the :func:`~repro.sim.engine.Simulator` factory would).
        ``base`` is an optional :class:`~repro.sim.compile.CompiledDesign`
        to relower incrementally against on a miss.
        """
        from repro.sim.compile import CompileError, compile_design

        key = f"sim:{self.fingerprint(design)}"
        entry = self.get(key)
        if entry is None:
            try:
                entry = compile_design(design, base=base)
            except CompileError:
                entry = _UNCOMPILABLE
            self.put(key, entry)
        return None if entry is _UNCOMPILABLE else entry

    def checker(self, design: ElaboratedDesign, backend: str = "auto", base=None):
        """An assertion checker for ``design``, via the LRU (per backend).

        The strict ``"compiled"`` backend can raise
        :class:`~repro.sim.compile.CompileError` exactly as the factory
        does; failures are not cached.
        """
        from repro.sva.checker import CheckerBackend

        key = f"sva:{backend}:{self.fingerprint(design)}"
        entry = self.get(key)
        if entry is None:
            entry = CheckerBackend(design, backend=backend, base=base)
            self.put(key, entry)
        return entry

    def dataflow(self, design: ElaboratedDesign):
        """The design's signal dataflow graph, via the LRU.

        Content-addressed like the other lowered artifacts: two designs
        with equal fingerprints share one graph, so the verifier's screen
        pays graph construction once per base design rather than once per
        candidate.
        """
        from repro.analyze.dfg import SignalDfg

        key = f"dfg:{self.fingerprint(design)}"
        entry = self.get(key)
        if entry is None:
            entry = SignalDfg(design)
            self.put(key, entry)
        return entry

    # ------------------------------------------------------------------ #
    # the on-disk elaboration tier
    # ------------------------------------------------------------------ #

    def elaborate_source(
        self, source: str, persist: bool = True
    ) -> tuple[Optional[ElaboratedDesign], str]:
        """Compile Verilog text to a design, through the on-disk tier if any.

        Returns ``(design, "")`` on success and ``(None, first_error)`` on a
        compile failure, with ``first_error`` rendered exactly as
        :func:`repro.hdl.lint.compile_source` callers render it -- cached
        and fresh paths must produce byte-identical verdict details.

        ``persist=False`` still reads through the disk tier but never writes
        to it: right for one-shot sources (candidate mutants, verified once
        and never seen by another process) where pickling every elaboration
        would cost more than the tier can ever give back.  Base designs --
        the ones mutants are deltas of -- persist.

        Elaborations also live in the in-process LRU keyed by the source
        hash (parse + elaborate dominates the cost of verifying a small
        candidate, so a warm store skips it entirely on repeat sources).
        """
        from repro.hdl.lint import compile_source

        registry = get_registry()
        source_key = f"src:{content_key(ELABORATION_VERSION, source)}"
        cached = self.get(source_key)
        if cached is not None:
            return cached
        key = None
        if self.disk is not None:
            key = content_key(ELABORATION_VERSION, source)
            payload = self.disk.get(key)
            if payload is not None:
                if not payload.get("ok"):
                    registry.inc("artifact.disk.hits")
                    entry = (None, str(payload.get("error", "compilation failed")))
                    self.put(source_key, entry)
                    return entry
                try:
                    design = pickle.loads(base64.b64decode(payload["design"]))
                except Exception:
                    design = None  # corrupt payload: fall through and recompute
                if isinstance(design, ElaboratedDesign):
                    registry.inc("artifact.disk.hits")
                    self.put(source_key, (design, ""))
                    return design, ""
            registry.inc("artifact.disk.misses")
        result = compile_source(source)
        write_through = self.disk is not None and persist
        if not result.ok or result.design is None:
            error = result.errors[0].render() if result.errors else "compilation failed"
            if write_through:
                self.disk.put(key, {"ok": False, "error": error})
            self.put(source_key, (None, error))
            return None, error
        if write_through:
            blob = base64.b64encode(
                pickle.dumps(result.design, protocol=pickle.HIGHEST_PROTOCOL)
            ).decode("ascii")
            self.disk.put(key, {"ok": True, "design": blob})
        self.put(source_key, (result.design, ""))
        return result.design, ""


# --------------------------------------------------------------------------- #
# process-wide stores
# --------------------------------------------------------------------------- #

_PROCESS_STORES: dict[Optional[str], ArtifactStore] = {}


def process_store(disk_dir: Union[Path, str, None] = None) -> ArtifactStore:
    """The per-process shared store for one on-disk tier (or none).

    Worker processes handle many jobs over their lifetime; routing them all
    through one store makes the LRU pay across jobs, and ``disk_dir`` (the
    directory of the shared :class:`~repro.runtime.cache.ResultCache` tier)
    is part of the identity so two harnesses with different tiers never
    alias.
    """
    key = str(disk_dir) if disk_dir is not None else None
    store = _PROCESS_STORES.get(key)
    if store is None:
        store = ArtifactStore(disk=disk_dir)
        _PROCESS_STORES[key] = store
    return store


def default_store() -> ArtifactStore:
    """The process-wide store with no on-disk tier (memory-only)."""
    return process_store(None)
