"""Canonical rendering and content fingerprints for elaborated designs.

The compiled-artifact cache (:mod:`repro.artifacts.store`) keys lowered
state -- :class:`~repro.sim.compile.CompiledDesign`,
:class:`~repro.sva.compile.CompiledAssertionChecker` -- by *content*, not by
object identity: two elaborations of the same source (or of byte-different
sources that elaborate identically) must map to the same key.  This module
provides that content address at two granularities:

* :func:`design_fingerprint` -- a SHA-256 over a canonical text of the whole
  elaborated design (signals, parameters, every node, every assertion).
  Artifacts keyed by it are interchangeable across equal-fingerprint
  designs.
* per-node keys (:func:`assign_node_key`, :func:`block_node_key`,
  :func:`initial_node_key`, :func:`assertion_key`) -- the unit of
  *incremental relowering*: a patched design reuses a base design's lowered
  closures for every node whose key is unchanged and relowers only the
  dirty cone.

The renderer is deliberately independent of the AST nodes' ``__str__``
(``Number.__str__`` preserves the source literal text, and synthesised
numbers may have none): every field that can change evaluation -- value,
width, x/z mask, operator, structure -- is rendered explicitly, so equal
canon implies equal lowering.  Line numbers are *included*: they make keys
strictly more conservative (a false split costs a relower; a false merge
could resurrect stale diagnostics), and single-line repairs leave every
other node's line untouched, which is the reuse case that matters.

Only :mod:`repro.hdl` is imported here, so the simulator and SVA lowerings
can use these keys without an import cycle.
"""

from __future__ import annotations

import hashlib

from repro.hdl import ast
from repro.hdl.elaborate import AssertionSpec, ElaboratedDesign, ProceduralBlock

#: Bumped whenever the canonical rendering changes meaning: keys every
#: previously stored artifact out of the on-disk tier.
FINGERPRINT_VERSION = "repro_design_fingerprint/v1"


# --------------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------------- #


def canon_expr(expr: ast.Expression) -> str:
    """A canonical, unambiguous text of one expression tree."""
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.Number):
        width = "?" if expr.width is None else str(expr.width)
        return f"#{expr.value}w{width}x{expr.xz_mask}"
    if isinstance(expr, ast.Unary):
        return f"({expr.op}{canon_expr(expr.operand)})"
    if isinstance(expr, ast.Binary):
        return f"({canon_expr(expr.left)}{expr.op}{canon_expr(expr.right)})"
    if isinstance(expr, ast.Ternary):
        return (
            f"({canon_expr(expr.condition)}?{canon_expr(expr.if_true)}"
            f":{canon_expr(expr.if_false)})"
        )
    if isinstance(expr, ast.BitSelect):
        return f"{canon_expr(expr.base)}[{canon_expr(expr.index)}]"
    if isinstance(expr, ast.PartSelect):
        return f"{canon_expr(expr.base)}[{canon_expr(expr.msb)}:{canon_expr(expr.lsb)}]"
    if isinstance(expr, ast.Concat):
        return "{" + ",".join(canon_expr(part) for part in expr.parts) + "}"
    if isinstance(expr, ast.Replicate):
        return "{" + canon_expr(expr.count) + "{" + canon_expr(expr.value) + "}}"
    if isinstance(expr, ast.SystemCall):
        return expr.name + "(" + ",".join(canon_expr(a) for a in expr.args) + ")"
    # Unknown expression type: repr is deterministic for dataclasses and
    # renders every field, so novel nodes can never silently collide.
    return repr(expr)


# --------------------------------------------------------------------------- #
# statements
# --------------------------------------------------------------------------- #


def canon_stmt(stmt: ast.Statement) -> str:
    """A canonical text of one procedural statement (recursively)."""
    if isinstance(stmt, ast.Block):
        return "{" + ";".join(canon_stmt(sub) for sub in stmt.statements) + "}"
    if isinstance(stmt, ast.Assign):
        op = "=" if stmt.blocking else "<="
        return f"{canon_expr(stmt.target)}{op}{canon_expr(stmt.value)}"
    if isinstance(stmt, ast.If):
        text = f"if({canon_expr(stmt.condition)}){canon_stmt(stmt.then_branch)}"
        if stmt.else_branch is not None:
            text += f"else{canon_stmt(stmt.else_branch)}"
        return text
    if isinstance(stmt, ast.Case):
        items = []
        for item in stmt.items:
            labels = ",".join(canon_expr(label) for label in item.labels) or "default"
            items.append(f"[{labels}:{canon_stmt(item.body)}]")
        return f"{stmt.variant}({canon_expr(stmt.subject)})" + "".join(items)
    if isinstance(stmt, ast.For):
        return (
            f"for({stmt.init_var}={canon_expr(stmt.init_value)};"
            f"{canon_expr(stmt.condition)};{stmt.step_var}={canon_expr(stmt.step_value)})"
            f"{canon_stmt(stmt.body)}"
        )
    if isinstance(stmt, ast.SystemTaskCall):
        return stmt.name + "(" + ",".join(canon_expr(a) for a in stmt.args) + ")"
    if isinstance(stmt, ast.NullStatement):
        return ";"
    return repr(stmt)


# --------------------------------------------------------------------------- #
# per-node keys (the unit of incremental relowering)
# --------------------------------------------------------------------------- #


def assign_node_key(assign: ast.ContinuousAssign) -> str:
    """Content key of one continuous assignment node."""
    return f"assign@{assign.line}:{canon_expr(assign.target)}={canon_expr(assign.value)}"


def _canon_sensitivity(block: ProceduralBlock) -> str:
    if block.star:
        return "*"
    return ",".join(
        f"{item.edge or 'level'} {item.signal}" for item in block.sensitivity
    )


def block_node_key(block: ProceduralBlock) -> str:
    """Content key of one procedural (comb or clocked) block node."""
    return f"always@{block.line}:({_canon_sensitivity(block)}){canon_stmt(block.body)}"


def initial_node_key(initial: ast.InitialBlock) -> str:
    """Content key of one ``initial`` block."""
    return f"initial@{initial.line}:{canon_stmt(initial.body)}"


def _canon_sequence(sequence: ast.SvaSequence) -> str:
    return "".join(
        f"##{element.delay}{canon_expr(element.expr)}" for element in sequence.elements
    )


def assertion_key(spec: AssertionSpec) -> str:
    """Content key of one concurrent assertion.

    Includes the name and error message: a lowered assertion carries both
    into its outcomes and failure records, so reuse must be exact there too.
    """
    antecedent = (
        _canon_sequence(spec.body.antecedent) if spec.body.antecedent is not None else ""
    )
    implication = "|->" if spec.body.overlapping else "|=>"
    disable = canon_expr(spec.disable_iff) if spec.disable_iff is not None else ""
    return (
        f"{spec.kind} {spec.name}@{spec.line}"
        f":@({spec.clock.edge} {spec.clock.signal})"
        f":disable({disable})"
        f":{antecedent}{implication}{_canon_sequence(spec.body.consequent)}"
        f":msg={spec.error_message}"
    )


# --------------------------------------------------------------------------- #
# whole-design fingerprint
# --------------------------------------------------------------------------- #


def design_canonical_text(design: ElaboratedDesign) -> str:
    """The canonical text the design fingerprint hashes.

    Covers everything the simulator or checker can observe: the signal
    table (names, widths, kinds, signedness, declared ranges), parameters,
    every settle/clocked/initial node, and every assertion.  Derived state
    (dependency graph, driver lines) is recomputed from these, so it is
    deliberately not rendered.
    """
    parts = [FINGERPRINT_VERSION, f"module {design.name}"]
    parts.append("signals:")
    for name in sorted(design.signals):
        signal = design.signals[name]
        parts.append(
            f"  {name}:w{signal.width}:{signal.kind}:s{int(signal.signed)}"
            f":[{signal.msb}:{signal.lsb}]"
        )
    parts.append("parameters:")
    for name in sorted(design.parameters):
        parts.append(f"  {name}={design.parameters[name]}")
    parts.append("assigns:")
    parts.extend(f"  {assign_node_key(a)}" for a in design.continuous_assigns)
    parts.append("comb:")
    parts.extend(f"  {block_node_key(b)}" for b in design.comb_blocks)
    parts.append("seq:")
    parts.extend(f"  {block_node_key(b)}" for b in design.seq_blocks)
    parts.append("initial:")
    parts.extend(f"  {initial_node_key(i)}" for i in design.initial_blocks)
    parts.append("assertions:")
    parts.extend(f"  {assertion_key(spec)}" for spec in design.assertions)
    return "\n".join(parts)


def design_fingerprint(design: ElaboratedDesign) -> str:
    """Stable SHA-256 content hash of one elaborated design."""
    return hashlib.sha256(design_canonical_text(design).encode()).hexdigest()
