"""repro.obs -- zero-dependency observability: tracing, metrics, reports.

Three parts, stdlib-only:

* :mod:`repro.obs.trace` -- span tracer (``Tracer.span(name, **attrs)``
  context managers, nested monotonic timings, a no-op :data:`NULL_TRACER`
  ambient default so disabled tracing costs nothing), with JSONL and
  Chrome-trace-event (Perfetto-loadable) export.  Worker-process spans are
  buffered per job and shipped back piggybacked on
  :func:`repro.runtime.run_jobs` chunk results.
* :mod:`repro.obs.metrics` -- ambient counter/gauge/histogram registry
  recording what spans cannot show: cache traffic, retries, timeouts,
  quarantines, pool rebuilds, per-engine SVA fallback counts, verifier
  phase durations.
* :mod:`repro.obs.report` -- renders a trace file into a human run report
  (per-stage table, top-N slowest jobs, engine fallback rates, fault
  summary); ``python -m repro.obs summarize <trace>`` is the CLI.

Everything here is out-of-band telemetry: no span or metric may flow into
content keys, dataset records or evaluation reports -- datasets and eval
summaries are byte-identical with tracing on or off, which the test suite
pins end to end.
"""

from __future__ import annotations

import time

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    labeled,
    scoped_registry,
    set_registry,
    split_label,
)
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_ENV,
    TRACE_SCHEMA,
    NullTracer,
    Span,
    TraceData,
    Tracer,
    chrome_trace_events,
    get_tracer,
    host_metadata,
    read_trace,
    resolve_trace_path,
    set_tracer,
    write_chrome_trace,
    write_trace,
)


class phase:
    """Span + duration histogram in one: ``with phase("verify.compile"):``.

    Opens a span named ``name`` on the ambient tracer and records the block
    duration into the ambient registry's ``<name>_s`` histogram, so phase
    timings survive even in aggregate-only views.  With the null tracer the
    span side is free; the histogram is one clock read and a dict update.
    """

    __slots__ = ("name", "attrs", "_span", "_start")

    def __init__(self, name: str, **attrs):
        self.name = name
        self.attrs = attrs

    def __enter__(self):
        self._span = get_tracer().span(self.name, **self.attrs)
        self._span.__enter__()
        self._start = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        get_registry().observe(self.name + "_s", time.perf_counter() - self._start)
        return self._span.__exit__(exc_type, exc, tb)


def annotate(**attrs) -> None:
    """Attach attrs to the ambient tracer's innermost open span."""
    get_tracer().annotate(**attrs)


__all__ = [
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TRACE_ENV",
    "TRACE_SCHEMA",
    "TraceData",
    "Tracer",
    "annotate",
    "chrome_trace_events",
    "get_registry",
    "get_tracer",
    "host_metadata",
    "labeled",
    "phase",
    "read_trace",
    "resolve_trace_path",
    "scoped_registry",
    "set_registry",
    "set_tracer",
    "split_label",
    "write_chrome_trace",
    "write_trace",
]
