"""Render a trace file into the human run report.

The report answers the questions the raw JSONL cannot at a glance: where
did the wall clock go (per-stage span table), which individual jobs were
slow (top-N), did the cache help (hit rates), which SVA engine actually
ran each assertion and why the vectorised one was skipped (fallback
reasons), and what the fault machinery did (retries / timeouts /
quarantines / pool rebuilds).  ``python -m repro.obs summarize <trace>``
prints it.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.obs.metrics import split_label
from repro.obs.trace import Span, TraceData

#: Counters rendered in the dedicated cache / engine / fault sections
#: (everything else lands under "other counters").
_CACHE_COUNTERS = (
    "runtime.cache.hits",
    "runtime.cache.misses",
    "runtime.cache.corrupt_entries",
    "runtime.cache.stale_tmp_swept",
    "eval.verdict_cache.hits",
    "eval.verdict_cache.misses",
    "eval.memo.hits",
    "artifact.hits",
    "artifact.misses",
    "artifact.evictions",
    "artifact.disk.hits",
    "artifact.disk.misses",
    "relower.nodes_reused",
    "relower.nodes_lowered",
    "relower.assertions_reused",
)
_ENGINE_COUNTERS = (
    "sva.lower.vectorised",
    "sva.lower.closure",
    "sva.lower.tree_walker",
    "sva.check.vectorised",
    "sva.check.closure",
    "sva.check.tree_walker",
    "sva.check.attempt_tensor",
    "sva.attempt.tensor",
    "sva.attempt.walk",
    "sva.attempt.tree_walker",
)
_FAULT_COUNTERS = (
    "runtime.retries",
    "runtime.timeouts",
    "runtime.quarantined",
    "runtime.pool_rebuilds",
)


def _fmt_seconds(value: float) -> str:
    return f"{value:10.4f}"


def _span_table(spans: Sequence[Span]) -> list[str]:
    aggregates: dict[str, dict] = {}
    for span in spans:
        entry = aggregates.setdefault(
            span.name, {"count": 0, "total": 0.0, "max": 0.0}
        )
        entry["count"] += 1
        entry["total"] += span.duration_s
        entry["max"] = max(entry["max"], span.duration_s)
    width = max((len(name) for name in aggregates), default=4)
    lines = [
        f"  {'span':<{width}}  {'count':>6}  {'total_s':>10}  {'mean_s':>10}  {'max_s':>10}"
    ]
    for name, entry in sorted(
        aggregates.items(), key=lambda item: item[1]["total"], reverse=True
    ):
        mean = entry["total"] / entry["count"]
        lines.append(
            f"  {name:<{width}}  {entry['count']:>6}"
            f"  {_fmt_seconds(entry['total'])}  {_fmt_seconds(mean)}  {_fmt_seconds(entry['max'])}"
        )
    return lines


def _slowest_jobs(spans: Sequence[Span], top: int) -> list[str]:
    jobs = [span for span in spans if span.name == "job"]
    pool = jobs if jobs else list(spans)
    ranked = sorted(pool, key=lambda span: span.duration_s, reverse=True)[:top]
    lines = []
    for span in ranked:
        attrs = " ".join(f"{key}={value}" for key, value in sorted(span.attrs.items()))
        suffix = f"  {attrs}" if attrs else ""
        lines.append(
            f"  {span.duration_s:9.4f}s  {span.name}  pid={span.pid}{suffix}"
        )
    return lines


def _hit_rate(hits: Union[int, float], misses: Union[int, float]) -> str:
    total = hits + misses
    if not total:
        return "n/a"
    return f"{100.0 * hits / total:.1f}%"


def render_report(data: TraceData, top: int = 10) -> str:
    """The full human run report for one loaded trace."""
    counters = dict(data.metrics.get("counters", {}))
    histograms = data.metrics.get("histograms", {})
    gauges = data.metrics.get("gauges", {})

    lines = [f"run report — {data.meta.get('schema', 'unknown schema')}"]
    host = data.meta.get("host", {})
    if host:
        parts = [f"{host.get('cpu_count', '?')} cpu", str(host.get("platform", "?"))]
        parts.append(f"python {host.get('python', '?')}")
        if "workers" in host:
            parts.append(f"workers {host['workers']}")
        lines.append("host: " + " · ".join(parts))
    extra_meta = {
        key: value
        for key, value in data.meta.items()
        if key not in ("schema", "host")
    }
    for key, value in sorted(extra_meta.items()):
        lines.append(f"{key}: {value}")

    if data.spans:
        lines += ["", f"stages ({len(data.spans)} spans):"]
        lines += _span_table(data.spans)
        lines += ["", f"slowest jobs (top {top}):"]
        lines += _slowest_jobs(data.spans, top)
    else:
        lines += ["", "stages: no spans recorded"]

    consumed: set = set()

    cache_lines = []
    hits = counters.get("runtime.cache.hits", 0)
    misses = counters.get("runtime.cache.misses", 0)
    if hits or misses:
        cache_lines.append(
            f"  result cache: {hits} hits · {misses} misses"
            f" · hit rate {_hit_rate(hits, misses)}"
        )
    corrupt = counters.get("runtime.cache.corrupt_entries", 0)
    swept = counters.get("runtime.cache.stale_tmp_swept", 0)
    if corrupt or swept:
        cache_lines.append(
            f"  corrupt entries {corrupt} · stale tmp files swept {swept}"
        )
    vhits = counters.get("eval.verdict_cache.hits", 0)
    vmisses = counters.get("eval.verdict_cache.misses", 0)
    memo = counters.get("eval.memo.hits", 0)
    if vhits or vmisses or memo:
        cache_lines.append(
            f"  verdict cache: {vhits} hits · {vmisses} misses"
            f" · hit rate {_hit_rate(vhits, vmisses)} · in-memory memo hits {memo}"
        )
    ahits = counters.get("artifact.hits", 0)
    amisses = counters.get("artifact.misses", 0)
    evictions = counters.get("artifact.evictions", 0)
    if ahits or amisses:
        cache_lines.append(
            f"  artifact cache: {ahits} hits · {amisses} misses"
            f" · hit rate {_hit_rate(ahits, amisses)} · evictions {evictions}"
        )
    dhits = counters.get("artifact.disk.hits", 0)
    dmisses = counters.get("artifact.disk.misses", 0)
    if dhits or dmisses:
        cache_lines.append(
            f"  artifact disk tier: {dhits} hits · {dmisses} misses"
            f" · hit rate {_hit_rate(dhits, dmisses)}"
        )
    reused = counters.get("relower.nodes_reused", 0)
    relowered = counters.get("relower.nodes_lowered", 0)
    specs_reused = counters.get("relower.assertions_reused", 0)
    if reused or relowered or specs_reused:
        cache_lines.append(
            f"  relowering: {reused} nodes reused · {relowered} nodes relowered"
            f" · {specs_reused} assertions reused"
        )
    if cache_lines:
        lines += ["", "caches:"] + cache_lines
    consumed.update(_CACHE_COUNTERS)

    engine_totals = {
        engine: counters.get(f"sva.lower.{engine}", 0)
        for engine in ("vectorised", "closure", "tree_walker")
    }
    fallbacks = {
        label: value
        for key, value in counters.items()
        for name, label in (split_label(key),)
        if name == "sva.vector_fallback" and label is not None
    }
    attempt_fallbacks = {
        label: value
        for key, value in counters.items()
        for name, label in (split_label(key),)
        if name == "sva.attempt_fallback" and label is not None
    }
    consumed.update(
        key
        for key in counters
        if split_label(key)[0] in ("sva.vector_fallback", "sva.attempt_fallback")
    )
    consumed.update(_ENGINE_COUNTERS)
    attempt_totals = {
        engine: counters.get(f"sva.attempt.{engine}", 0)
        for engine in ("tensor", "walk", "tree_walker")
    }
    if any(engine_totals.values()) or fallbacks or any(attempt_totals.values()):
        lines += ["", "sva engines (assertions lowered):"]
        lines.append(
            "  " + " · ".join(f"{k} {v}" for k, v in engine_totals.items())
        )
        checks = {
            engine: counters.get(f"sva.check.{engine}", 0)
            for engine in ("attempt_tensor", "vectorised", "closure", "tree_walker")
        }
        if any(checks.values()):
            lines.append(
                "  checked: "
                + " · ".join(f"{k} {v}" for k, v in checks.items())
            )
        if any(attempt_totals.values()):
            lines.append(
                "  attempt engines: "
                + " · ".join(f"{k} {v}" for k, v in attempt_totals.items())
            )
        if fallbacks:
            lines.append("  vectorisation fallback reasons:")
            for label, value in sorted(
                fallbacks.items(), key=lambda item: (-item[1], item[0])
            ):
                lines.append(f"    {value:>4}  {label}")
        if attempt_fallbacks:
            lines.append("  attempt-tensor fallback reasons:")
            for label, value in sorted(
                attempt_fallbacks.items(), key=lambda item: (-item[1], item[0])
            ):
                lines.append(f"    {value:>4}  {label}")

    analyze_counters = {
        key: value for key, value in sorted(counters.items()) if key.startswith("analyze.")
    }
    consumed.update(analyze_counters)
    consumed.add("stage2.cone_skips")
    if analyze_counters or counters.get("stage2.cone_skips", 0):
        lines += ["", "static analysis:"]
        skips = counters.get("analyze.cone.skip", 0)
        overlaps = counters.get("analyze.cone.overlap", 0)
        rejects = counters.get("analyze.screen.reject", 0)
        if skips or overlaps or rejects:
            lines.append(
                f"  verifier screen: {skips} cone skips · {overlaps} cone overlaps"
                f" · {rejects} lint rejects"
            )
        stage2_skips = counters.get("stage2.cone_skips", 0)
        if stage2_skips:
            lines.append(f"  stage2 mutants classified without simulation: {stage2_skips}")
        pass_counts = {
            key[len("analyze.pass."):]: value
            for key, value in analyze_counters.items()
            if key.startswith("analyze.pass.")
        }
        if pass_counts:
            lines.append("  pass diagnostics:")
            for pass_id, value in sorted(
                pass_counts.items(), key=lambda item: (-item[1], item[0])
            ):
                lines.append(f"    {value:>4}  {pass_id}")

    fault_values = {name: counters.get(name, 0) for name in _FAULT_COUNTERS}
    consumed.update(_FAULT_COUNTERS)
    if any(fault_values.values()):
        lines += ["", "faults:"]
        lines.append(
            f"  retries {fault_values['runtime.retries']}"
            f" · timeouts {fault_values['runtime.timeouts']}"
            f" · quarantined {fault_values['runtime.quarantined']}"
            f" · pool rebuilds {fault_values['runtime.pool_rebuilds']}"
        )
        failure_phases = {
            label: value
            for key, value in counters.items()
            for name, label in (split_label(key),)
            if name == "runtime.failure" and label is not None
        }
        consumed.update(
            key for key in counters if split_label(key)[0] == "runtime.failure"
        )
        for label, value in sorted(failure_phases.items()):
            lines.append(f"  failed during {label}: {value}")

    if histograms:
        width = max(len(name) for name in histograms)
        lines += ["", "phase durations:"]
        lines.append(
            f"  {'phase':<{width}}  {'count':>6}  {'total_s':>10}  {'mean_s':>10}"
            f"  {'min_s':>10}  {'max_s':>10}"
        )
        for name, agg in sorted(
            histograms.items(), key=lambda item: item[1]["sum"], reverse=True
        ):
            mean = agg["sum"] / agg["count"] if agg["count"] else 0.0
            lines.append(
                f"  {name:<{width}}  {agg['count']:>6}"
                f"  {_fmt_seconds(agg['sum'])}  {_fmt_seconds(mean)}"
                f"  {_fmt_seconds(agg['min'])}  {_fmt_seconds(agg['max'])}"
            )

    other = {
        key: value for key, value in sorted(counters.items()) if key not in consumed
    }
    if other:
        lines += ["", "other counters:"]
        for key, value in other.items():
            lines.append(f"  {key}: {value}")
    if gauges:
        lines += ["", "gauges:"]
        for key, value in sorted(gauges.items()):
            lines.append(f"  {key}: {value}")

    return "\n".join(lines) + "\n"


def summarize_path(path, top: int = 10) -> str:
    """Convenience wrapper: load a trace file and render its report."""
    from repro.obs.trace import read_trace

    return render_report(read_trace(path), top=top)


__all__ = ["render_report", "summarize_path"]
