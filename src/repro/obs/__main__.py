"""``python -m repro.obs`` — inspect trace files from the command line.

Subcommands:

* ``summarize TRACE [--top N]`` — print the human run report for a JSONL
  trace written by :func:`repro.obs.write_trace`.
* ``export-chrome TRACE [-o OUT]`` — convert the JSONL trace into Chrome
  trace-event JSON loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.report import render_report
from repro.obs.trace import read_trace, write_chrome_trace


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description="Inspect repro trace files."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser("summarize", help="print the human run report")
    summarize.add_argument("trace", help="JSONL trace file written by a traced run")
    summarize.add_argument(
        "--top", type=int, default=10, help="slowest-job rows to show (default 10)"
    )

    export = sub.add_parser(
        "export-chrome", help="convert a trace to Perfetto-loadable JSON"
    )
    export.add_argument("trace", help="JSONL trace file written by a traced run")
    export.add_argument(
        "-o",
        "--output",
        default=None,
        help="output path (default: <trace>.chrome.json)",
    )

    args = parser.parse_args(argv)
    trace_path = Path(args.trace)
    if not trace_path.exists():
        print(f"trace file not found: {trace_path}", file=sys.stderr)
        return 2
    data = read_trace(trace_path)

    if args.command == "summarize":
        sys.stdout.write(render_report(data, top=args.top))
        return 0

    output = Path(args.output) if args.output else trace_path.with_suffix(".chrome.json")
    write_chrome_trace(output, data.spans)
    print(f"wrote {len(data.spans)} events to {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
