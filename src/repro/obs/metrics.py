"""Counters, gauges and aggregate histograms for what spans cannot show.

A span says *when and how long*; a metric says *how often and how much*.
The registry records the events that were invisible before this layer --
result-cache hits and misses, retries, timeouts, quarantines, pool
rebuilds, per-engine SVA fallback counts, verifier phase durations -- as
three primitive kinds:

* **counter** -- a monotonically increasing integer (:meth:`MetricsRegistry.inc`);
* **gauge**   -- a last-write-wins value (:meth:`MetricsRegistry.set_gauge`);
* **histogram** -- an aggregate ``{count, sum, min, max}`` over observations
  (:meth:`MetricsRegistry.observe`); aggregates rather than raw samples so
  worker snapshots merge exactly and ship cheaply.

Like the tracer, the registry is ambient per process (:func:`get_registry`)
so instrumented code needs no plumbing; :func:`repro.runtime.run_jobs`
installs a fresh registry around each traced worker job and merges the
snapshot back on the orchestrator, which is how worker-side counts reach
the run's trace file.

Names are dotted paths (``runtime.cache.hits``); a variable label rides in
brackets via :func:`labeled` (``sva.vector_fallback[width 64 exceeds the
int64 column limit]``), keeping keys plain JSON-safe strings.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Union


def labeled(name: str, label: str) -> str:
    """Compose a labelled metric key: ``name[label]`` (newlines stripped)."""
    clean = " ".join(str(label).split())
    return f"{name}[{clean}]"


def split_label(key: str) -> tuple[str, Optional[str]]:
    """Inverse of :func:`labeled`: ``name[label]`` -> (name, label)."""
    if key.endswith("]") and "[" in key:
        name, _, label = key.partition("[")
        return name, label[:-1]
    return key, None


class MetricsRegistry:
    """One process's (or one job's) metric state; merges exactly."""

    def __init__(self) -> None:
        self.counters: dict[str, Union[int, float]] = {}
        self.gauges: dict[str, Union[int, float]] = {}
        self.histograms: dict[str, dict] = {}

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def inc(self, name: str, value: Union[int, float] = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: Union[int, float]) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        aggregate = self.histograms.get(name)
        if aggregate is None:
            self.histograms[name] = {"count": 1, "sum": value, "min": value, "max": value}
        else:
            aggregate["count"] += 1
            aggregate["sum"] += value
            if value < aggregate["min"]:
                aggregate["min"] = value
            if value > aggregate["max"]:
                aggregate["max"] = value

    def counter(self, name: str) -> Union[int, float]:
        return self.counters.get(name, 0)

    # ------------------------------------------------------------------ #
    # shipping
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """JSON-safe copy of the whole registry (ships across processes)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: dict(aggregate)
                for name, aggregate in sorted(self.histograms.items())
            },
        }

    def merge(self, snapshot: Union[dict, "MetricsRegistry"]) -> None:
        """Fold another registry's snapshot in: counters add, gauges take the
        incoming value, histogram aggregates combine exactly."""
        if isinstance(snapshot, MetricsRegistry):
            snapshot = snapshot.snapshot()
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, incoming in snapshot.get("histograms", {}).items():
            aggregate = self.histograms.get(name)
            if aggregate is None:
                self.histograms[name] = dict(incoming)
            else:
                aggregate["count"] += incoming["count"]
                aggregate["sum"] += incoming["sum"]
                aggregate["min"] = min(aggregate["min"], incoming["min"])
                aggregate["max"] = max(aggregate["max"], incoming["max"])

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


# ---------------------------------------------------------------------- #
# the ambient registry
# ---------------------------------------------------------------------- #

_ACTIVE = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process's ambient registry (always present; telemetry-only)."""
    return _ACTIVE


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as ambient and return the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextmanager
def scoped_registry(registry: Optional[MetricsRegistry] = None):
    """A fresh (or given) ambient registry for the duration of the block.

    Tests and job-scoped collection both use this: everything recorded
    inside the block lands in the yielded registry, and the previous
    ambient registry is restored on exit untouched.
    """
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
