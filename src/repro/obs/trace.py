"""Span-based tracing: nested monotonic timings that cost nothing when off.

One :class:`Tracer` holds the spans of one run.  A span is opened with
``tracer.span(name, **attrs)`` as a context manager; nesting follows the
``with`` structure, and every span records its wall-clock window on the
process-shared monotonic clock (:func:`time.perf_counter`), so spans from
worker processes land on the same timeline as the orchestrator's.

Three design rules keep the tracer out of the data path:

* **disabled tracing is free** -- the default ambient tracer is the
  singleton :data:`NULL_TRACER`, whose ``span`` returns a reusable no-op
  context manager (no allocation, no clock reads), so instrumented code
  never needs an ``if traced:`` guard;
* **spans are out of band** -- nothing a span records may flow back into
  content keys, datasets or reports; the byte-identity tests pin this;
* **worker spans piggyback** -- code running inside a
  :func:`repro.runtime.run_jobs` worker traces into a per-job buffer that
  ships back with the job's result and is re-based onto the orchestrator
  tracer's epoch (:meth:`Tracer.absorb`), so one trace file covers every
  process of a run.

Export formats: JSONL (schema :data:`TRACE_SCHEMA`, one object per line,
round-tripped by :func:`write_trace` / :func:`read_trace`) and the Chrome
trace-event JSON that Perfetto / ``chrome://tracing`` load directly
(:func:`chrome_trace_events` / :func:`write_chrome_trace`).
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

#: Bumped whenever a trace line's shape changes incompatibly.
TRACE_SCHEMA = "repro_trace/v1"

#: Environment variable naming a trace output path; the fallback for every
#: ``trace_path`` config knob (explicit knobs win).
TRACE_ENV = "REPRO_TRACE"


def resolve_trace_path(explicit: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The trace path to use: the explicit knob, else ``REPRO_TRACE``, else None."""
    if explicit:
        return str(explicit)
    env = os.environ.get(TRACE_ENV, "").strip()
    return env or None


def host_metadata(workers: Optional[int] = None) -> dict:
    """The host facts every trace and BENCH file is stamped with.

    A "0.93x speedup" means something entirely different on a 1-core
    container than on an 8-core workstation; stamping cpu count, platform
    and interpreter into every artefact makes the numbers attributable.
    """
    meta = {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    if workers is not None:
        meta["workers"] = workers
    return meta


@dataclass
class Span:
    """One finished span: a named wall-clock window with JSON-safe attrs."""

    name: str
    start_s: float  # seconds since the owning tracer's epoch
    duration_s: float
    pid: int
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
            "pid": self.pid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            name=str(payload["name"]),
            start_s=float(payload["start_s"]),
            duration_s=float(payload["duration_s"]),
            pid=int(payload["pid"]),
            attrs=dict(payload.get("attrs", {})),
        )


class _NullSpan:
    """The reusable no-op span: enter/exit/set all do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    A singleton (:data:`NULL_TRACER`) is the ambient default, so untraced
    runs pay one attribute lookup and one call per instrumentation point --
    no allocation, no clock read, no branching in the instrumented code.
    """

    enabled = False
    spans: tuple = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def annotate(self, **attrs) -> None:
        pass

    def absorb(self, spans: Sequence[Span], **attrs) -> None:
        pass


NULL_TRACER = NullTracer()


class _LiveSpan:
    """An open span; appended to its tracer on ``__exit__``."""

    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> "_LiveSpan":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_LiveSpan":
        self._tracer._stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        tracer.spans.append(
            Span(
                name=self.name,
                start_s=self._start - tracer.epoch,
                duration_s=end - self._start,
                pid=os.getpid(),
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """A collecting tracer: spans relative to a monotonic epoch.

    ``epoch=None`` (the default) anchors the timeline at construction time.
    Worker-side job tracers use ``epoch=0.0`` so their spans carry absolute
    :func:`time.perf_counter` values; :meth:`absorb` re-bases those onto
    this tracer's epoch when the buffers ship back (on Linux the monotonic
    clock is system-wide, so the merged timeline is coherent across
    processes).
    """

    enabled = True

    def __init__(self, epoch: Optional[float] = None):
        self.epoch = time.perf_counter() if epoch is None else epoch
        self.spans: list[Span] = []
        self._stack: list[_LiveSpan] = []

    def span(self, name: str, **attrs) -> _LiveSpan:
        return _LiveSpan(self, name, attrs)

    def annotate(self, **attrs) -> None:
        """Attach attrs to the innermost open span (no-op when none is open)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    def absorb(self, spans: Sequence[Span], **attrs) -> None:
        """Merge spans recorded on the absolute clock (a worker's epoch-0
        tracer), re-based to this tracer's epoch, with ``attrs`` folded in."""
        for span in spans:
            merged = {**span.attrs, **attrs} if attrs else dict(span.attrs)
            self.spans.append(
                Span(
                    name=span.name,
                    start_s=span.start_s - self.epoch,
                    duration_s=span.duration_s,
                    pid=span.pid,
                    attrs=merged,
                )
            )


# ---------------------------------------------------------------------- #
# the ambient tracer
# ---------------------------------------------------------------------- #

_ACTIVE: Union[Tracer, NullTracer] = NULL_TRACER


def get_tracer() -> Union[Tracer, NullTracer]:
    """The process's ambient tracer (:data:`NULL_TRACER` unless activated)."""
    return _ACTIVE


def set_tracer(tracer: Optional[Union[Tracer, NullTracer]]) -> Union[Tracer, NullTracer]:
    """Install ``tracer`` (None means disabled) and return the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return previous


# ---------------------------------------------------------------------- #
# persistence
# ---------------------------------------------------------------------- #


@dataclass
class TraceData:
    """One loaded trace file: the meta header, the spans, the final metrics."""

    meta: dict = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)


def write_trace(
    path: Union[str, Path],
    tracer: Union[Tracer, NullTracer],
    metrics=None,
    meta: Optional[dict] = None,
) -> Path:
    """Write one run's trace as JSONL: a meta line, spans, a metrics line.

    ``metrics`` may be a :class:`~repro.obs.metrics.MetricsRegistry` (its
    snapshot is embedded) or an already-snapshotted dict.
    """
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    header = {"type": "meta", "schema": TRACE_SCHEMA, "host": host_metadata()}
    if meta:
        header.update(meta)
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(json.dumps(span.to_dict(), sort_keys=True) for span in tracer.spans)
    if metrics is not None:
        snapshot = metrics.snapshot() if hasattr(metrics, "snapshot") else dict(metrics)
        lines.append(json.dumps({"type": "metrics", "values": snapshot}, sort_keys=True))
    path.write_text("\n".join(lines) + "\n")
    return path


def read_trace(path: Union[str, Path]) -> TraceData:
    """Load a JSONL trace file back into structured form."""
    data = TraceData()
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "span":
            data.spans.append(Span.from_dict(record))
        elif kind == "meta":
            data.meta = {k: v for k, v in record.items() if k != "type"}
        elif kind == "metrics":
            data.metrics = record.get("values", {})
    return data


def chrome_trace_events(spans: Sequence[Span]) -> list[dict]:
    """Spans as Chrome trace-event dicts (complete "X" events, µs units).

    Nesting is inferred by the viewer from time containment within each
    (pid, tid) track; worker processes appear as their own tracks.
    """
    return [
        {
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": round(span.start_s * 1e6, 1),
            "dur": round(span.duration_s * 1e6, 1),
            "pid": span.pid,
            "tid": span.pid,
            "args": span.attrs,
        }
        for span in spans
    ]


def write_chrome_trace(path: Union[str, Path], spans: Sequence[Span]) -> Path:
    """Write a Perfetto-loadable Chrome trace JSON file for ``spans``."""
    path = Path(path)
    payload = {"traceEvents": chrome_trace_events(spans), "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload))
    return path
