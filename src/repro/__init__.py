"""AssertSolver reproduction package.

This package reproduces the system described in "Insights from Rights and
Wrongs: A Large Language Model for Solving Assertion Failures in RTL Design"
(DAC 2025).  It contains every substrate the paper depends on:

* :mod:`repro.runtime` -- the deterministic sharded-map execution runtime
  (worker pools, derived seeding, content-addressed result caching) every
  parallel workload plugs into.
* :mod:`repro.hdl` -- a Verilog/SystemVerilog-subset front end (lexer,
  parser, elaborator, semantic linter) standing in for Icarus Verilog.
* :mod:`repro.sim` -- a cycle-accurate RTL simulator with 4-state values.
* :mod:`repro.sva` -- SystemVerilog Assertion parsing, trace checking and
  assertion mining.
* :mod:`repro.formal` -- a bounded model checker (SAT-based) standing in for
  SymbiYosys.
* :mod:`repro.corpus` -- a synthetic Verilog corpus generator standing in for
  the Hugging Face Verilog corpus, plus an RTLLM-style human-crafted split.
* :mod:`repro.bugs` -- the seven-type bug-injection engine of Table I.
* :mod:`repro.dataaug` -- the three-stage data-augmentation pipeline of
  Section II (Verilog-PT, Verilog-Bug, SVA-Bug datasets).
* :mod:`repro.model` -- the trainable repair policy (pretraining, SFT, DPO)
  that plays the role of the fine-tuned Deepseek-Coder model.
* :mod:`repro.baselines` -- proxy comparator engines for the closed and
  open-source LLMs of Table IV.
* :mod:`repro.eval` -- the SVA-Eval benchmark, pass@k metrics and the
  evaluation runner.
* :mod:`repro.core` -- the AssertSolver end-to-end orchestration API.

The top-level names :class:`AssertSolver`, :class:`AssertSolverConfig` and
:class:`PipelineScale` are re-exported lazily so that importing a low-level
substrate (for example ``repro.hdl``) does not pull in the whole stack.
"""

from __future__ import annotations

from typing import Any

__version__ = "1.0.0"

__all__ = [
    "AssertSolver",
    "AssertSolverConfig",
    "PipelineScale",
    "__version__",
]

_LAZY_EXPORTS = {
    "AssertSolver": ("repro.core.assertsolver", "AssertSolver"),
    "AssertSolverConfig": ("repro.core.assertsolver", "AssertSolverConfig"),
    "PipelineScale": ("repro.core.config", "PipelineScale"),
}


def __getattr__(name: str) -> Any:
    """Lazily resolve the high-level API exports."""
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attr = _LAZY_EXPORTS[name]
        module = importlib.import_module(module_name)
        return getattr(module, attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
