"""Assertion cone-of-influence screening for candidate repairs.

Given a base (buggy) design and a patched candidate, :func:`edit_impact`
computes the set of signals whose driving logic the edit changes, via the
ISSUE-8 per-node content keys: a node present in only one of the two
designs is "changed", and the union of def sets of changed nodes over both
designs over-approximates every signal whose driver differs.

:func:`cone_screen` then proves, when it can, that the candidate's verdict
must equal the base design's verdict so the verifier may skip simulation
(``cone_skip``).  The proof obligations, all checked structurally:

1. **Same observation points.** Signal tables (names, widths, kinds,
   signedness, declared ranges), parameters and assertion content keys are
   identical.  Identical signal tables also pin the stimulus: the stimulus
   generator reads only the input-port table, so both designs receive
   byte-identical input vectors for any seed.
2. **Same clock.** The simulator's clock detection reads the global
   clock-candidate list, so both designs must agree on it.
3. **No static combinational cycles in either design.**  The only
   data-dependent simulation error is settle non-convergence, which a
   cycle-free combinational dependency graph rules out; hence an edit that
   assertions cannot observe also cannot introduce or remove simulation
   errors.
4. **Edit disjoint from every assertion cone.**  Assertion cones are
   transitive fan-ins of the property body *plus* the clocking signal and
   ``disable iff`` identifiers, computed on the base design.  Any path from
   a changed definition to a cone signal would have to enter through an
   *unchanged* node's edge; that edge exists in the base graph too, so the
   changed definition would itself be in the base cone.  Checking
   ``changed_defs ∩ base_cone == ∅`` is therefore sound on its own.

Adversarial edits fall out of these checks automatically: parameter edits
fail (1); clock, reset and ``disable iff`` drivers are inside every cone
they matter to, so edits to them fail (4); assertion edits change assertion
keys and fail (1).

:func:`lint_screen` is the *unsound but validated* tier used by
``static_screen=lint|full``: it rejects candidates that introduce new
error-class structural breakage relative to the base design -- currently a
signal newly left undriven while still read inside an assertion cone.  The
screened benchmark leg hard-fails if a lint rejection ever disagrees with
ground-truth simulation (a rejected candidate whose unscreened verdict was
a confirmed repair).  Newly *introduced combinational loops* are
deliberately NOT rejected here: a loop that settles (``a = a | b``)
simulates to a genuine pass, so rejecting it statically would diverge.
The cone tier already refuses to **skip** such candidates -- which is all
soundness requires -- and they take the normal simulation path, where
non-settling loops surface as ``sim_error`` on their own.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyze.dfg import SignalDfg
from repro.artifacts.canon import assertion_key
from repro.hdl.elaborate import ElaboratedDesign


def _signal_table(design: ElaboratedDesign) -> tuple[tuple[str, int, str, bool, int, int], ...]:
    return tuple(
        (s.name, s.width, s.kind, s.signed, s.msb, s.lsb)
        for s in (design.signals[name] for name in sorted(design.signals))
    )


@dataclass(frozen=True)
class EditImpact:
    """The signals whose driving logic differs between base and patched."""

    comparable: bool  # structurally comparable designs (see cone_screen rule 1/2)
    reason: str  # why not comparable, empty when comparable
    changed_signals: tuple[str, ...] = ()


def edit_impact(base: SignalDfg, patched: SignalDfg) -> EditImpact:
    """Diff two designs at node-key granularity into a changed-signal set."""
    if _signal_table(base.design) != _signal_table(patched.design):
        return EditImpact(False, "signal tables differ")
    if base.design.parameters != patched.design.parameters:
        return EditImpact(False, "parameters differ")
    base_assertions = [assertion_key(spec) for spec in base.design.assertions]
    patched_assertions = [assertion_key(spec) for spec in patched.design.assertions]
    if base_assertions != patched_assertions:
        return EditImpact(False, "assertions differ")
    if base.design.clock_candidates() != patched.design.clock_candidates():
        return EditImpact(False, "clock candidates differ")
    base_keys = base.node_keys()
    patched_keys = patched.node_keys()
    changed = {
        key
        for key in set(base_keys) | set(patched_keys)
        if base_keys.get(key, 0) != patched_keys.get(key, 0)
    }
    changed_defs: set[str] = set()
    for dfg in (base, patched):
        for node in dfg.nodes:
            if node.key in changed:
                changed_defs |= node.defs
    return EditImpact(True, "", tuple(sorted(changed_defs)))


@dataclass(frozen=True)
class ScreenDecision:
    """Outcome of the cone screen for one candidate."""

    skip: bool  # True: base verdict provably equals the candidate's verdict
    reason: str
    changed_signals: tuple[str, ...] = ()
    overlap: tuple[str, ...] = ()  # changed signals inside some assertion cone


def union_assertion_cone(dfg: SignalDfg) -> frozenset[str]:
    """Union of every checked assertion's cone of influence."""
    cone: set[str] = set()
    for signals in dfg.assertion_cones().values():
        cone |= signals
    return frozenset(cone)


def cone_screen(base: SignalDfg, patched: SignalDfg) -> ScreenDecision:
    """Decide whether the candidate's verdict provably equals the base's."""
    impact = edit_impact(base, patched)
    if not impact.comparable:
        return ScreenDecision(False, impact.reason)
    if base.combinational_cycles():
        return ScreenDecision(
            False, "base design has a combinational loop", impact.changed_signals
        )
    if patched.combinational_cycles():
        return ScreenDecision(
            False, "candidate introduces a combinational loop", impact.changed_signals
        )
    cone = union_assertion_cone(base)
    overlap = tuple(sorted(set(impact.changed_signals) & cone))
    if overlap:
        return ScreenDecision(
            False, "edit reaches an assertion cone", impact.changed_signals, overlap
        )
    return ScreenDecision(
        True, "edit disjoint from every assertion cone", impact.changed_signals
    )


def cone_overlap(dfg: SignalDfg, signals: "frozenset[str] | set[str]") -> frozenset[str]:
    """The subset of ``signals`` inside some assertion's cone of influence."""
    return frozenset(signals) & union_assertion_cone(dfg)


@dataclass(frozen=True)
class LintRejection:
    """One reason the lint screen rejects a candidate without simulating."""

    code: str
    message: str


def _undriven_in_cone(dfg: SignalDfg) -> set[str]:
    """Non-input signals with no driving node that feed an assertion cone."""
    cone = union_assertion_cone(dfg)
    undriven: set[str] = set()
    for name, signal in dfg.design.signals.items():
        if signal.is_input or name in dfg.defs_of:
            continue
        if name in cone:
            undriven.add(name)
    return undriven


def lint_screen(base: SignalDfg, patched: SignalDfg) -> tuple[LintRejection, ...]:
    """Candidate-introduced structural breakage, relative to the base design.

    Only defects *absent from the base* count, so a pre-existing quirk of
    the buggy design can never reject its own candidates.  Introduced
    combinational loops are intentionally not rejected (see the module
    docstring): a settling loop simulates to a real verdict, and the cone
    tier already declines to skip loop-introducing candidates.
    """
    rejections: list[LintRejection] = []
    base_undriven = _undriven_in_cone(base)
    for name in sorted(_undriven_in_cone(patched) - base_undriven):
        rejections.append(
            LintRejection(
                code="undriven-used",
                message=f"candidate leaves signal '{name}' undriven"
                " inside an assertion cone",
            )
        )
    return tuple(rejections)


__all__ = [
    "EditImpact",
    "LintRejection",
    "ScreenDecision",
    "cone_overlap",
    "cone_screen",
    "edit_impact",
    "lint_screen",
    "union_assertion_cone",
]
