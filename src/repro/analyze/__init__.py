"""repro.analyze -- static analysis over elaborated designs.

Three layers:

* :mod:`repro.analyze.dfg` -- a signal-level dataflow graph per design
  (def/use chains, per-signal drivers, fan-in/fan-out cones, combinational
  cycle detection), cached content-addressed through
  :meth:`repro.artifacts.ArtifactStore.dataflow`.
* :mod:`repro.analyze.passes` -- the pluggable pass framework.  The
  ``lint``-tier passes are the compile gate (:func:`repro.hdl.lint.lint_design`
  delegates here); the analysis-tier passes are advisory diagnostics.
* :mod:`repro.analyze.cone` -- assertion cone-of-influence screening: the
  edit-impact diff (via ISSUE-8 node content keys), the sound
  :func:`~repro.analyze.cone.cone_screen` that lets the verifier return the
  base verdict without simulating, and the validated-but-unsound
  :func:`~repro.analyze.cone.lint_screen` rejection tier.

``python -m repro.analyze <file.v>`` prints a per-design lint + cone report.
"""

from repro.analyze.dfg import DfgNode, SignalDfg, build_dfg
from repro.analyze.cone import (
    EditImpact,
    LintRejection,
    ScreenDecision,
    cone_overlap,
    cone_screen,
    edit_impact,
    lint_screen,
    union_assertion_cone,
)
from repro.analyze.passes import (
    AnalysisContext,
    AnalysisPass,
    get_pass,
    lint_passes,
    register_pass,
    registered_passes,
    run_passes,
)

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "DfgNode",
    "EditImpact",
    "LintRejection",
    "ScreenDecision",
    "SignalDfg",
    "build_dfg",
    "cone_overlap",
    "cone_screen",
    "edit_impact",
    "get_pass",
    "lint_passes",
    "lint_screen",
    "register_pass",
    "registered_passes",
    "run_passes",
    "union_assertion_cone",
]
