"""Signal-level dataflow graph over an elaborated design.

The graph has two granularities:

* **nodes** -- one :class:`DfgNode` per continuous assign, procedural block
  and initial block, carrying its def (written) and use (read) signal sets
  plus the ISSUE-8 content key of the node.  Def/use chains
  (:attr:`SignalDfg.defs_of` / :attr:`SignalDfg.uses_of`) answer "who drives
  / who reads signal X".
* **signals** -- a per-signal fan-in relation mirroring the elaborator's
  conservative dependency graph (condition/case context counts as a source,
  clock edges count as sources of every clocked target), plus the inverse
  fan-out relation.  :meth:`SignalDfg.fan_in_cone` is therefore identical to
  :meth:`ElaboratedDesign.cone_of_influence` and the two may be used
  interchangeably.

The cone-based candidate screen (:mod:`repro.analyze.cone`) leans on two
graph queries with soundness obligations:

* :meth:`SignalDfg.assertion_cone` must over-approximate every signal whose
  value can influence an assertion's verdict, so its roots include the
  assertion's clock and ``disable iff`` identifiers, not just the property
  body.
* :meth:`SignalDfg.combinational_cycles` must find every static cycle in
  the combinational subgraph: a design with zero static cycles settles
  deterministically, which is what lets the screen rule out data-dependent
  simulation errors.

Graphs are built once per design and cached content-addressed through
:meth:`repro.artifacts.ArtifactStore.dataflow`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.artifacts.canon import assign_node_key, block_node_key, initial_node_key
from repro.hdl import ast
from repro.hdl.elaborate import (
    AssertionSpec,
    ElaboratedDesign,
    _statement_dependencies,
)


@dataclass(frozen=True)
class DfgNode:
    """One driving node of the design: an assign, always or initial block."""

    kind: str  # "assign" | "comb" | "seq" | "initial"
    index: int  # position within the design's list for that kind
    line: int
    key: str  # ISSUE-8 per-node content key
    defs: frozenset[str]  # signals written by the node
    uses: frozenset[str]  # signals read by the node (incl. conditions/indices)


def _statement_reads(statement: ast.Statement) -> set[str]:
    """Every signal read anywhere inside ``statement``.

    Unlike :func:`repro.hdl.elaborate._statement_dependencies` this also
    counts reads in branches that assign nothing (e.g. ``$display`` args),
    so node use sets are an over-approximation of the dependency view.
    """
    reads: set[str] = set()
    for node in statement.walk():
        if isinstance(node, ast.Assign):
            reads |= node.value.identifiers()
            if isinstance(node.target, (ast.BitSelect, ast.PartSelect, ast.Concat)):
                reads |= node.target.identifiers() - set(ast._target_names(node.target))
        elif isinstance(node, ast.If):
            reads |= node.condition.identifiers()
        elif isinstance(node, ast.Case):
            reads |= node.subject.identifiers()
            for item in node.items:
                for label in item.labels:
                    reads |= label.identifiers()
        elif isinstance(node, ast.SystemTaskCall):
            for arg in node.args:
                reads |= arg.identifiers()
    return reads


def _assign_reads(assign: ast.ContinuousAssign) -> set[str]:
    reads = set(assign.value.identifiers())
    if isinstance(assign.target, (ast.BitSelect, ast.PartSelect, ast.Concat)):
        reads |= assign.target.identifiers() - set(ast._target_names(assign.target))
    return reads


class SignalDfg:
    """Def/use chains, fan-in/fan-out cones and comb-cycle detection."""

    def __init__(self, design: ElaboratedDesign):
        self.design = design
        self.nodes: tuple[DfgNode, ...] = tuple(self._build_nodes(design))
        defs_of: dict[str, list[DfgNode]] = {}
        uses_of: dict[str, list[DfgNode]] = {}
        for node in self.nodes:
            for name in node.defs:
                defs_of.setdefault(name, []).append(node)
            for name in node.uses:
                uses_of.setdefault(name, []).append(node)
        #: signal -> nodes that write it (its drivers)
        self.defs_of: dict[str, tuple[DfgNode, ...]] = {
            name: tuple(nodes) for name, nodes in defs_of.items()
        }
        #: signal -> nodes that read it
        self.uses_of: dict[str, tuple[DfgNode, ...]] = {
            name: tuple(nodes) for name, nodes in uses_of.items()
        }
        #: signal -> direct fan-in signals (the elaborator's dependency graph)
        self.fan_in: dict[str, frozenset[str]] = {
            name: frozenset(sources)
            for name, sources in design.dependency_graph.items()
        }
        fan_out: dict[str, set[str]] = {name: set() for name in design.signals}
        for target, sources in self.fan_in.items():
            for source in sources:
                fan_out.setdefault(source, set()).add(target)
        #: signal -> direct fan-out signals (inverse of ``fan_in``)
        self.fan_out: dict[str, frozenset[str]] = {
            name: frozenset(targets) for name, targets in fan_out.items()
        }
        # Combinational subgraph: target -> sources, restricted to targets
        # driven by continuous assigns or unclocked always blocks.
        comb_deps: dict[str, set[str]] = {}
        for assign in design.continuous_assigns:
            sources = _assign_reads(assign)
            for target in ast._target_names(assign.target):
                comb_deps.setdefault(target, set()).update(sources)
        for block in design.comb_blocks:
            for target, sources in _statement_dependencies(block.body).items():
                comb_deps.setdefault(target, set()).update(sources)
        self._comb_deps: dict[str, frozenset[str]] = {
            name: frozenset(sources) for name, sources in comb_deps.items()
        }
        self._cycles: Optional[tuple[tuple[str, ...], ...]] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def _build_nodes(design: ElaboratedDesign) -> Iterator[DfgNode]:
        for index, assign in enumerate(design.continuous_assigns):
            yield DfgNode(
                kind="assign",
                index=index,
                line=assign.line,
                key=assign_node_key(assign),
                defs=frozenset(ast._target_names(assign.target)),
                uses=frozenset(_assign_reads(assign)),
            )
        for kind, blocks in (("comb", design.comb_blocks), ("seq", design.seq_blocks)):
            for index, block in enumerate(blocks):
                uses = _statement_reads(block.body)
                uses |= {item.signal for item in block.sensitivity}
                yield DfgNode(
                    kind=kind,
                    index=index,
                    line=block.line,
                    key=block_node_key(block),
                    defs=frozenset(ast.assignment_targets(block.body)),
                    uses=frozenset(uses),
                )
        for index, initial in enumerate(design.initial_blocks):
            yield DfgNode(
                kind="initial",
                index=index,
                line=initial.line,
                key=initial_node_key(initial),
                defs=frozenset(ast.assignment_targets(initial.body)),
                uses=frozenset(_statement_reads(initial.body)),
            )

    # ------------------------------------------------------------------ #
    # cone queries
    # ------------------------------------------------------------------ #

    def fan_in_cone(self, roots: Iterable[str]) -> frozenset[str]:
        """Transitive fan-in of ``roots`` (roots included when declared)."""
        return frozenset(self.design.cone_of_influence(set(roots)))

    def fan_out_cone(self, roots: Iterable[str]) -> frozenset[str]:
        """Transitive fan-out of ``roots`` (roots included when declared)."""
        cone: set[str] = set()
        frontier = [name for name in roots if name in self.design.signals]
        while frontier:
            name = frontier.pop()
            if name in cone:
                continue
            cone.add(name)
            frontier.extend(
                target for target in self.fan_out.get(name, frozenset()) if target not in cone
            )
        return frozenset(cone)

    def assertion_roots(self, spec: AssertionSpec) -> frozenset[str]:
        """Signals an assertion reads directly: body, disable-iff and clock."""
        return frozenset(spec.identifiers() | {spec.clock.signal})

    def assertion_cone(self, spec: AssertionSpec) -> frozenset[str]:
        """Transitive fan-in of everything the assertion can observe."""
        return self.fan_in_cone(self.assertion_roots(spec))

    def assertion_cones(self) -> dict[str, frozenset[str]]:
        """Cone of influence per assertion, keyed by assertion name."""
        return {spec.name: self.assertion_cone(spec) for spec in self.design.assertions}

    # ------------------------------------------------------------------ #
    # combinational loop detection
    # ------------------------------------------------------------------ #

    def combinational_cycles(self) -> tuple[tuple[str, ...], ...]:
        """Static cycles through combinational drivers, as signal paths.

        Each cycle is reported as a path ``(a, b, ..., a)`` whose first and
        last element coincide.  At least one cycle is reported for every
        cyclic region; a design with an empty result settles in bounded
        time for any input values.
        """
        if self._cycles is None:
            self._cycles = self._find_cycles()
        return self._cycles

    def _find_cycles(self) -> tuple[tuple[str, ...], ...]:
        comb_targets = set(self._comb_deps)
        graph = {
            target: sorted(s for s in sources if s in comb_targets)
            for target, sources in sorted(self._comb_deps.items())
        }
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {name: WHITE for name in graph}
        cycles: list[tuple[str, ...]] = []
        seen: set[frozenset[str]] = set()
        for start in graph:
            if colour[start] != WHITE:
                continue
            path: list[str] = []
            on_path: dict[str, int] = {}
            stack: list[tuple[str, Iterator[str]]] = [(start, iter(graph[start]))]
            colour[start] = GREY
            on_path[start] = 0
            path.append(start)
            while stack:
                name, children = stack[-1]
                advanced = False
                for child in children:
                    if colour[child] == GREY:
                        cycle = tuple(path[on_path[child]:]) + (child,)
                        members = frozenset(cycle)
                        if members not in seen:
                            seen.add(members)
                            cycles.append(cycle)
                    elif colour[child] == WHITE:
                        colour[child] = GREY
                        on_path[child] = len(path)
                        path.append(child)
                        stack.append((child, iter(graph[child])))
                        advanced = True
                        break
                if not advanced:
                    colour[name] = BLACK
                    path.pop()
                    on_path.pop(name, None)
                    stack.pop()
        return tuple(cycles)

    # ------------------------------------------------------------------ #
    # node key views (used by the edit-impact computation)
    # ------------------------------------------------------------------ #

    def node_keys(self) -> dict[str, int]:
        """Multiset of node content keys (key -> occurrence count)."""
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.key] = counts.get(node.key, 0) + 1
        return counts

    def defs_of_key(self, key: str) -> frozenset[str]:
        """Union of def sets over nodes carrying content key ``key``."""
        defs: set[str] = set()
        for node in self.nodes:
            if node.key == key:
                defs |= node.defs
        return frozenset(defs)


def build_dfg(design: ElaboratedDesign) -> SignalDfg:
    """Build a fresh (uncached) dataflow graph for ``design``."""
    return SignalDfg(design)


__all__ = ["DfgNode", "SignalDfg", "build_dfg"]
