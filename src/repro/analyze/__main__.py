"""``python -m repro.analyze`` -- per-design lint + cone report.

Usage::

    python -m repro.analyze design.v [more.v ...] [--passes id,id] [--lint-only]
    python -m repro.analyze --list-passes

For each file the report shows every diagnostic the selected passes emit
(grouped by pass id), the fan-in cone of every assertion, and any static
combinational loops.  Exit status is 1 when any error-severity diagnostic
fired, so the command slots into shell pipelines as a lint gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analyze.dfg import SignalDfg
from repro.analyze.passes import get_pass, registered_passes, run_passes
from repro.artifacts import design_fingerprint
from repro.hdl.errors import Severity
from repro.hdl.lint import compile_source


def _report(path: Path, pass_ids: Optional[list[str]], lint_only: bool) -> tuple[str, bool]:
    """Render the report for one file; returns (text, had_errors)."""
    lines: list[str] = []
    result = compile_source(path.read_text())
    if result.design is None:
        lines.append(f"{path}: compilation failed")
        lines.extend(f"  {diag.render()}" for diag in result.diagnostics)
        return "\n".join(lines) + "\n", True

    design = result.design
    dfg = SignalDfg(design)
    if pass_ids is not None:
        passes = [get_pass(pass_id) for pass_id in pass_ids]
    elif lint_only:
        passes = [p for p in registered_passes() if p.lint]
    else:
        passes = list(registered_passes())
    sink = run_passes(design, passes=passes, dfg=dfg)

    lines.append(f"{path}: module {design.name}")
    lines.append(f"  fingerprint: {design_fingerprint(design)[:16]}")
    lines.append(
        f"  {len(design.signals)} signals · {len(dfg.nodes)} driver nodes"
        f" · {len(design.assertions)} assertions"
    )

    lines.append(f"  diagnostics ({len(sink.diagnostics)}):")
    if sink.diagnostics:
        lines.extend(f"    {diag.render()}" for diag in sink.diagnostics)
    else:
        lines.append("    none")

    lines.append("  assertion cones:")
    if design.assertions:
        for spec in design.assertions:
            cone = sorted(dfg.assertion_cone(spec))
            lines.append(
                f"    {spec.name}: {len(cone)} signals: " + ", ".join(cone)
            )
    else:
        lines.append("    no assertions")

    cycles = dfg.combinational_cycles()
    if cycles:
        lines.append("  combinational loops:")
        lines.extend(f"    {' -> '.join(cycle)}" for cycle in cycles)
    else:
        lines.append("  combinational loops: none")

    had_errors = any(diag.severity is Severity.ERROR for diag in sink.diagnostics)
    return "\n".join(lines) + "\n", had_errors


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Static-analysis lint + assertion-cone report for Verilog designs.",
    )
    parser.add_argument("files", nargs="*", help="Verilog source files to analyse")
    parser.add_argument(
        "--passes",
        default=None,
        help="comma-separated pass ids to run (default: all registered)",
    )
    parser.add_argument(
        "--lint-only",
        action="store_true",
        help="run only the compile-gate lint passes",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="list registered passes and exit",
    )
    args = parser.parse_args(argv)

    if args.list_passes:
        for analysis_pass in registered_passes():
            tier = "lint" if analysis_pass.lint else "analysis"
            print(f"{analysis_pass.pass_id:<22} [{tier}]  {analysis_pass.description}")
        return 0

    if not args.files:
        parser.error("no input files (or use --list-passes)")

    pass_ids = args.passes.split(",") if args.passes else None
    status = 0
    for name in args.files:
        path = Path(name)
        if not path.exists():
            print(f"file not found: {path}", file=sys.stderr)
            status = 2
            continue
        text, had_errors = _report(path, pass_ids, args.lint_only)
        sys.stdout.write(text)
        if had_errors:
            status = max(status, 1)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
