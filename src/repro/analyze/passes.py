"""Pluggable static-analysis pass framework.

Every check is an :class:`AnalysisPass` registered under a stable id via
:func:`register_pass`.  Passes emit plain :class:`repro.hdl.errors.Diagnostic`
records into a :class:`DiagnosticSink`, so their output unifies with the
compile gate's :class:`repro.hdl.lint.CompileResult` -- a rejected corpus
entry's log names the pass (diagnostic code) that fired.

Two tiers share the registry:

* ``lint`` passes (``lint=True``) are the compile gate: they reproduce the
  historical :mod:`repro.hdl.lint` checks byte-for-byte (same codes, same
  messages, same severities) and are the only passes run by
  :func:`repro.hdl.lint.lint_design`, so adding analysis passes can never
  change what compiles.
* analysis passes (``lint=False``) are advisory: dead writes and
  unreachable branches under constant folding, width truncation at
  assignments, incomplete-assignment latch inference, combinational loop
  detection (with the cycle path in the diagnostic) and unknown-reachability
  (uninitialised registers feeding assertion cones).

:func:`run_passes` wraps each pass in an ``analyze.pass.<id>`` span/histogram
and counts emitted diagnostics under the same name, so pass timings show up
in ``python -m repro.obs summarize``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Optional, Sequence

from repro.analyze.dfg import SignalDfg
from repro.hdl import ast
from repro.hdl.elaborate import ElaboratedDesign, ProceduralBlock, Signal, fold_constant
from repro.hdl.errors import DiagnosticSink, ElaborationError
from repro.hdl.lint import KNOWN_SYSTEM_FUNCTIONS
from repro.obs import get_registry, phase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.artifacts.store import ArtifactStore


class AnalysisContext:
    """Inputs shared by every pass: the design and its (lazy) dataflow graph."""

    def __init__(
        self,
        design: ElaboratedDesign,
        dfg: Optional[SignalDfg] = None,
        store: "Optional[ArtifactStore]" = None,
    ):
        self.design = design
        self._dfg = dfg
        self._store = store

    @property
    def dfg(self) -> SignalDfg:
        """The dataflow graph, built (or fetched from the store) on demand.

        Lint-tier passes deliberately avoid this property so the compile
        gate never pays for graph construction.
        """
        if self._dfg is None:
            if self._store is not None:
                self._dfg = self._store.dataflow(self.design)
            else:
                self._dfg = SignalDfg(self.design)
        return self._dfg


PassFn = Callable[[AnalysisContext, DiagnosticSink], None]


@dataclass(frozen=True)
class AnalysisPass:
    """One registered pass: stable id, one-line description, runner."""

    pass_id: str
    description: str
    lint: bool
    run: PassFn


_REGISTRY: dict[str, AnalysisPass] = {}


def register_pass(
    pass_id: str, description: str, *, lint: bool = False
) -> Callable[[PassFn], PassFn]:
    """Register ``fn`` as the analysis pass ``pass_id`` (decorator)."""

    def decorator(fn: PassFn) -> PassFn:
        if pass_id in _REGISTRY:
            raise ValueError(f"analysis pass '{pass_id}' registered twice")
        _REGISTRY[pass_id] = AnalysisPass(
            pass_id=pass_id, description=description, lint=lint, run=fn
        )
        return fn

    return decorator


def registered_passes() -> tuple[AnalysisPass, ...]:
    """All passes, in registration order."""
    return tuple(_REGISTRY.values())


def lint_passes() -> tuple[AnalysisPass, ...]:
    """The compile-gate subset (the historical ``hdl/lint.py`` checks)."""
    return tuple(p for p in _REGISTRY.values() if p.lint)


def get_pass(pass_id: str) -> AnalysisPass:
    """Look up one pass by its stable id."""
    try:
        return _REGISTRY[pass_id]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown analysis pass '{pass_id}' (known: {known})") from exc


def run_passes(
    design: ElaboratedDesign,
    *,
    passes: Optional[Sequence[AnalysisPass]] = None,
    sink: Optional[DiagnosticSink] = None,
    dfg: Optional[SignalDfg] = None,
    store: "Optional[ArtifactStore]" = None,
) -> DiagnosticSink:
    """Run ``passes`` (default: all registered) over ``design``."""
    sink = sink if sink is not None else DiagnosticSink()
    context = AnalysisContext(design, dfg=dfg, store=store)
    registry = get_registry()
    for analysis_pass in passes if passes is not None else registered_passes():
        before = len(sink.diagnostics)
        with phase(f"analyze.pass.{analysis_pass.pass_id}"):
            analysis_pass.run(context, sink)
        emitted = len(sink.diagnostics) - before
        if emitted:
            registry.inc(f"analyze.pass.{analysis_pass.pass_id}", emitted)
    return sink


# --------------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------------- #


def _iter_all_expressions(
    design: ElaboratedDesign,
) -> Iterator[tuple[int, ast.Expression]]:
    """Yield ``(line, expression)`` for every expression in the design."""
    for assign in design.continuous_assigns:
        yield assign.line, assign.target
        yield assign.line, assign.value
    for block in design.comb_blocks + design.seq_blocks:
        for statement in block.body.walk():
            if isinstance(statement, ast.Assign):
                yield statement.line, statement.target
                yield statement.line, statement.value
            elif isinstance(statement, ast.If):
                yield statement.line, statement.condition
            elif isinstance(statement, ast.Case):
                yield statement.line, statement.subject
                for item in statement.items:
                    for label in item.labels:
                        yield statement.line, label
    for assertion in design.assertions:
        sequences = [assertion.body.consequent]
        if assertion.body.antecedent is not None:
            sequences.append(assertion.body.antecedent)
        for sequence in sequences:
            for element in sequence.elements:
                yield assertion.line, element.expr
        if assertion.disable_iff is not None:
            yield assertion.line, assertion.disable_iff


def _first_driver_line(design: ElaboratedDesign, name: str) -> int:
    lines = design.lines_driving(name)
    if lines:
        return lines[0]
    signal = design.signals.get(name)
    return signal.line if signal is not None else 0


def _procedural_assigns(blocks: Sequence[ProceduralBlock]) -> Iterator[ast.Assign]:
    for block in blocks:
        for node in block.body.walk():
            if isinstance(node, ast.Assign):
                yield node


# --------------------------------------------------------------------------- #
# lint-tier passes (the historical compile-gate checks)
# --------------------------------------------------------------------------- #


@register_pass(
    "undeclared-signal",
    "uses of signals that are never declared",
    lint=True,
)
def _pass_undeclared(context: AnalysisContext, sink: DiagnosticSink) -> None:
    design = context.design
    declared = set(design.signals) | set(design.parameters)
    for line, expr in _iter_all_expressions(design):
        for name in expr.identifiers():
            if name not in declared:
                sink.error(
                    f"use of undeclared signal '{name}'",
                    line=line,
                    code="undeclared-signal",
                )


@register_pass(
    "input-driven",
    "input ports driven from inside the module",
    lint=True,
)
def _pass_input_driven(context: AnalysisContext, sink: DiagnosticSink) -> None:
    design = context.design
    for assign in design.continuous_assigns:
        for target in ast._target_names(assign.target):
            signal = design.signals.get(target)
            if signal is not None and signal.is_input:
                sink.error(
                    f"input port '{target}' cannot be driven inside the module",
                    line=assign.line,
                    code="input-driven",
                )
    for node in _procedural_assigns(design.comb_blocks + design.seq_blocks):
        for target in ast._target_names(node.target):
            signal = design.signals.get(target)
            if signal is not None and signal.is_input:
                sink.error(
                    f"input port '{target}' cannot be driven inside the module",
                    line=node.line,
                    code="input-driven",
                )


@register_pass(
    "multiple-drivers",
    "multiply-driven signals and continuous/procedural driver mixes",
    lint=True,
)
def _pass_multiple_drivers(context: AnalysisContext, sink: DiagnosticSink) -> None:
    design = context.design
    continuous_targets: dict[str, int] = {}
    for assign in design.continuous_assigns:
        for target in ast._target_names(assign.target):
            continuous_targets[target] = continuous_targets.get(target, 0) + 1
    procedural_targets: set[str] = set()
    for block in design.comb_blocks + design.seq_blocks:
        procedural_targets.update(ast.assignment_targets(block.body))
    for name, count in continuous_targets.items():
        signal = design.signals.get(name)
        if signal is None:
            continue
        if count > 1 and signal.width == 1:
            sink.warning(
                f"signal '{name}' has multiple continuous drivers",
                line=_first_driver_line(design, name),
                code="multiple-drivers",
            )
        if name in procedural_targets:
            sink.error(
                f"signal '{name}' is driven both continuously and procedurally",
                line=_first_driver_line(design, name),
                code="mixed-drivers",
            )


@register_pass(
    "undriven",
    "signals read (or merely declared) but never assigned",
    lint=True,
)
def _pass_undriven(context: AnalysisContext, sink: DiagnosticSink) -> None:
    design = context.design
    driven: set[str] = set(design.driver_lines)
    for signal in design.signals.values():
        if signal.is_input:
            continue
        if signal.name not in driven:
            read_somewhere = any(
                signal.name in expr.identifiers()
                for _, expr in _iter_all_expressions(design)
            )
            severity = "undriven-used" if read_somewhere else "undriven-unused"
            sink.warning(
                f"signal '{signal.name}' is never assigned",
                line=signal.line,
                code=severity,
            )


@register_pass(
    "system-functions",
    "system functions the simulator does not implement",
    lint=True,
)
def _pass_system_functions(context: AnalysisContext, sink: DiagnosticSink) -> None:
    for line, expr in _iter_all_expressions(context.design):
        for node in expr.walk():
            if isinstance(node, ast.SystemCall) and node.name not in KNOWN_SYSTEM_FUNCTIONS:
                sink.error(
                    f"unsupported system function '{node.name}'",
                    line=line,
                    code="unknown-system-function",
                )


@register_pass(
    "assignment-style",
    "blocking assignments in clocked blocks and vice versa",
    lint=True,
)
def _pass_assignment_style(context: AnalysisContext, sink: DiagnosticSink) -> None:
    design = context.design
    for node in _procedural_assigns(design.seq_blocks):
        if node.blocking:
            sink.warning(
                "blocking assignment inside clocked always block",
                line=node.line,
                code="blocking-in-seq",
            )
    for node in _procedural_assigns(design.comb_blocks):
        if not node.blocking:
            sink.warning(
                "non-blocking assignment inside combinational always block",
                line=node.line,
                code="nonblocking-in-comb",
            )


# --------------------------------------------------------------------------- #
# analysis-tier passes
# --------------------------------------------------------------------------- #


def _fold_or_none(expr: ast.Expression, parameters: dict[str, int]) -> Optional[int]:
    try:
        return fold_constant(expr, parameters)
    except ElaborationError:
        return None


@register_pass(
    "dead-code",
    "dead writes and branches unreachable under constant folding",
)
def _pass_dead_code(context: AnalysisContext, sink: DiagnosticSink) -> None:
    design = context.design
    dfg = context.dfg
    read: set[str] = set()
    for node in dfg.nodes:
        read |= node.uses
    for spec in design.assertions:
        read |= dfg.assertion_roots(spec)
    reported: set[str] = set()
    for node in dfg.nodes:
        for name in sorted(node.defs):
            signal = design.signals.get(name)
            if signal is None or signal.kind in ("output", "inout") or name in read:
                continue
            if name not in reported:
                reported.add(name)
                sink.warning(
                    f"signal '{name}' is assigned but never read",
                    line=node.line,
                    code="dead-write",
                )
    for block in design.comb_blocks + design.seq_blocks:
        body = block.body
        for statement in body.walk():
            if isinstance(statement, ast.If):
                value = _fold_or_none(statement.condition, design.parameters)
                if value is None:
                    continue
                if value and statement.else_branch is not None:
                    sink.warning(
                        f"else-branch is unreachable: condition folds to {value}",
                        line=statement.line,
                        code="unreachable-branch",
                    )
                elif not value:
                    sink.warning(
                        "then-branch is unreachable: condition folds to 0",
                        line=statement.line,
                        code="unreachable-branch",
                    )
            elif isinstance(statement, ast.Case):
                subject = _fold_or_none(statement.subject, design.parameters)
                if subject is None:
                    continue
                for item in statement.items:
                    if not item.labels:
                        continue  # default arm
                    values = [
                        _fold_or_none(label, design.parameters) for label in item.labels
                    ]
                    if all(v is not None and v != subject for v in values):
                        sink.warning(
                            f"case arm is unreachable: subject folds to {subject}",
                            line=statement.line,
                            code="unreachable-branch",
                        )


def _expression_width(
    expr: ast.Expression, design: ElaboratedDesign
) -> Optional[int]:
    """Best-effort bit width of ``expr``; ``None`` when width is flexible.

    Unsized literals and parameters report ``None`` so idioms like
    ``count <= count + 1`` never look like truncation.
    """
    if isinstance(expr, ast.Number):
        return expr.width
    if isinstance(expr, ast.Identifier):
        signal = design.signals.get(expr.name)
        return signal.width if signal is not None else None
    if isinstance(expr, ast.Unary):
        if expr.op in ("&", "|", "^", "~&", "~|", "~^", "!"):
            return 1
        return _expression_width(expr.operand, design)
    if isinstance(expr, ast.Binary):
        if expr.op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||", "===", "!=="):
            return 1
        if expr.op in ("<<", ">>", "<<<", ">>>"):
            return _expression_width(expr.left, design)
        left = _expression_width(expr.left, design)
        right = _expression_width(expr.right, design)
        if left is None:
            return right
        if right is None:
            return left
        return max(left, right)
    if isinstance(expr, ast.Ternary):
        true_width = _expression_width(expr.if_true, design)
        false_width = _expression_width(expr.if_false, design)
        if true_width is None:
            return false_width
        if false_width is None:
            return true_width
        return max(true_width, false_width)
    if isinstance(expr, ast.BitSelect):
        return 1
    if isinstance(expr, ast.PartSelect):
        msb = _fold_or_none(expr.msb, design.parameters)
        lsb = _fold_or_none(expr.lsb, design.parameters)
        if msb is None or lsb is None:
            return None
        return abs(msb - lsb) + 1
    if isinstance(expr, ast.Concat):
        total = 0
        for part in expr.parts:
            width = _expression_width(part, design)
            if width is None:
                return None
            total += width
        return total
    if isinstance(expr, ast.Replicate):
        count = _fold_or_none(expr.count, design.parameters)
        width = _expression_width(expr.value, design)
        if count is None or width is None:
            return None
        return count * width
    if isinstance(expr, ast.SystemCall):
        if expr.name in ("$past", "$signed", "$unsigned") and expr.args:
            return _expression_width(expr.args[0], design)
        if expr.name in ("$rose", "$fell", "$stable", "$changed", "$onehot", "$onehot0"):
            return 1
        return None
    return None


@register_pass(
    "width-truncation",
    "assignments that silently truncate a wider expression",
)
def _pass_width_truncation(context: AnalysisContext, sink: DiagnosticSink) -> None:
    design = context.design

    def check(target: ast.Expression, value: ast.Expression, line: int) -> None:
        if not isinstance(target, ast.Identifier):
            return
        signal = design.signals.get(target.name)
        if signal is None:
            return
        width = _expression_width(value, design)
        if width is None or width <= signal.width:
            return
        constant = _fold_or_none(value, design.parameters)
        if constant is not None and 0 <= constant < (1 << signal.width):
            return  # the constant fits: sized-literal style, not a truncation
        sink.warning(
            f"assignment truncates {width}-bit expression"
            f" to {signal.width}-bit signal '{target.name}'",
            line=line,
            code="width-truncation",
        )

    for assign in design.continuous_assigns:
        check(assign.target, assign.value, assign.line)
    for node in _procedural_assigns(design.comb_blocks + design.seq_blocks):
        check(node.target, node.value, node.line)


def _may_must_assign(statement: ast.Statement) -> tuple[set[str], set[str]]:
    """Signals assigned on some path vs on every path through ``statement``."""
    if isinstance(statement, ast.Block):
        may: set[str] = set()
        must: set[str] = set()
        for sub in statement.statements:
            sub_may, sub_must = _may_must_assign(sub)
            may |= sub_may
            must |= sub_must
        return may, must
    if isinstance(statement, ast.Assign):
        names = set(ast._target_names(statement.target))
        return names, names
    if isinstance(statement, ast.If):
        then_may, then_must = _may_must_assign(statement.then_branch)
        if statement.else_branch is None:
            return then_may, set()
        else_may, else_must = _may_must_assign(statement.else_branch)
        return then_may | else_may, then_must & else_must
    if isinstance(statement, ast.Case):
        may = set()
        must_sets: list[set[str]] = []
        has_default = False
        for item in statement.items:
            item_may, item_must = _may_must_assign(item.body)
            may |= item_may
            must_sets.append(item_must)
            if not item.labels:
                has_default = True
        if not has_default or not must_sets:
            return may, set()
        must = set.intersection(*must_sets) if must_sets else set()
        return may, must
    return set(), set()


@register_pass(
    "latch-inference",
    "combinational blocks that assign a signal on only some paths",
)
def _pass_latch_inference(context: AnalysisContext, sink: DiagnosticSink) -> None:
    for block in context.design.comb_blocks:
        may, must = _may_must_assign(block.body)
        for name in sorted(may - must):
            sink.warning(
                f"signal '{name}' is not assigned on every path through"
                " a combinational block (latch inferred)",
                line=block.line,
                code="latch-inferred",
            )


@register_pass(
    "comb-loop",
    "static cycles through combinational drivers",
)
def _pass_comb_loop(context: AnalysisContext, sink: DiagnosticSink) -> None:
    design = context.design
    for cycle in context.dfg.combinational_cycles():
        path = " -> ".join(cycle)
        sink.warning(
            f"combinational loop: {path}",
            line=_first_driver_line(design, cycle[0]),
            code="comb-loop",
        )


def _initialised_registers(design: ElaboratedDesign) -> set[str]:
    initialised: set[str] = set()
    for initial in design.initial_blocks:
        initialised.update(ast.assignment_targets(initial.body))
    for node in _procedural_assigns(design.seq_blocks):
        if _fold_or_none(node.value, design.parameters) is not None:
            initialised.update(ast._target_names(node.target))
    return initialised


@register_pass(
    "unknown-reachability",
    "uninitialised registers whose unknowns can reach an assertion",
)
def _pass_unknown_reachability(context: AnalysisContext, sink: DiagnosticSink) -> None:
    design = context.design
    dfg = context.dfg
    registers: set[str] = set()
    for block in design.seq_blocks:
        registers.update(ast.assignment_targets(block.body))
    at_risk = registers - _initialised_registers(design)
    if not at_risk:
        return
    cones = dfg.assertion_cones()
    for name in sorted(at_risk):
        signal: Optional[Signal] = design.signals.get(name)
        if signal is None:
            continue
        for spec in design.assertions:
            if name in cones[spec.name]:
                sink.warning(
                    f"uninitialised register '{name}' can carry unknown"
                    f" values into assertion '{spec.name}'",
                    line=signal.line,
                    code="unknown-reachability",
                )
                break


__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "KNOWN_SYSTEM_FUNCTIONS",
    "get_pass",
    "lint_passes",
    "register_pass",
    "registered_passes",
    "run_passes",
]
