"""Content-addressed on-disk result cache.

Every cacheable result in this codebase is a pure function of its inputs --
a verification verdict of (patched source, seeds, cycles, version), a Stage-2
result of (stage config, sample) -- so results are stored under the SHA-256
of exactly those inputs.  Re-running a pipeline or an evaluation then only
recomputes what changed, and concurrent worker processes share one cache
directory safely: writes are atomic renames, and a lost race simply rewrites
identical content (the payload is a function of the key's inputs).

:class:`ResultCache` is the generic store; :func:`content_key` builds keys.
:class:`repro.eval.cache.VerdictCache` is the verdict-specialised instance.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Optional

from repro.obs.metrics import get_registry


def content_key(*parts: str) -> str:
    """The content address of one result: SHA-256 over NUL-separated parts.

    Every input that can change the result must appear in ``parts`` (include
    a version string so semantic changes key old entries out); anything that
    cannot -- worker counts, directory paths -- must not.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


class ResultCache:
    """A two-level sharded directory of ``<k[:2]>/<k[2:4]>/<key>.json`` files.

    Two levels of hash-prefix sharding keep every directory small (256
    entries of fanout each) at the 10k+ entry counts artifact and verdict
    caches reach, where a flat directory degrades listing and creation.
    Entries written by older layouts -- flat ``<key>.json`` and one-level
    ``<k[:2]>/<key>.json`` -- are still read transparently; new writes
    always land in the sharded layout, so legacy entries age out naturally
    as versions bump rather than via a migration step.
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.swept = 0
        self._sweep_stale_tmp_files()

    #: A ``*.tmp<pid>`` file older than this is an orphan from a killed
    #: writer (a live put holds its tmp file for milliseconds).
    STALE_TMP_SECONDS = 600.0

    def _sweep_stale_tmp_files(self) -> None:
        """Remove orphaned ``*.tmp<pid>`` files left by killed writers.

        A writer that dies between ``write_text`` and ``os.replace`` leaks
        its temporary file.  Orphans are invisible to :meth:`get` and
        :meth:`__len__` (neither matches ``*.json.tmp*``), but they would
        accumulate forever, so each cache open sweeps them.  Only files
        comfortably older than any live put's write-to-rename window are
        touched, so concurrent writers in other processes are never raced.
        """
        cutoff = time.time() - self.STALE_TMP_SECONDS
        stale_candidates = (
            stale
            for pattern in ("*/*/*.json.tmp*", "*/*.json.tmp*", "*.json.tmp*")
            for stale in self.root.glob(pattern)
        )
        for stale in stale_candidates:
            try:
                if stale.stat().st_mtime < cutoff:
                    stale.unlink()
                    self.swept += 1
                    get_registry().inc("runtime.cache.stale_tmp_swept")
            except OSError:
                pass

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / key[2:4] / f"{key}.json"

    def _legacy_paths(self, key: str):
        """Where older cache layouts stored this key (read-through only)."""
        yield self.root / key[:2] / f"{key}.json"  # one-level sharding
        yield self.root / f"{key}.json"  # original flat layout

    def get(self, key: str) -> Optional[dict]:
        """The stored payload, or ``None`` on a miss.

        A present-but-unparseable entry (truncated write survivor, disk
        corruption) counts as both a miss and a corrupt entry; the caller
        recomputes and :meth:`put` overwrites the bad file.
        """
        text = None
        for path in (self._path(key), *self._legacy_paths(key)):
            try:
                text = path.read_text()
            except OSError:
                continue
            break
        if text is None:
            self.misses += 1
            get_registry().inc("runtime.cache.misses")
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            self.corrupt += 1
            self.misses += 1
            registry = get_registry()
            registry.inc("runtime.cache.corrupt_entries")
            registry.inc("runtime.cache.misses")
            return None
        self.hits += 1
        get_registry().inc("runtime.cache.hits")
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Persist a payload (atomic: visible either fully or not at all)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_name(f"{path.name}.tmp{os.getpid()}")
        temporary.write_text(json.dumps(payload, sort_keys=True))
        os.replace(temporary, path)

    def stats(self) -> dict:
        """This instance's traffic counters (process-local, since open)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt_entries": self.corrupt,
            "stale_tmp_swept": self.swept,
        }

    def __len__(self) -> int:
        return sum(
            1
            for pattern in ("*/*/*.json", "*/*.json", "*.json")
            for _ in self.root.glob(pattern)
        )
