"""Structured job failures and the deterministic fault-injection harness.

The executor's fault-tolerance contract is built from the pieces here:

* :class:`JobFailure` -- a serialisable record of *why* one job failed
  (exception type, message, traceback text, and the phase the failure was
  detected in: the worker raised, the job timed out, or the worker process
  died);
* :class:`JobOutcome` -- the structured per-job result ``run_jobs`` produces
  in ``on_error="quarantine"`` mode: success or failure, the attempt count,
  and wall-clock telemetry, instead of a raw propagated exception;
* the exception types ``on_error="raise"`` mode surfaces when the original
  worker exception cannot be re-raised (:class:`JobExecutionError`) or when
  the failure has no worker exception at all (:class:`JobTimeoutError`,
  :class:`WorkerCrashError`);
* :class:`FaultPlan` -- the deterministic fault injector.  A plan maps job
  keys to fault specs (raise / crash / hang / fail-N-times-then-succeed) and
  travels to the workers with the job payloads, so tests can exercise every
  recovery path -- quarantine, retry, pool rebuild, timeout -- on chosen
  jobs without any real infrastructure failing.

Determinism notes.  Failure *identity* (which jobs fail, with which phase,
exception type and message) is deterministic for a given fault plan and
retry budget, independent of worker count; attempt counts and elapsed times
are telemetry and may legitimately vary with chunking, so adopters building
dataset records from failures should use :meth:`JobFailure.summary`, which
carries only the deterministic fields.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

#: Reserved payload key marking a cached-through failure record in a
#: :class:`repro.runtime.cache.ResultCache` entry.  Payloads produced by
#: ``encode`` must never contain this key.
FAILURE_KEY = "__repro_job_failure__"

#: The phases a failure can be detected in.
PHASE_WORKER = "worker"  # the worker function raised
PHASE_TIMEOUT = "timeout"  # the job exceeded its per-job timeout
PHASE_WORKER_DEATH = "worker_death"  # the worker process died mid-job


@dataclass
class JobFailure:
    """Why one job failed: serialisable, cache-safe, worker-count-invariant."""

    phase: str  # PHASE_WORKER | PHASE_TIMEOUT | PHASE_WORKER_DEATH
    exception_type: str = ""
    message: str = ""
    traceback: str = ""

    def summary(self) -> dict:
        """The deterministic subset adopters may embed in dataset records.

        Excludes the traceback (frame text is an implementation detail) --
        only the fields that are stable for a given fault across worker
        counts, chunk sizes and retry schedules.
        """
        return {
            "phase": self.phase,
            "exception_type": self.exception_type,
            "message": self.message,
        }

    def render(self) -> str:
        return f"[{self.phase}] {self.exception_type}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "exception_type": self.exception_type,
            "message": self.message,
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobFailure":
        return cls(
            phase=str(payload.get("phase", PHASE_WORKER)),
            exception_type=str(payload.get("exception_type", "")),
            message=str(payload.get("message", "")),
            traceback=str(payload.get("traceback", "")),
        )


@dataclass
class JobOutcome:
    """The structured result of one job under ``on_error="quarantine"``.

    ``attempts`` counts the executions that were *charged* to the job (its
    own failures plus the final success); ``elapsed_s`` is the wall clock of
    the last execution.  Both are telemetry: equality ignores them, and the
    determinism contract covers ``ok`` / ``result`` / ``failure`` identity
    only.
    """

    ok: bool
    result: Any = None
    failure: Optional[JobFailure] = None
    attempts: int = field(default=1, compare=False)
    elapsed_s: float = field(default=0.0, compare=False)
    #: The original worker exception, when it survived pickling (in-memory
    #: only -- never serialised; ``on_error="raise"`` re-raises it).
    exception: Optional[BaseException] = field(
        default=None, repr=False, compare=False
    )

    @property
    def value(self) -> Any:
        """The result, raising the structured failure when there is none."""
        if self.ok:
            return self.result
        raise_failure(self)

    def failure_payload(self) -> dict:
        """The cache payload for a quarantined job (cached-through failures)."""
        assert self.failure is not None
        return {FAILURE_KEY: {**self.failure.to_dict(), "attempts": self.attempts}}

    @classmethod
    def from_failure_payload(cls, payload: dict) -> "JobOutcome":
        record = payload[FAILURE_KEY]
        return cls(
            ok=False,
            failure=JobFailure.from_dict(record),
            attempts=int(record.get("attempts", 1)),
        )


class JobExecutionError(RuntimeError):
    """A job failed and its original exception could not be re-raised."""

    def __init__(self, failure: JobFailure):
        super().__init__(failure.render())
        self.failure = failure


class JobTimeoutError(JobExecutionError):
    """A job exceeded its per-job timeout ``max_attempts`` times."""


class WorkerCrashError(JobExecutionError):
    """A job killed its worker process ``max_attempts`` times."""


def raise_failure(outcome: JobOutcome) -> None:
    """Raise the exception ``on_error="raise"`` owes for a failed outcome."""
    assert outcome.failure is not None
    if outcome.exception is not None:
        raise outcome.exception
    if outcome.failure.phase == PHASE_TIMEOUT:
        raise JobTimeoutError(outcome.failure)
    if outcome.failure.phase == PHASE_WORKER_DEATH:
        raise WorkerCrashError(outcome.failure)
    raise JobExecutionError(outcome.failure)


# ---------------------------------------------------------------------- #
# fault injection
# ---------------------------------------------------------------------- #


class InjectedFault(RuntimeError):
    """The exception :class:`FaultPlan` raises for "raise"-kind faults."""


#: Fault kinds a plan can inject.
FAULT_RAISE = "raise"  # raise InjectedFault inside the worker
FAULT_CRASH = "crash"  # os._exit: the worker process dies mid-job
FAULT_HANG = "hang"  # sleep far past any sane per-job timeout


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what to do, and on how many invocations."""

    kind: str  # FAULT_RAISE | FAULT_CRASH | FAULT_HANG
    #: Fault only the first ``times`` invocations of the job (a flake that
    #: then succeeds); ``None`` faults every invocation (a hard failure
    #: that can only be quarantined).
    times: Optional[int] = None
    #: How long a "hang" sleeps -- far above any per-job timeout under test.
    hang_seconds: float = 3600.0


def default_fault_key(job: Any) -> str:
    """The default job key: ``job.name``, ``job.case_name`` or ``str(job)``."""
    for attribute in ("name", "case_name"):
        value = getattr(job, attribute, None)
        if isinstance(value, str):
            return value
    return str(job)


class FaultPlan:
    """Deterministic fault injection for chosen jobs.

    A plan is constructed with a scratch directory (the cross-process
    invocation counters live there, appended atomically, so "fail the first
    N invocations" holds across retries that land in different worker
    processes) and a picklable ``key_fn`` mapping a job to its key
    (:func:`default_fault_key` covers named jobs).  The plan itself is
    picklable and rides to the workers inside the executor's payloads.

    Because fault selection is keyed by job identity -- never by worker id,
    submission order or wall clock -- the same plan faults the same jobs at
    the same invocations for every worker count, which is what lets the
    recovery tests assert byte-identical unaffected results.
    """

    def __init__(
        self,
        root: Path | str,
        key_fn: Callable[[Any], str] = default_fault_key,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.key_fn = key_fn
        self.faults: dict[str, FaultSpec] = {}

    def inject(
        self,
        key: str,
        kind: str,
        times: Optional[int] = None,
        hang_seconds: float = 3600.0,
    ) -> "FaultPlan":
        """Plan a fault for the job whose key is ``key``; returns ``self``."""
        if kind not in (FAULT_RAISE, FAULT_CRASH, FAULT_HANG):
            raise ValueError(f"unknown fault kind {kind!r}")
        self.faults[key] = FaultSpec(kind=kind, times=times, hang_seconds=hang_seconds)
        return self

    def _invocation(self, key: str) -> int:
        """Count this invocation of ``key`` (1-based), atomically on disk."""
        digest = hashlib.sha256(key.encode()).hexdigest()
        path = self.root / f"{digest}.calls"
        with open(path, "ab") as stream:
            stream.write(b"x")
            return stream.tell()

    def maybe_fault(self, job: Any) -> None:
        """Fire the planned fault for ``job``'s current invocation, if any.

        Called by the executor immediately before the worker function; jobs
        without a planned fault pay one dict lookup and nothing else.
        """
        spec = self.faults.get(self.key_fn(job))
        if spec is None:
            return
        invocation = self._invocation(self.key_fn(job))
        if spec.times is not None and invocation > spec.times:
            return
        if spec.kind == FAULT_RAISE:
            raise InjectedFault(
                f"injected fault for {self.key_fn(job)!r} (invocation {invocation})"
            )
        if spec.kind == FAULT_CRASH:
            os._exit(23)
        time.sleep(spec.hang_seconds)
