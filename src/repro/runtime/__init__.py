"""repro.runtime -- one deterministic, fault-tolerant runtime for every fan-out.

The paper's pipeline (Fig. 2) is embarrassingly parallel end to end; this
package is the single layer all of its workloads plug into instead of each
hand-rolling a ``multiprocessing`` pool:

* :func:`run_jobs` -- the sharded-map executor (pool lifecycle, chunking,
  submission-order merging, optional content-addressed result caching,
  per-job timeouts, bounded retries, broken-pool recovery, quarantine);
* :func:`derive_seed` -- per-job seed derivation, the invariance trick that
  makes output independent of worker count and job order;
* :func:`default_workers` -- the one shared "how many workers" default
  (cores, capped, ``REPRO_WORKERS``-overridable);
* :class:`ResultCache` / :func:`content_key` -- the generic on-disk cache
  that :class:`repro.eval.cache.VerdictCache` specialises;
* :class:`JobOutcome` / :class:`JobFailure` -- structured per-job results
  under ``on_error="quarantine"``, and :class:`FaultPlan` -- the
  deterministic fault-injection harness the recovery tests drive.

Adopters: corpus generation (per-design jobs), Stage 1 (per-sample compile
checks), Stage 2 (per-sample SVA validation + bug injection), Stage 3
(per-entry CoT jobs) and ``repro.eval`` verification (per-case jobs).
"""

from repro.runtime.cache import ResultCache, content_key
from repro.runtime.executor import (
    DEFAULT_WORKER_CAP,
    MAX_CHUNKSIZE,
    WORKERS_ENV,
    auto_chunksize,
    default_workers,
    derive_seed,
    run_jobs,
)
from repro.runtime.faults import (
    FAULT_CRASH,
    FAULT_HANG,
    FAULT_RAISE,
    FaultPlan,
    InjectedFault,
    JobExecutionError,
    JobFailure,
    JobOutcome,
    JobTimeoutError,
    WorkerCrashError,
)

__all__ = [
    "DEFAULT_WORKER_CAP",
    "FAULT_CRASH",
    "FAULT_HANG",
    "FAULT_RAISE",
    "FaultPlan",
    "InjectedFault",
    "JobExecutionError",
    "JobFailure",
    "JobOutcome",
    "JobTimeoutError",
    "MAX_CHUNKSIZE",
    "ResultCache",
    "WORKERS_ENV",
    "WorkerCrashError",
    "auto_chunksize",
    "content_key",
    "default_workers",
    "derive_seed",
    "run_jobs",
]
