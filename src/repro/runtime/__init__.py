"""repro.runtime -- one deterministic execution runtime for every fan-out.

The paper's pipeline (Fig. 2) is embarrassingly parallel end to end; this
package is the single layer all of its workloads plug into instead of each
hand-rolling a ``multiprocessing`` pool:

* :func:`run_jobs` -- the sharded-map executor (pool lifecycle, chunking,
  submission-order merging, optional content-addressed result caching);
* :func:`derive_seed` -- per-job seed derivation, the invariance trick that
  makes output independent of worker count and job order;
* :func:`default_workers` -- the one shared "how many workers" default
  (cores, capped, ``REPRO_WORKERS``-overridable);
* :class:`ResultCache` / :func:`content_key` -- the generic on-disk cache
  that :class:`repro.eval.cache.VerdictCache` specialises.

Adopters: corpus generation (per-design jobs), Stage 1 (per-sample compile
checks), Stage 2 (per-sample SVA validation + bug injection), Stage 3
(per-entry CoT jobs) and ``repro.eval`` verification (per-case jobs).
"""

from repro.runtime.cache import ResultCache, content_key
from repro.runtime.executor import (
    DEFAULT_WORKER_CAP,
    WORKERS_ENV,
    default_workers,
    derive_seed,
    run_jobs,
)

__all__ = [
    "DEFAULT_WORKER_CAP",
    "WORKERS_ENV",
    "ResultCache",
    "content_key",
    "default_workers",
    "derive_seed",
    "run_jobs",
]
