"""The deterministic sharded-map executor.

Every parallel island of the reproduction -- corpus generation, Stages 1-3
of the augmentation pipeline, evaluation verification -- is the same shape:
a list of independent, picklable jobs mapped through a pure worker function.
:func:`run_jobs` is that shape, implemented once:

* **pool lifecycle + chunking** -- one ``multiprocessing`` pool per call,
  sized ``min(workers, len(jobs))``, with submission chunked to amortise
  IPC for many small jobs;
* **submission-order merging** -- results come back in job order whatever
  the completion order, so worker count can never reorder output;
* **derived seeding** -- workers receive no shared RNG; every job carries
  its own seed, derived from a base seed and a stable job identity via
  :func:`derive_seed` (the discipline Stage 2 pioneered);
* **optional result caching** -- with ``cache``/``key_fn``, finished jobs
  are stored content-addressed on disk and later runs only execute misses.

The determinism contract for a workload plugging in:

1. ``worker_fn`` must be a module-level callable (it is pickled by
   reference) and a pure function of ``(job, context)`` -- no globals, no
   ambient RNG, no mutation of shared state;
2. every random decision inside the worker must be seeded from data carried
   by the job (use :func:`derive_seed`), never from worker identity, job
   index arithmetic over a shared sequence, or wall clock;
3. results must be picklable, and -- when caching -- ``encode``/``decode``
   must round-trip them through JSON exactly.

Under that contract ``run_jobs(jobs, fn, workers=k)`` is byte-identical to
``[fn(job, context) for job in jobs]`` for every ``k``, which is what the
pipeline's worker-count invariance tests assert end to end.

One platform note: because several stage configs default their worker
count to :func:`default_workers`, library code that reaches ``run_jobs``
from a top-level script must live behind the standard
``if __name__ == "__main__":`` guard on multiprocessing start methods that
re-import the main module (``spawn``/``forkserver``) -- the usual
requirement for any pool user.  Set ``REPRO_WORKERS=1`` to force every
default serial.
"""

from __future__ import annotations

import os
import zlib
from multiprocessing import get_context
from typing import Any, Callable, Optional, Sequence

from repro.runtime.cache import ResultCache

#: Hard ceiling for auto-detected worker counts: beyond this the per-process
#: interpreter overhead dwarfs the win for this codebase's job sizes.
DEFAULT_WORKER_CAP = 8

#: Environment variable overriding :func:`default_workers` everywhere.
WORKERS_ENV = "REPRO_WORKERS"


def default_workers(cap: int = DEFAULT_WORKER_CAP, env: str = WORKERS_ENV) -> int:
    """Worker count to use when the caller did not choose one.

    Detects the machine's cores, capped at ``cap``; the ``REPRO_WORKERS``
    environment variable overrides the detection (still capped at 1 from
    below, so ``REPRO_WORKERS=0`` means serial, not a crash).
    """
    override = os.environ.get(env, "").strip()
    if override:
        try:
            return max(1, min(int(override), cap))
        except ValueError:
            pass
    return max(1, min(os.cpu_count() or 1, cap))


def derive_seed(base: int, *tokens: str) -> int:
    """A per-job seed derived from ``base`` and the job's stable identity.

    Folding the identity in with CRC-32 keeps the value independent of job
    order, worker count and everything else the determinism contract bans.
    With a single token this is exactly the ``base ^ crc32(token)`` formula
    Stage 2 has always used for its per-sample injector seeds; multiple
    tokens are NUL-joined so ``("a", "b")`` never collides with ``("ab",)``.
    """
    return base ^ zlib.crc32("\x00".join(tokens).encode())


class _NoContext:
    """Sentinel for "no context given" (a class, so it pickles by reference).

    A distinct sentinel rather than ``None`` so that ``None`` remains a
    perfectly good *context value* (e.g. "no cache directory") -- workers
    with a context always receive two arguments, even when it is ``None``.
    """


def _pool_entry(payload: tuple[Callable, Any, Any]) -> Any:
    """Pool entry point (module-level so it pickles)."""
    worker_fn, job, context = payload
    return _invoke(worker_fn, job, context)


def _invoke(worker_fn: Callable, job: Any, context: Any) -> Any:
    return worker_fn(job) if context is _NoContext else worker_fn(job, context)


def run_jobs(
    jobs: Sequence[Any],
    worker_fn: Callable,
    *,
    workers: int = 1,
    context: Any = _NoContext,
    cache: Optional[ResultCache] = None,
    key_fn: Optional[Callable[[Any], str]] = None,
    encode: Callable[[Any], dict] = lambda result: result,
    decode: Callable[[dict], Any] = lambda payload: payload,
    chunksize: Optional[int] = None,
) -> list[Any]:
    """Map ``worker_fn`` over ``jobs``, fanning out across processes.

    Args:
        jobs: independent, picklable job payloads.
        worker_fn: module-level callable, invoked as ``worker_fn(job)`` or
            ``worker_fn(job, context)`` when ``context`` is given.
        workers: pool size; ``<= 1`` (or one job) runs in-process.
        context: shared read-only payload (e.g. a stage config) handed to
            every invocation alongside the job; when given (``None``
            included), the worker is called as ``worker_fn(job, context)``.
        cache: optional :class:`ResultCache`; requires ``key_fn``.
        key_fn: maps a job to its content-address
            (:func:`repro.runtime.cache.content_key` over every input that
            can change the result -- and nothing that cannot).
        encode / decode: JSON round-trip for cached results; default
            identity (results must then already be JSON-safe).
        chunksize: jobs per pool submission; default splits the miss list
            evenly across workers in a handful of waves.

    Returns:
        One result per job, in submission order, for any worker count.
    """
    if cache is not None and key_fn is None:
        raise ValueError("run_jobs(cache=...) requires key_fn")
    jobs = list(jobs)
    results: list[Any] = [None] * len(jobs)

    pending = list(range(len(jobs)))
    keys: list[Optional[str]] = [None] * len(jobs)
    if cache is not None and key_fn is not None:
        pending = []
        for index, job in enumerate(jobs):
            keys[index] = key_fn(job)
            payload = cache.get(keys[index])
            if payload is None:
                pending.append(index)
            else:
                results[index] = decode(payload)
    if not pending:
        return results

    def store(index: int, result: Any) -> Any:
        if cache is not None:
            cache.put(keys[index], encode(result))
        return result

    workers = min(workers, len(pending))
    if workers <= 1:
        for index in pending:
            results[index] = store(index, _invoke(worker_fn, jobs[index], context))
        return results

    payloads = [(worker_fn, jobs[index], context) for index in pending]
    if chunksize is None:
        chunksize = max(1, len(pending) // (workers * 4))
    with get_context().Pool(processes=workers) as pool:
        for index, result in zip(pending, pool.imap(_pool_entry, payloads, chunksize)):
            results[index] = store(index, result)
    return results
