"""The deterministic, fault-tolerant sharded-map executor.

Every parallel island of the reproduction -- corpus generation, Stages 1-3
of the augmentation pipeline, evaluation verification -- is the same shape:
a list of independent, picklable jobs mapped through a pure worker function.
:func:`run_jobs` is that shape, implemented once:

* **pool lifecycle + chunking** -- one process pool per call, sized
  ``min(workers, len(jobs))``, with submission chunked (capped at
  :data:`MAX_CHUNKSIZE`) to amortise IPC for many small jobs;
* **submission-order merging** -- results come back in job order whatever
  the completion order, so worker count can never reorder output;
* **derived seeding** -- workers receive no shared RNG; every job carries
  its own seed, derived from a base seed and a stable job identity via
  :func:`derive_seed` (the discipline Stage 2 pioneered);
* **optional result caching** -- with ``cache``/``key_fn``, finished jobs
  are stored content-addressed on disk and later runs only execute misses;
* **fault tolerance** -- structured per-job outcomes, per-job timeouts, a
  watchdog that detects hung or dead workers and rebuilds the pool, bounded
  deterministic retries, and quarantine instead of run-wide aborts (see
  `Failure handling`_ below).

The determinism contract for a workload plugging in:

1. ``worker_fn`` must be a module-level callable (it is pickled by
   reference) and a pure function of ``(job, context)`` -- no globals, no
   ambient RNG, no mutation of shared state;
2. every random decision inside the worker must be seeded from data carried
   by the job (use :func:`derive_seed`), never from worker identity, job
   index arithmetic over a shared sequence, or wall clock;
3. results must be picklable, and -- when caching -- ``encode``/``decode``
   must round-trip them through JSON exactly.

Under that contract ``run_jobs(jobs, fn, workers=k)`` is byte-identical to
``[fn(job, context) for job in jobs]`` for every ``k``, which is what the
pipeline's worker-count invariance tests assert end to end.  Retries and
timeouts never change the value of a successful result: a retried job is
re-executed from the same payload through the same pure function.

Failure handling
----------------

``on_error`` selects what a job failure does to the run:

* ``"raise"`` (the default -- existing callers are unchanged): the first
  job that exhausts its attempts aborts the run.  The original worker
  exception is re-raised when it survived pickling; failures with no
  exception surface as :class:`~repro.runtime.faults.JobTimeoutError` /
  :class:`~repro.runtime.faults.WorkerCrashError` /
  :class:`~repro.runtime.faults.JobExecutionError`.
* ``"quarantine"``: the run always completes.  ``run_jobs`` then returns
  one :class:`~repro.runtime.faults.JobOutcome` per job -- successes carry
  the result, failures carry a serialisable
  :class:`~repro.runtime.faults.JobFailure` -- and with a cache attached,
  failure records are cached through, so warm re-runs reproduce the same
  quarantine decisions byte-for-byte without re-executing.

Failures are detected in three phases.  A worker exception is caught in the
worker and shipped back as data.  A per-job ``timeout`` or a worker process
death is detected by the orchestrator's watchdog: the pool is torn down and
rebuilt, chunks that were in flight are re-run, and jobs from a lost chunk
are re-tried as **singleton** chunks so the next loss is attributable to
exactly one job.  Only attributable failures are charged against
``max_attempts`` (peers that merely shared a chunk with a hang are
rescheduled for free); a job that keeps hanging or crashing is quarantined
after ``max_attempts`` charges rather than retried forever.

Timeout enforcement and crash recovery need process isolation, so a call
with a ``timeout`` (or ``isolate=True``) runs through a pool even for
``workers=1``; without either, single-worker runs stay in-process and a
worker exception is the only recoverable failure there.

One platform note: because several stage configs default their worker
count to :func:`default_workers`, library code that reaches ``run_jobs``
from a top-level script must live behind the standard
``if __name__ == "__main__":`` guard on multiprocessing start methods that
re-import the main module (``spawn``/``forkserver``) -- the usual
requirement for any pool user.  Set ``REPRO_WORKERS=1`` to force every
default serial.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback as traceback_module
import warnings
import zlib
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import Any, Callable, Optional, Sequence

from repro.obs.metrics import MetricsRegistry, get_registry, labeled, set_registry
from repro.obs.trace import Tracer, get_tracer, set_tracer
from repro.runtime.cache import ResultCache
from repro.runtime.faults import (
    FAILURE_KEY,
    PHASE_TIMEOUT,
    PHASE_WORKER,
    PHASE_WORKER_DEATH,
    FaultPlan,
    JobFailure,
    JobOutcome,
    raise_failure,
)

#: Hard ceiling for auto-detected worker counts: beyond this the per-process
#: interpreter overhead dwarfs the win for this codebase's job sizes.
DEFAULT_WORKER_CAP = 8

#: Environment variable overriding :func:`default_workers` everywhere.
WORKERS_ENV = "REPRO_WORKERS"

#: Ceiling for the auto-computed chunk size.  Larger chunks amortise IPC a
#: little further, but a chunk is also the unit of loss: its deadline is
#: ``timeout * len(chunk)`` and a hang or worker death re-runs the whole
#: chunk, so hundreds of jobs per chunk would ruin timeout attribution and
#: re-run granularity.
MAX_CHUNKSIZE = 32

#: Watchdog poll interval while per-job timeouts are armed.
_WATCHDOG_TICK_S = 0.05

#: ``REPRO_WORKERS`` values already warned about (one warning per value).
_warned_worker_overrides: set[str] = set()


def default_workers(cap: int = DEFAULT_WORKER_CAP, env: str = WORKERS_ENV) -> int:
    """Worker count to use when the caller did not choose one.

    Detects the machine's cores, capped at ``cap``; the ``REPRO_WORKERS``
    environment variable overrides the detection (still capped at 1 from
    below, so ``REPRO_WORKERS=0`` means serial, not a crash).  An
    unparseable override falls back to core detection with a one-time
    warning naming the bad value -- silently ignoring it once hid typos
    like ``REPRO_WORKERS=four`` behind a full fan-out.
    """
    override = os.environ.get(env, "").strip()
    if override:
        try:
            return max(1, min(int(override), cap))
        except ValueError:
            if override not in _warned_worker_overrides:
                _warned_worker_overrides.add(override)
                warnings.warn(
                    f"ignoring unparseable {env}={override!r}; "
                    "falling back to core detection",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return max(1, min(os.cpu_count() or 1, cap))


def derive_seed(base: int, *tokens: str) -> int:
    """A per-job seed derived from ``base`` and the job's stable identity.

    Folding the identity in with CRC-32 keeps the value independent of job
    order, worker count and everything else the determinism contract bans.
    With a single token this is exactly the ``base ^ crc32(token)`` formula
    Stage 2 has always used for its per-sample injector seeds; multiple
    tokens are NUL-joined so ``("a", "b")`` never collides with ``("ab",)``.
    """
    return base ^ zlib.crc32("\x00".join(tokens).encode())


def auto_chunksize(pending: int, workers: int) -> int:
    """Jobs per pool submission: a few waves per worker, capped."""
    return max(1, min(MAX_CHUNKSIZE, pending // (workers * 4)))


class _NoContext:
    """Sentinel for "no context given" (a class, so it pickles by reference).

    A distinct sentinel rather than ``None`` so that ``None`` remains a
    perfectly good *context value* (e.g. "no cache directory") -- workers
    with a context always receive two arguments, even when it is ``None``.
    """


def _invoke(worker_fn: Callable, job: Any, context: Any) -> Any:
    return worker_fn(job) if context is _NoContext else worker_fn(job, context)


def _execute_job(
    worker_fn: Callable,
    job: Any,
    context: Any,
    fault_plan: Optional[FaultPlan],
    telemetry: bool = False,
) -> tuple[bool, Any, Optional[BaseException], float, Optional[tuple]]:
    """Run one job, capturing any worker exception as structured data.

    Returns ``(ok, result_or_failure, exception_or_none, elapsed_s,
    shipped_telemetry)``.  Both the in-process and the pooled path catch
    here, so failure tracebacks carry identical frames whichever path
    executed the job.  The exception object itself is carried along only
    when it survives pickling (the pooled path ships these tuples across
    process boundaries).

    With ``telemetry`` on, the job runs under a fresh ambient tracer
    (epoch 0, i.e. absolute monotonic timestamps the orchestrator re-bases
    via :meth:`~repro.obs.trace.Tracer.absorb`) and a fresh ambient metrics
    registry; the final element ships ``(spans, metrics_snapshot)`` back
    piggybacked on the result so one trace file covers every process.
    """
    shipped: Optional[tuple] = None
    if telemetry:
        job_tracer = Tracer(epoch=0.0)
        job_registry = MetricsRegistry()
        previous_tracer = set_tracer(job_tracer)
        previous_registry = set_registry(job_registry)
        job_span = job_tracer.span("job")
        job_span.__enter__()
    started = time.perf_counter()
    try:
        if fault_plan is not None:
            fault_plan.maybe_fault(job)
        result = _invoke(worker_fn, job, context)
    except Exception as exc:  # noqa: BLE001 -- the whole point is containment
        elapsed = time.perf_counter() - started
        failure = JobFailure(
            phase=PHASE_WORKER,
            exception_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            ),
        )
        try:
            pickle.loads(pickle.dumps(exc))
            carried: Optional[BaseException] = exc
        except Exception:  # noqa: BLE001 -- unpicklable exceptions travel as text
            carried = None
        entry = (False, failure, carried, elapsed)
    else:
        entry = (True, result, None, time.perf_counter() - started)
    if telemetry:
        job_span.set(ok=entry[0])
        job_span.__exit__(None, None, None)
        set_tracer(previous_tracer)
        set_registry(previous_registry)
        shipped = (job_tracer.spans, job_registry.snapshot())
    return entry + (shipped,)


def _chunk_entry(
    payload: tuple[Callable, list, Any, Optional[FaultPlan], bool],
) -> list[tuple[bool, Any, Optional[BaseException], float, Optional[tuple]]]:
    """Pool entry point: execute one chunk of jobs (module-level so it pickles)."""
    worker_fn, chunk_jobs, context, fault_plan, telemetry = payload
    return [
        _execute_job(worker_fn, job, context, fault_plan, telemetry)
        for job in chunk_jobs
    ]


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard: hung workers are terminated, not waited for."""
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=5)


def run_jobs(
    jobs: Sequence[Any],
    worker_fn: Callable,
    *,
    workers: int = 1,
    context: Any = _NoContext,
    cache: Optional[ResultCache] = None,
    key_fn: Optional[Callable[[Any], str]] = None,
    encode: Callable[[Any], dict] = lambda result: result,
    decode: Callable[[dict], Any] = lambda payload: payload,
    chunksize: Optional[int] = None,
    on_error: str = "raise",
    timeout: Optional[float] = None,
    max_attempts: int = 1,
    retry_backoff: float = 0.0,
    isolate: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    tracer=None,
) -> list[Any]:
    """Map ``worker_fn`` over ``jobs``, fanning out across processes.

    Args:
        jobs: independent, picklable job payloads.
        worker_fn: module-level callable, invoked as ``worker_fn(job)`` or
            ``worker_fn(job, context)`` when ``context`` is given.
        workers: pool size; ``<= 1`` (or one job) runs in-process unless
            ``timeout``/``isolate`` demand process isolation.
        context: shared read-only payload (e.g. a stage config) handed to
            every invocation alongside the job; when given (``None``
            included), the worker is called as ``worker_fn(job, context)``.
        cache: optional :class:`ResultCache`; requires ``key_fn``.  In
            quarantine mode, failure records are cached through under the
            same keys, so warm re-runs reproduce quarantine decisions
            without re-executing (delete the entries to force a retry).
        key_fn: maps a job to its content-address
            (:func:`repro.runtime.cache.content_key` over every input that
            can change the result -- and nothing that cannot).
        encode / decode: JSON round-trip for cached results; default
            identity (results must then already be JSON-safe).
        chunksize: jobs per pool submission; default
            :func:`auto_chunksize` (a few waves per worker, capped at
            :data:`MAX_CHUNKSIZE` to keep loss attribution sharp).
        on_error: ``"raise"`` (default: first exhausted failure aborts the
            run, exactly as before this layer existed) or ``"quarantine"``
            (the run completes; returns per-job
            :class:`~repro.runtime.faults.JobOutcome` records).
        timeout: per-job wall-clock budget in seconds.  Enforced at chunk
            granularity (a chunk's deadline is ``timeout * len(chunk)``)
            with exact per-job enforcement on singleton re-runs; forces the
            pooled path so a hung worker can be killed.
        max_attempts: executions charged to a job before it is quarantined
            (or raised).  Only attributable failures are charged: a job
            that merely shared a chunk with a hang or crash is re-run for
            free.
        retry_backoff: seconds slept before retry ``n`` (scaled by ``n``);
            deterministic, and irrelevant to output under the purity
            contract.
        isolate: force the pooled path even for one worker, so a crash or
            hang cannot take down the calling process.
        fault_plan: optional :class:`~repro.runtime.faults.FaultPlan`
            injecting deterministic faults into chosen jobs (tests only).
        tracer: optional :class:`~repro.obs.trace.Tracer`; defaults to the
            process's ambient tracer.  When tracing is enabled, every job
            runs under a worker-side span whose buffer ships back with the
            result, and run counters (cache traffic, retries, timeouts,
            quarantines, pool rebuilds) land in the ambient metrics
            registry.  Telemetry is out-of-band: it never changes results,
            cache keys, or output bytes.

    Returns:
        With ``on_error="raise"``: one result per job, in submission order,
        for any worker count.  With ``on_error="quarantine"``: one
        :class:`~repro.runtime.faults.JobOutcome` per job, same order.
    """
    if on_error not in ("raise", "quarantine"):
        raise ValueError(f"on_error must be 'raise' or 'quarantine', not {on_error!r}")
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    if cache is not None and key_fn is None:
        raise ValueError("run_jobs(cache=...) requires key_fn")
    jobs = list(jobs)
    outcomes: list[Optional[JobOutcome]] = [None] * len(jobs)
    tracer = tracer if tracer is not None else get_tracer()
    registry = get_registry()

    pending = list(range(len(jobs)))
    keys: list[Optional[str]] = [None] * len(jobs)
    if cache is not None and key_fn is not None:
        pending = []
        for index, job in enumerate(jobs):
            keys[index] = key_fn(job)
            payload = cache.get(keys[index])
            if payload is None:
                pending.append(index)
            elif isinstance(payload, dict) and FAILURE_KEY in payload:
                outcomes[index] = JobOutcome.from_failure_payload(payload)
            else:
                outcomes[index] = JobOutcome(ok=True, result=decode(payload))

    def settle(index: int, outcome: JobOutcome) -> None:
        if cache is not None:
            if outcome.ok:
                cache.put(keys[index], encode(outcome.result))
            else:
                cache.put(keys[index], outcome.failure_payload())
        outcomes[index] = outcome

    fail_fast = on_error == "raise"
    if pending:
        effective = min(workers, len(pending))
        pooled = effective > 1 or timeout is not None or isolate
        runner = _PendingRun(
            jobs=jobs,
            worker_fn=worker_fn,
            context=context,
            fault_plan=fault_plan,
            timeout=timeout,
            max_attempts=max_attempts,
            retry_backoff=retry_backoff,
            settle=settle,
            fail_fast=fail_fast,
            tracer=tracer,
            registry=registry,
        )
        with tracer.span(
            "run_jobs",
            jobs=len(jobs),
            pending=len(pending),
            workers=max(1, effective) if pooled else 1,
        ):
            if pooled:
                runner.run_pooled(pending, max(1, effective), chunksize)
            else:
                runner.run_serial(pending)

    if on_error == "quarantine":
        return outcomes
    for outcome in outcomes:
        if not outcome.ok:
            raise_failure(outcome)
    return [outcome.result for outcome in outcomes]


class _PendingRun:
    """One ``run_jobs`` call's execution state for the jobs that missed the cache."""

    def __init__(
        self,
        jobs: list,
        worker_fn: Callable,
        context: Any,
        fault_plan: Optional[FaultPlan],
        timeout: Optional[float],
        max_attempts: int,
        retry_backoff: float,
        settle: Callable[[int, JobOutcome], None],
        fail_fast: bool,
        tracer=None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.jobs = jobs
        self.worker_fn = worker_fn
        self.context = context
        self.fault_plan = fault_plan
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.settle = settle
        self.fail_fast = fail_fast
        self.tracer = tracer if tracer is not None else get_tracer()
        self.registry = registry if registry is not None else get_registry()
        #: Ship worker-side telemetry only when someone is collecting it.
        self.telemetry = bool(getattr(self.tracer, "enabled", False))
        self.attempts: dict[int, int] = {}
        #: Jobs implicated in a pool loss or awaiting a retry: re-run as
        #: singleton chunks, one at a time, so failures are attributable.
        self.suspects: deque[int] = deque()

    # ------------------------------------------------------------------ #
    # shared bookkeeping
    # ------------------------------------------------------------------ #

    def _charged(self, index: int) -> int:
        self.attempts[index] = self.attempts.get(index, 0) + 1
        return self.attempts[index]

    def _ship(self, index: int, shipped: Optional[tuple]) -> None:
        """Fold one job's piggybacked worker telemetry into the run's."""
        if shipped:
            spans, snapshot = shipped
            self.tracer.absorb(spans, job=index)
            self.registry.merge(snapshot)

    def _succeed(self, index: int, result: Any, elapsed: float) -> None:
        self.settle(
            index,
            JobOutcome(ok=True, result=result, attempts=self._charged(index), elapsed_s=elapsed),
        )

    def _fail(
        self,
        index: int,
        failure: JobFailure,
        exception: Optional[BaseException],
        elapsed: float,
    ) -> bool:
        """Charge one failed attempt; returns True when the job may retry."""
        charged = self._charged(index)
        if charged < self.max_attempts:
            self.registry.inc("runtime.retries")
            if self.retry_backoff > 0:
                time.sleep(self.retry_backoff * charged)
            return True
        self.registry.inc(labeled("runtime.failure", failure.phase))
        if not self.fail_fast:
            self.registry.inc("runtime.quarantined")
        outcome = JobOutcome(
            ok=False, failure=failure, attempts=charged, elapsed_s=elapsed, exception=exception
        )
        self.settle(index, outcome)
        if self.fail_fast:
            raise_failure(outcome)
        return False

    def _absorb_chunk(self, chunk: Sequence[int], entries: list) -> None:
        """Fold one completed chunk's per-job entries into the run state."""
        for index, (ok, payload, exception, elapsed, shipped) in zip(chunk, entries):
            self._ship(index, shipped)
            if ok:
                self._succeed(index, payload, elapsed)
            elif self._fail(index, payload, exception, elapsed):
                self.suspects.append(index)

    def _lost_failure(self, phase: str) -> JobFailure:
        if phase == PHASE_TIMEOUT:
            self.registry.inc("runtime.timeouts")
            return JobFailure(
                phase=phase,
                exception_type="JobTimeoutError",
                message=f"job exceeded its {self.timeout}s timeout",
            )
        self.registry.inc("runtime.worker_deaths")
        return JobFailure(
            phase=phase,
            exception_type="WorkerCrashError",
            message="worker process died while running this job",
        )

    # ------------------------------------------------------------------ #
    # in-process path
    # ------------------------------------------------------------------ #

    def run_serial(self, pending: Sequence[int]) -> None:
        for index in pending:
            while True:
                ok, payload, exception, elapsed, shipped = _execute_job(
                    self.worker_fn,
                    self.jobs[index],
                    self.context,
                    self.fault_plan,
                    self.telemetry,
                )
                self._ship(index, shipped)
                if ok:
                    self._succeed(index, payload, elapsed)
                    break
                if not self._fail(index, payload, exception, elapsed):
                    break

    # ------------------------------------------------------------------ #
    # pooled path
    # ------------------------------------------------------------------ #

    def run_pooled(self, pending: Sequence[int], workers: int, chunksize: Optional[int]) -> None:
        if chunksize is None:
            chunksize = auto_chunksize(len(pending), workers)
        queue: deque[tuple[int, ...]] = deque(
            tuple(pending[start:start + chunksize])
            for start in range(0, len(pending), chunksize)
        )
        context = get_context()
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        inflight: dict[Future, tuple[tuple[int, ...], Optional[float]]] = {}

        def submit(pool: ProcessPoolExecutor, chunk: tuple[int, ...]) -> None:
            future = pool.submit(
                _chunk_entry,
                (
                    self.worker_fn,
                    [self.jobs[i] for i in chunk],
                    self.context,
                    self.fault_plan,
                    self.telemetry,
                ),
            )
            deadline = (
                time.monotonic() + self.timeout * len(chunk)
                if self.timeout is not None
                else None
            )
            inflight[future] = (chunk, deadline)

        def charge_or_suspect(index: int, phase: str) -> None:
            if self._fail(index, self._lost_failure(phase), None, 0.0):
                self.suspects.append(index)

        try:
            while queue or inflight:
                while queue and len(inflight) < workers:
                    submit(pool, queue.popleft())
                tick = _WATCHDOG_TICK_S if self.timeout is not None else None
                done, _ = wait(list(inflight), timeout=tick, return_when=FIRST_COMPLETED)
                lost: list[tuple[int, ...]] = []
                for future in done:
                    chunk, _deadline = inflight.pop(future)
                    try:
                        entries = future.result()
                    except BrokenProcessPool:
                        lost.append(chunk)
                    else:
                        self._absorb_chunk(chunk, entries)
                if lost:
                    # A worker death breaks the whole pool: every chunk still
                    # in flight is lost with it.  The loss is attributable
                    # only when exactly one job was in flight -- otherwise
                    # any of the implicated jobs could be the killer, so all
                    # of them are re-run as singleton suspects, uncharged.
                    lost.extend(chunk for chunk, _deadline in inflight.values())
                    inflight.clear()
                    if len(lost) == 1 and len(lost[0]) == 1:
                        charge_or_suspect(lost[0][0], PHASE_WORKER_DEATH)
                    else:
                        for chunk in lost:
                            self.suspects.extend(chunk)
                    _kill_pool(pool)
                    self.registry.inc("runtime.pool_rebuilds")
                    pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
                    continue
                if self.timeout is not None and inflight:
                    now = time.monotonic()
                    expired = [
                        future
                        for future, (_chunk, deadline) in inflight.items()
                        if deadline is not None and now >= deadline
                    ]
                    if expired:
                        # Deadline expiry *is* attributable per chunk: each
                        # expired chunk exceeded its own deadline.  Multi-job
                        # chunks still re-run as suspects for per-job blame.
                        for future in expired:
                            chunk, _deadline = inflight.pop(future)
                            if len(chunk) == 1:
                                charge_or_suspect(chunk[0], PHASE_TIMEOUT)
                            else:
                                self.suspects.extend(chunk)
                        # Killing the hung worker kills the whole pool; the
                        # innocent in-flight chunks just run again as-is.
                        for chunk, _deadline in inflight.values():
                            queue.appendleft(chunk)
                        inflight.clear()
                        _kill_pool(pool)
                        self.registry.inc("runtime.pool_rebuilds")
                        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
            self._run_suspects(context)
        finally:
            _kill_pool(pool)

    def _run_suspects(self, context) -> None:
        """Re-run implicated jobs one at a time on a dedicated 1-worker pool.

        With a single singleton in flight, a timeout or worker death is
        attributable to exactly that job, so charges (and therefore
        quarantine decisions) are precise even when the original loss
        happened inside a many-job chunk.
        """
        if not self.suspects:
            return
        pool = ProcessPoolExecutor(max_workers=1, mp_context=context)
        try:
            while self.suspects:
                index = self.suspects.popleft()
                future = pool.submit(
                    _chunk_entry,
                    (
                        self.worker_fn,
                        [self.jobs[index]],
                        self.context,
                        self.fault_plan,
                        self.telemetry,
                    ),
                )
                try:
                    entries = future.result(timeout=self.timeout)
                except FutureTimeoutError:
                    _kill_pool(pool)
                    self.registry.inc("runtime.pool_rebuilds")
                    pool = ProcessPoolExecutor(max_workers=1, mp_context=context)
                    if self._fail(index, self._lost_failure(PHASE_TIMEOUT), None, 0.0):
                        self.suspects.append(index)
                except BrokenProcessPool:
                    _kill_pool(pool)
                    self.registry.inc("runtime.pool_rebuilds")
                    pool = ProcessPoolExecutor(max_workers=1, mp_context=context)
                    if self._fail(index, self._lost_failure(PHASE_WORKER_DEATH), None, 0.0):
                        self.suspects.append(index)
                else:
                    self._absorb_chunk((index,), entries)
        finally:
            _kill_pool(pool)
