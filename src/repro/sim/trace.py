"""Simulation traces: sampled signal values per clock cycle.

A :class:`Trace` stores, for every simulated cycle, the values of every
signal sampled in the *preponed region* (just before the active clock edge).
This is exactly the sampling semantics concurrent SVAs use, so the assertion
checker in :mod:`repro.sva` consumes these traces directly.  A second,
post-edge snapshot is kept for waveform dumping and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.sim.values import LogicValue


@dataclass
class TraceSample:
    """Signal values for one clock cycle."""

    cycle: int
    pre_edge: dict[str, LogicValue]
    post_edge: dict[str, LogicValue]

    def sampled(self, name: str) -> LogicValue:
        """The preponed (SVA-visible) value of ``name`` at this cycle."""
        try:
            return self.pre_edge[name]
        except KeyError as exc:
            raise KeyError(f"signal '{name}' not in trace sample") from exc

    def settled(self, name: str) -> LogicValue:
        """The post-edge (waveform-visible) value of ``name`` at this cycle."""
        try:
            return self.post_edge[name]
        except KeyError as exc:
            raise KeyError(f"signal '{name}' not in trace sample") from exc


@dataclass
class Trace:
    """A sequence of per-cycle samples for one simulation run."""

    signals: list[str] = field(default_factory=list)
    samples: list[TraceSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[TraceSample]:
        return iter(self.samples)

    def __getitem__(self, index: int) -> TraceSample:
        return self.samples[index]

    def append(self, sample: TraceSample) -> None:
        self.samples.append(sample)

    def sampled_values(self, name: str) -> list[LogicValue]:
        """All preponed values of one signal across the run."""
        return [sample.sampled(name) for sample in self.samples]

    def sampled_ints(self, name: str) -> list[Optional[int]]:
        """All preponed values as ints (``None`` where the value has x bits)."""
        values = []
        for sample in self.samples:
            value = sample.sampled(name)
            values.append(None if value.has_unknown else value.to_int())
        return values

    def value_at(self, name: str, cycle: int) -> LogicValue:
        """Preponed value of ``name`` at ``cycle`` (0-based)."""
        return self.samples[cycle].sampled(name)

    def last(self) -> TraceSample:
        if not self.samples:
            raise IndexError("trace is empty")
        return self.samples[-1]

    def slice(self, start: int, stop: Optional[int] = None) -> "Trace":
        """Return a sub-trace covering ``samples[start:stop]`` (cycles renumbered)."""
        selected = self.samples[start:stop]
        renumbered = [
            TraceSample(cycle=i, pre_edge=s.pre_edge, post_edge=s.post_edge)
            for i, s in enumerate(selected)
        ]
        return Trace(signals=list(self.signals), samples=renumbered)

    def render(self, names: Optional[list[str]] = None, max_cycles: int = 32) -> str:
        """Render a compact text waveform table (one row per signal)."""
        names = names or self.signals
        cycles = min(len(self.samples), max_cycles)
        header = "cycle     " + " ".join(f"{i:>4d}" for i in range(cycles))
        rows = [header]
        for name in names:
            cells = []
            for i in range(cycles):
                value = self.samples[i].sampled(name)
                cells.append("   x" if value.has_unknown else f"{value.to_int():>4d}")
            rows.append(f"{name:<10.10s}" + " ".join(cells))
        return "\n".join(rows)
