"""Simulation traces: sampled signal values per clock cycle.

A :class:`Trace` stores, for every simulated cycle, the values of every
signal sampled in the *preponed region* (just before the active clock edge).
This is exactly the sampling semantics concurrent SVAs use, so the assertion
checker in :mod:`repro.sva` consumes these traces directly.  A second,
post-edge snapshot is kept for waveform dumping and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.sim.values import LogicValue

#: Widest signal stored in a fast (int64) column.  Values and xmasks are kept
#: masked to the signal width, so anything up to 63 bits fits a non-negative
#: int64; wider signals fall back to object-dtype columns of Python ints.
INT64_COLUMN_MAX_WIDTH = 63


def _column_dtype(width: int):
    return np.int64 if width <= INT64_COLUMN_MAX_WIDTH else object


@dataclass
class TraceColumns:
    """Per-signal preponed ``(value, xmask)`` column arrays over all cycles.

    The columnar twin of the row-oriented :class:`Trace`: one pair of
    length-``cycles`` ndarrays per signal, holding exactly the values
    :meth:`Trace.sampled_values` would return, as flat integers.  Signals up
    to :data:`INT64_COLUMN_MAX_WIDTH` bits use ``int64`` columns (what the
    vectorised checker consumes); wider signals degrade to object-dtype
    columns of Python ints so the representation stays total.
    """

    cycles: int
    values: dict[str, np.ndarray]
    xmasks: dict[str, np.ndarray]
    widths: dict[str, int]

    def signal(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """The ``(value, xmask)`` column pair of one signal."""
        try:
            return self.values[name], self.xmasks[name]
        except KeyError as exc:
            raise KeyError(f"signal '{name}' has no column in this trace") from exc


def _fill_columns_from_events(
    names: list[str],
    events: dict[str, list[tuple[int, int, int]]],
    widths: dict[str, int],
    cycles: int,
) -> TraceColumns:
    """Build :class:`TraceColumns` from per-signal change events.

    ``events[name]`` is ``[(start_cycle, value, xmask), ...]`` in application
    order: each event holds from its start cycle until the next event (later
    events at the same start cycle override earlier ones).  The fill is one
    slice assignment per *change*, so quiet signals cost O(1) regardless of
    trace length.
    """
    values: dict[str, np.ndarray] = {}
    xmasks: dict[str, np.ndarray] = {}
    for name in names:
        dtype = _column_dtype(widths[name])
        signal_events = events[name]
        count = len(signal_events)
        if count == 0:  # pragma: no cover - callers always seed a cycle-0 event
            values[name] = np.zeros(cycles, dtype=dtype)
            xmasks[name] = np.zeros(cycles, dtype=dtype)
            continue
        # Each event holds until the next one's (clipped) start: one
        # np.repeat builds the whole column, so the fill is O(events) numpy
        # work whether the signal changed once or every cycle.
        starts = np.fromiter((e[0] for e in signal_events), np.int64, count)
        np.clip(starts, 0, cycles, out=starts)
        stops = np.empty(count, dtype=np.int64)
        stops[:-1] = starts[1:]
        stops[-1] = cycles
        lengths = np.maximum(stops - starts, 0)
        values[name] = np.repeat(
            np.fromiter((e[1] for e in signal_events), dtype, count), lengths
        )
        xmasks[name] = np.repeat(
            np.fromiter((e[2] for e in signal_events), dtype, count), lengths
        )
    return TraceColumns(cycles=cycles, values=values, xmasks=xmasks, widths=dict(widths))


@dataclass
class TraceSample:
    """Signal values for one clock cycle."""

    cycle: int
    pre_edge: dict[str, LogicValue]
    post_edge: dict[str, LogicValue]

    def sampled(self, name: str) -> LogicValue:
        """The preponed (SVA-visible) value of ``name`` at this cycle."""
        try:
            return self.pre_edge[name]
        except KeyError as exc:
            raise KeyError(f"signal '{name}' not in trace sample") from exc

    def settled(self, name: str) -> LogicValue:
        """The post-edge (waveform-visible) value of ``name`` at this cycle."""
        try:
            return self.post_edge[name]
        except KeyError as exc:
            raise KeyError(f"signal '{name}' not in trace sample") from exc


@dataclass
class Trace:
    """A sequence of per-cycle samples for one simulation run."""

    signals: list[str] = field(default_factory=list)
    samples: list[TraceSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[TraceSample]:
        return iter(self.samples)

    def __getitem__(self, index: int) -> TraceSample:
        return self.samples[index]

    def append(self, sample: TraceSample) -> None:
        self.samples.append(sample)
        self._invalidate_columns()

    # -- columnar-view memoisation ---------------------------------------- #

    def _invalidate_columns(self) -> None:
        """Drop memoised columns (called by every mutation entry point)."""
        self.__dict__.pop("_columns_memo", None)

    def columns_cached(self, names: Optional[list[str]] = None) -> Optional[TraceColumns]:
        """The memoised columns for exactly these names, or None.

        A cheap existence probe: consumers (the compiled checker's per-trace
        preparation) use a hit to skip the per-sample signal-membership scan
        entirely -- a memoised build already proved the signals exist.
        """
        memo = self.__dict__.get("_columns_memo")
        if memo is None:
            return None
        key = tuple(names) if names is not None else None
        return memo.get(key)

    def __getstate__(self) -> dict:
        # Memoised columns are derived data: rebuilding them costs less than
        # shipping redundant ndarrays across process boundaries.
        state = dict(self.__dict__)
        state.pop("_columns_memo", None)
        return state

    def sampled_values(self, name: str) -> list[LogicValue]:
        """All preponed values of one signal across the run."""
        return [sample.sampled(name) for sample in self.samples]

    def sampled_ints(self, name: str) -> list[Optional[int]]:
        """All preponed values as ints (``None`` where the value has x bits)."""
        values = []
        for sample in self.samples:
            value = sample.sampled(name)
            values.append(None if value.has_unknown else value.to_int())
        return values

    def value_at(self, name: str, cycle: int) -> LogicValue:
        """Preponed value of ``name`` at ``cycle`` (0-based)."""
        return self.samples[cycle].sampled(name)

    def last(self) -> TraceSample:
        if not self.samples:
            raise IndexError("trace is empty")
        return self.samples[-1]

    def slice(self, start: int, stop: Optional[int] = None) -> "Trace":
        """Return a sub-trace covering ``samples[start:stop]`` (cycles renumbered)."""
        selected = self.samples[start:stop]
        renumbered = [
            TraceSample(cycle=i, pre_edge=s.pre_edge, post_edge=s.post_edge)
            for i, s in enumerate(selected)
        ]
        return Trace(signals=list(self.signals), samples=renumbered)

    def materialized(self) -> "Trace":
        """This trace with every sample realised as plain dicts (identity here)."""
        return self

    def has_signals(self, names: list[str]) -> bool:
        """True when every name is present in every sample's preponed dict.

        The cheap membership probe consumers use to decide up front whether
        :meth:`columns` / per-cycle reads can succeed; shared sample dicts
        (quiet stretches) are probed once, and no values are touched.
        """
        prev_pre: Optional[dict] = None
        for sample in self.samples:
            pre = sample.pre_edge
            if pre is prev_pre:
                continue
            for name in names:
                if name not in pre:
                    return False
            prev_pre = pre
        return True

    def columns(self, names: Optional[list[str]] = None) -> TraceColumns:
        """Columnar view: per-signal preponed ``(value, xmask)`` ndarrays.

        Column ``values[name][c]`` equals ``value_at(name, c).value`` for
        every cycle (and likewise for the xmask), so the vectorised checker
        can evaluate whole-trace expressions without touching per-cycle
        dicts.  Raises :class:`KeyError` (with the offending names) when a
        requested signal is absent from the trace samples.

        Built columns are memoised per exact name tuple (and invalidated by
        any append), so the verifier, ``check_batch`` and the benches stop
        rebuilding identical arrays for the same trace.  Callers must not
        mutate the returned arrays.
        """
        key = tuple(names) if names is not None else None
        memo = self.__dict__.get("_columns_memo")
        if memo is None:
            memo = self.__dict__["_columns_memo"] = {}
        cached = memo.get(key)
        if cached is None:
            cached = memo[key] = self._build_columns(names)
        return cached

    def _build_columns(self, names: Optional[list[str]] = None) -> TraceColumns:
        names = list(names) if names is not None else list(self.signals)
        cycles = len(self.samples)
        if cycles == 0:
            empty = np.zeros(0, dtype=np.int64)
            return TraceColumns(
                cycles=0,
                values={name: empty for name in names},
                xmasks={name: empty for name in names},
                widths={name: 1 for name in names},
            )
        samples = self.samples
        first = samples[0].pre_edge
        missing = sorted(name for name in names if name not in first)
        if missing:
            raise KeyError(f"signals not in trace: {', '.join(missing)}")
        values: dict[str, np.ndarray] = {}
        xmasks: dict[str, np.ndarray] = {}
        widths: dict[str, int] = {}
        for name in names:
            width = first[name].width
            dtype = _column_dtype(width)
            try:
                sampled = [sample.pre_edge[name] for sample in samples]
            except KeyError as exc:
                raise KeyError(f"signals not in trace: {name}") from exc
            widths[name] = width
            values[name] = np.fromiter((v.value for v in sampled), dtype, cycles)
            xmasks[name] = np.fromiter((v.xmask for v in sampled), dtype, cycles)
        return TraceColumns(cycles=cycles, values=values, xmasks=xmasks, widths=widths)

    def render(self, names: Optional[list[str]] = None, max_cycles: int = 32) -> str:
        """Render a compact text waveform table (one row per signal).

        The name column is sized to the longest rendered name (no silent
        truncation), and unknown names raise :class:`ValueError` up front
        instead of a bare ``KeyError`` mid-render.
        """
        names = names or self.signals
        available = self.samples[0].pre_edge if self.samples else self.signals
        missing = sorted(name for name in names if name not in available)
        if missing:
            raise ValueError(
                f"cannot render signals not in trace: {', '.join(missing)}"
            )
        cycles = min(len(self.samples), max_cycles)
        name_width = max([len("cycle")] + [len(name) for name in names]) + 1
        header = f"{'cycle':<{name_width}}" + " ".join(f"{i:>4d}" for i in range(cycles))
        rows = [header]
        for name in names:
            cells = []
            for i in range(cycles):
                value = self.samples[i].sampled(name)
                cells.append("   x" if value.has_unknown else f"{value.to_int():>4d}")
            rows.append(f"{name:<{name_width}}" + " ".join(cells))
        return "\n".join(rows)


class DiffTrace(Trace):
    """A trace stored as per-cycle diffs instead of full snapshots.

    The compiled simulation backend records, for every cycle, only the
    signals whose value changed since the previous sampling point (two
    sampling points per cycle: preponed and post-edge).  Samples are
    materialised into ordinary :class:`TraceSample` objects lazily, on first
    access, and cached; unchanged sampling points share the predecessor's
    dict so a quiet design costs almost nothing to store or to read.

    The class satisfies the full :class:`Trace` API: any access that needs
    the plain ``samples`` list (e.g. :meth:`Trace.slice`) transparently
    materialises the whole trace first.
    """

    def __init__(self, signals: list[str], base: dict[str, LogicValue]):
        # Deliberately does not call the dataclass __init__: `samples` is
        # replaced by a lazily-materialised property.
        self.signals = list(signals)
        self._base = dict(base)
        self._pre_diffs: list[dict[str, LogicValue]] = []
        self._post_diffs: list[dict[str, LogicValue]] = []
        self._cache: list[TraceSample] = []
        #: Optional simulator-recorded column buffers: per-signal change
        #: events ``(sample_cycle, value, xmask)`` as plain ints, written
        #: straight from the compiled simulator's flat arrays (see
        #: ``SimulatorOptions.record_columns``).  When present,
        #: :meth:`columns` reads them instead of unpacking LogicValue diffs.
        self._column_events: Optional[dict[str, list[tuple[int, int, int]]]] = None

    # -- recording (used by the compiled backend) ----------------------- #

    def append_diffs(
        self, pre_diff: dict[str, LogicValue], post_diff: dict[str, LogicValue]
    ) -> None:
        """Record one cycle as (changes up to the preponed sample, changes up
        to the post-edge sample)."""
        self._pre_diffs.append(pre_diff)
        self._post_diffs.append(post_diff)
        self._invalidate_columns()

    def append(self, sample: TraceSample) -> None:  # pragma: no cover - guard
        raise TypeError("DiffTrace records cycles via append_diffs(), not append()")

    def enable_column_recording(self) -> None:
        """Let the recording simulator stream column events into this trace.

        The producer (the compiled simulator's diff recorder) appends
        ``(sample_cycle, value, xmask)`` tuples straight into
        ``_column_events`` -- deliberately no per-event method call on a
        loop that runs for every changed signal of every cycle.
        """
        if self._column_events is None:
            self._column_events = {}

    @property
    def records_columns(self) -> bool:
        return self._column_events is not None

    # -- lazy materialisation ------------------------------------------- #

    def _materialize_to(self, index: int) -> None:
        while len(self._cache) <= index:
            cycle = len(self._cache)
            previous = self._cache[-1].post_edge if self._cache else self._base
            pre_diff = self._pre_diffs[cycle]
            if pre_diff:
                pre = dict(previous)
                pre.update(pre_diff)
            else:
                pre = previous  # shared: consumers never mutate samples
            post_diff = self._post_diffs[cycle]
            if post_diff:
                post = dict(pre)
                post.update(post_diff)
            else:
                post = pre
            self._cache.append(TraceSample(cycle=cycle, pre_edge=pre, post_edge=post))

    @property
    def samples(self) -> list[TraceSample]:  # type: ignore[override]
        if self._pre_diffs:
            self._materialize_to(len(self._pre_diffs) - 1)
        return self._cache

    @samples.setter
    def samples(self, value: list[TraceSample]) -> None:  # pragma: no cover - guard
        raise TypeError("DiffTrace samples are derived from recorded diffs")

    def materialized(self) -> Trace:
        """An eager :class:`Trace` copy (useful before pickling across processes)."""
        return Trace(signals=list(self.signals), samples=list(self.samples))

    def has_signals(self, names: list[str]) -> bool:
        # Diff keys are always a subset of the base keys (both come from the
        # recording simulator's fixed signal list), so base membership is
        # the whole answer -- no materialisation.
        base = self._base
        return all(name in base for name in names)

    def _build_columns(self, names: Optional[list[str]] = None) -> TraceColumns:
        """Columnar view built **directly from the recorded diffs**.

        Unlike the base implementation this never materialises per-cycle
        sample dicts: each diff entry becomes one change event and quiet
        stretches become one slice fill, so a quiet design's columns cost
        O(changes), not O(cycles x signals).  When the simulator recorded
        column events (``SimulatorOptions.record_columns``), those flat int
        buffers are consumed as-is.
        """
        names = list(names) if names is not None else list(self.signals)
        base = self._base
        missing = sorted(name for name in names if name not in base)
        if missing:
            raise KeyError(f"signals not in trace: {', '.join(missing)}")
        cycles = len(self._pre_diffs)
        widths = {name: base[name].width for name in names}
        events: dict[str, list[tuple[int, int, int]]] = {
            name: [(0, base[name].value, base[name].xmask)] for name in names
        }
        if self._column_events is not None:
            for name in names:
                recorded = self._column_events.get(name)
                if recorded:
                    events[name].extend(recorded)
        else:
            wanted = set(names)
            # A pre-edge change holds from its own cycle; a post-edge change
            # is first *sampled* one cycle later.  Iterating cycle-by-cycle
            # appends events in exactly the order the diffs were applied, so
            # a later event at the same start cycle correctly overrides.
            for cycle in range(cycles):
                for name, value in self._pre_diffs[cycle].items():
                    if name in wanted:
                        events[name].append((cycle, value.value, value.xmask))
                for name, value in self._post_diffs[cycle].items():
                    if name in wanted:
                        events[name].append((cycle + 1, value.value, value.xmask))
        return _fill_columns_from_events(names, events, widths, cycles)

    # -- cheap accessors that avoid materialising the whole run ---------- #

    def __len__(self) -> int:
        return len(self._pre_diffs)

    def __iter__(self) -> Iterator[TraceSample]:
        for index in range(len(self)):
            yield self[index]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.samples[index]
        if index < 0:
            index += len(self)
        if index < 0 or index >= len(self):
            raise IndexError("trace index out of range")
        self._materialize_to(index)
        return self._cache[index]

    def value_at(self, name: str, cycle: int) -> LogicValue:
        return self[cycle].sampled(name)

    def last(self) -> TraceSample:
        if not self._pre_diffs:
            raise IndexError("trace is empty")
        return self[len(self) - 1]
