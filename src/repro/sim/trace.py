"""Simulation traces: sampled signal values per clock cycle.

A :class:`Trace` stores, for every simulated cycle, the values of every
signal sampled in the *preponed region* (just before the active clock edge).
This is exactly the sampling semantics concurrent SVAs use, so the assertion
checker in :mod:`repro.sva` consumes these traces directly.  A second,
post-edge snapshot is kept for waveform dumping and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.sim.values import LogicValue


@dataclass
class TraceSample:
    """Signal values for one clock cycle."""

    cycle: int
    pre_edge: dict[str, LogicValue]
    post_edge: dict[str, LogicValue]

    def sampled(self, name: str) -> LogicValue:
        """The preponed (SVA-visible) value of ``name`` at this cycle."""
        try:
            return self.pre_edge[name]
        except KeyError as exc:
            raise KeyError(f"signal '{name}' not in trace sample") from exc

    def settled(self, name: str) -> LogicValue:
        """The post-edge (waveform-visible) value of ``name`` at this cycle."""
        try:
            return self.post_edge[name]
        except KeyError as exc:
            raise KeyError(f"signal '{name}' not in trace sample") from exc


@dataclass
class Trace:
    """A sequence of per-cycle samples for one simulation run."""

    signals: list[str] = field(default_factory=list)
    samples: list[TraceSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[TraceSample]:
        return iter(self.samples)

    def __getitem__(self, index: int) -> TraceSample:
        return self.samples[index]

    def append(self, sample: TraceSample) -> None:
        self.samples.append(sample)

    def sampled_values(self, name: str) -> list[LogicValue]:
        """All preponed values of one signal across the run."""
        return [sample.sampled(name) for sample in self.samples]

    def sampled_ints(self, name: str) -> list[Optional[int]]:
        """All preponed values as ints (``None`` where the value has x bits)."""
        values = []
        for sample in self.samples:
            value = sample.sampled(name)
            values.append(None if value.has_unknown else value.to_int())
        return values

    def value_at(self, name: str, cycle: int) -> LogicValue:
        """Preponed value of ``name`` at ``cycle`` (0-based)."""
        return self.samples[cycle].sampled(name)

    def last(self) -> TraceSample:
        if not self.samples:
            raise IndexError("trace is empty")
        return self.samples[-1]

    def slice(self, start: int, stop: Optional[int] = None) -> "Trace":
        """Return a sub-trace covering ``samples[start:stop]`` (cycles renumbered)."""
        selected = self.samples[start:stop]
        renumbered = [
            TraceSample(cycle=i, pre_edge=s.pre_edge, post_edge=s.post_edge)
            for i, s in enumerate(selected)
        ]
        return Trace(signals=list(self.signals), samples=renumbered)

    def materialized(self) -> "Trace":
        """This trace with every sample realised as plain dicts (identity here)."""
        return self

    def render(self, names: Optional[list[str]] = None, max_cycles: int = 32) -> str:
        """Render a compact text waveform table (one row per signal)."""
        names = names or self.signals
        cycles = min(len(self.samples), max_cycles)
        header = "cycle     " + " ".join(f"{i:>4d}" for i in range(cycles))
        rows = [header]
        for name in names:
            cells = []
            for i in range(cycles):
                value = self.samples[i].sampled(name)
                cells.append("   x" if value.has_unknown else f"{value.to_int():>4d}")
            rows.append(f"{name:<10.10s}" + " ".join(cells))
        return "\n".join(rows)


class DiffTrace(Trace):
    """A trace stored as per-cycle diffs instead of full snapshots.

    The compiled simulation backend records, for every cycle, only the
    signals whose value changed since the previous sampling point (two
    sampling points per cycle: preponed and post-edge).  Samples are
    materialised into ordinary :class:`TraceSample` objects lazily, on first
    access, and cached; unchanged sampling points share the predecessor's
    dict so a quiet design costs almost nothing to store or to read.

    The class satisfies the full :class:`Trace` API: any access that needs
    the plain ``samples`` list (e.g. :meth:`Trace.slice`) transparently
    materialises the whole trace first.
    """

    def __init__(self, signals: list[str], base: dict[str, LogicValue]):
        # Deliberately does not call the dataclass __init__: `samples` is
        # replaced by a lazily-materialised property.
        self.signals = list(signals)
        self._base = dict(base)
        self._pre_diffs: list[dict[str, LogicValue]] = []
        self._post_diffs: list[dict[str, LogicValue]] = []
        self._cache: list[TraceSample] = []

    # -- recording (used by the compiled backend) ----------------------- #

    def append_diffs(
        self, pre_diff: dict[str, LogicValue], post_diff: dict[str, LogicValue]
    ) -> None:
        """Record one cycle as (changes up to the preponed sample, changes up
        to the post-edge sample)."""
        self._pre_diffs.append(pre_diff)
        self._post_diffs.append(post_diff)

    def append(self, sample: TraceSample) -> None:  # pragma: no cover - guard
        raise TypeError("DiffTrace records cycles via append_diffs(), not append()")

    # -- lazy materialisation ------------------------------------------- #

    def _materialize_to(self, index: int) -> None:
        while len(self._cache) <= index:
            cycle = len(self._cache)
            previous = self._cache[-1].post_edge if self._cache else self._base
            pre_diff = self._pre_diffs[cycle]
            if pre_diff:
                pre = dict(previous)
                pre.update(pre_diff)
            else:
                pre = previous  # shared: consumers never mutate samples
            post_diff = self._post_diffs[cycle]
            if post_diff:
                post = dict(pre)
                post.update(post_diff)
            else:
                post = pre
            self._cache.append(TraceSample(cycle=cycle, pre_edge=pre, post_edge=post))

    @property
    def samples(self) -> list[TraceSample]:  # type: ignore[override]
        if self._pre_diffs:
            self._materialize_to(len(self._pre_diffs) - 1)
        return self._cache

    @samples.setter
    def samples(self, value: list[TraceSample]) -> None:  # pragma: no cover - guard
        raise TypeError("DiffTrace samples are derived from recorded diffs")

    def materialized(self) -> Trace:
        """An eager :class:`Trace` copy (useful before pickling across processes)."""
        return Trace(signals=list(self.signals), samples=list(self.samples))

    # -- cheap accessors that avoid materialising the whole run ---------- #

    def __len__(self) -> int:
        return len(self._pre_diffs)

    def __iter__(self) -> Iterator[TraceSample]:
        for index in range(len(self)):
            yield self[index]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.samples[index]
        if index < 0:
            index += len(self)
        if index < 0 or index >= len(self):
            raise IndexError("trace index out of range")
        self._materialize_to(index)
        return self._cache[index]

    def value_at(self, name: str, cycle: int) -> LogicValue:
        return self[cycle].sampled(name)

    def last(self) -> TraceSample:
        if not self._pre_diffs:
            raise IndexError("trace is empty")
        return self[len(self) - 1]
