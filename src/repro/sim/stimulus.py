"""Stimulus generation for simulation-based assertion checking.

The data-augmentation pipeline and the solution verifier both need input
vectors that (a) respect the design's reset protocol and (b) exercise enough
of the input space to trigger assertion failures when a bug is present.
This module provides deterministic, seedable random stimulus plus a set of
directed corner patterns (all-zeros, all-ones, walking ones, toggling
valid/enable style controls).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.hdl.elaborate import ElaboratedDesign, Signal

#: Names treated as reset signals (active level inferred from the name).
_RESET_NAMES = ("rst_n", "resetn", "rstn", "rst_ni", "rst", "reset", "rst_i")

#: Names treated as clocks and therefore never driven by stimulus directly.
_CLOCK_NAMES = ("clk", "clock", "clk_i")


@dataclass
class Stimulus:
    """A sequence of per-cycle input assignments."""

    vectors: list[dict[str, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.vectors)

    def __iter__(self):
        return iter(self.vectors)

    def __getitem__(self, index: int) -> dict[str, int]:
        return self.vectors[index]

    def extended(self, other: "Stimulus") -> "Stimulus":
        return Stimulus(vectors=self.vectors + other.vectors)


def reset_signal_of(design: ElaboratedDesign) -> Optional[Signal]:
    """Find the design's reset input, if any."""
    for name in _RESET_NAMES:
        signal = design.signals.get(name)
        if signal is not None and signal.is_input:
            return signal
    return None


def is_active_low_reset(name: str) -> bool:
    """Heuristic: names ending in ``n`` (rst_n, resetn...) are active-low."""
    stripped = name.lower().rstrip("i_")
    return stripped.endswith("n")


def data_inputs_of(design: ElaboratedDesign) -> list[Signal]:
    """Input ports excluding clock and reset."""
    excluded = set(_CLOCK_NAMES) | set(_RESET_NAMES)
    return [s for s in design.inputs if s.name not in excluded]


def reset_sequence(design: ElaboratedDesign, cycles: int = 2) -> Stimulus:
    """Hold reset active for ``cycles`` cycles, then release it."""
    reset = reset_signal_of(design)
    vectors: list[dict[str, int]] = []
    for index in range(cycles + 1):
        vector: dict[str, int] = {s.name: 0 for s in data_inputs_of(design)}
        if reset is not None:
            active = 0 if is_active_low_reset(reset.name) else 1
            inactive = 1 - active
            vector[reset.name] = active if index < cycles else inactive
        vectors.append(vector)
    return Stimulus(vectors=vectors)


class StimulusGenerator:
    """Seedable generator of random and directed stimulus."""

    def __init__(self, design: ElaboratedDesign, seed: int = 0):
        self._design = design
        self._random = random.Random(seed)
        self._reset = reset_signal_of(design)
        self._data_inputs = data_inputs_of(design)

    # ------------------------------------------------------------------ #
    # random stimulus
    # ------------------------------------------------------------------ #

    def random_vector(self, control_bias: float = 0.7) -> dict[str, int]:
        """One random input vector.

        Single-bit control-like inputs are biased towards 1 with probability
        ``control_bias`` so that enables/valids actually fire often enough to
        exercise the datapath and its assertions.
        """
        vector: dict[str, int] = {}
        for signal in self._data_inputs:
            if signal.width == 1:
                vector[signal.name] = int(self._random.random() < control_bias)
            else:
                vector[signal.name] = self._random.getrandbits(signal.width)
        if self._reset is not None:
            vector[self._reset.name] = 1 if is_active_low_reset(self._reset.name) else 0
        return vector

    def random_stimulus(self, cycles: int, reset_cycles: int = 2) -> Stimulus:
        """Reset followed by ``cycles`` random vectors."""
        stimulus = reset_sequence(self._design, cycles=reset_cycles)
        for _ in range(cycles):
            stimulus.vectors.append(self.random_vector())
        return stimulus

    # ------------------------------------------------------------------ #
    # directed stimulus
    # ------------------------------------------------------------------ #

    def directed_patterns(self) -> Iterable[dict[str, int]]:
        """Corner-case vectors: all zeros, all ones, walking ones on data buses."""
        zeros = {s.name: 0 for s in self._data_inputs}
        ones = {s.name: (1 << s.width) - 1 for s in self._data_inputs}
        yield self._with_reset_inactive(zeros)
        yield self._with_reset_inactive(ones)
        wide_inputs = [s for s in self._data_inputs if s.width > 1]
        for signal in wide_inputs:
            for bit in range(min(signal.width, 8)):
                vector = dict(zeros)
                vector[signal.name] = 1 << bit
                for control in self._data_inputs:
                    if control.width == 1:
                        vector[control.name] = 1
                yield self._with_reset_inactive(vector)

    def directed_stimulus(self, reset_cycles: int = 2) -> Stimulus:
        """Reset followed by every directed corner pattern."""
        stimulus = reset_sequence(self._design, cycles=reset_cycles)
        stimulus.vectors.extend(self.directed_patterns())
        return stimulus

    def mixed_stimulus(self, random_cycles: int = 40, reset_cycles: int = 2) -> Stimulus:
        """Reset, directed corners, then random traffic; plus a mid-run reset pulse."""
        stimulus = self.directed_stimulus(reset_cycles=reset_cycles)
        for _ in range(random_cycles):
            stimulus.vectors.append(self.random_vector())
        if self._reset is not None:
            # A mid-run reset pulse exercises the asynchronous reset paths.
            active = 0 if is_active_low_reset(self._reset.name) else 1
            pulse = self.random_vector()
            pulse[self._reset.name] = active
            stimulus.vectors.append(pulse)
            for _ in range(random_cycles // 4):
                stimulus.vectors.append(self.random_vector())
        return stimulus

    def _with_reset_inactive(self, vector: dict[str, int]) -> dict[str, int]:
        vector = dict(vector)
        if self._reset is not None:
            vector[self._reset.name] = 1 if is_active_low_reset(self._reset.name) else 0
        return vector
