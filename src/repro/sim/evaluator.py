"""Expression evaluation over 4-state values.

The evaluator implements the Verilog expression semantics the project needs:
self-determined operand widths, conservative x-propagation, reduction
operators, concatenation/replication, bit and part selects, and the handful
of system functions allowed in synthesisable code and SVA boolean layers.

SVA-only sampled-value functions (``$past``, ``$rose``, ``$fell``,
``$stable``, ``$changed``) are resolved through an optional callback so the
same evaluator serves both the RTL simulator (which never sees them) and the
assertion checker (which provides trace history).
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.hdl import ast
from repro.sim.values import LogicValue, concat, replicate


class EvalError(Exception):
    """Raised when an expression cannot be evaluated."""


#: Signature of the hook used by the SVA checker to resolve sampled-value functions.
SampledValueHook = Callable[[ast.SystemCall], LogicValue]


class Evaluator:
    """Evaluates :class:`repro.hdl.ast.Expression` trees against an environment."""

    def __init__(
        self,
        environment: Mapping[str, LogicValue],
        parameters: Optional[Mapping[str, int]] = None,
        sampled_value_hook: Optional[SampledValueHook] = None,
    ):
        self._env = environment
        self._parameters = parameters or {}
        self._sampled_value_hook = sampled_value_hook

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def evaluate(self, expr: ast.Expression) -> LogicValue:
        """Evaluate ``expr`` to a :class:`LogicValue`."""
        if isinstance(expr, ast.Number):
            return self._eval_number(expr)
        if isinstance(expr, ast.Identifier):
            return self._eval_identifier(expr)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr)
        if isinstance(expr, ast.Ternary):
            return self._eval_ternary(expr)
        if isinstance(expr, ast.BitSelect):
            return self._eval_bit_select(expr)
        if isinstance(expr, ast.PartSelect):
            return self._eval_part_select(expr)
        if isinstance(expr, ast.Concat):
            return concat([self.evaluate(part) for part in expr.parts])
        if isinstance(expr, ast.Replicate):
            count = self.evaluate(expr.count)
            if count.has_unknown:
                raise EvalError("replication count is unknown")
            return replicate(count.to_int(), self.evaluate(expr.value))
        if isinstance(expr, ast.SystemCall):
            return self._eval_system_call(expr)
        raise EvalError(f"cannot evaluate expression of type {type(expr).__name__}")

    def evaluate_bool(self, expr: ast.Expression) -> Optional[bool]:
        """Evaluate to a Python bool, or ``None`` when the truth is unknown."""
        result = self.evaluate(expr).truth()
        if result.has_unknown:
            return None
        return bool(result.to_int())

    # ------------------------------------------------------------------ #
    # node handlers
    # ------------------------------------------------------------------ #

    def _eval_number(self, expr: ast.Number) -> LogicValue:
        width = expr.width if expr.width is not None else 32
        return LogicValue(value=expr.value, xmask=expr.xz_mask, width=width)

    def _eval_identifier(self, expr: ast.Identifier) -> LogicValue:
        if expr.name in self._env:
            return self._env[expr.name]
        if expr.name in self._parameters:
            return LogicValue.from_int(self._parameters[expr.name], 32)
        raise EvalError(f"unknown signal '{expr.name}'")

    def _eval_unary(self, expr: ast.Unary) -> LogicValue:
        operand = self.evaluate(expr.operand)
        op = expr.op
        if op == "+":
            return operand
        if op == "-":
            if operand.has_unknown:
                return LogicValue.unknown(operand.width)
            return LogicValue.from_int(-operand.to_int(), operand.width)
        if op == "~":
            if operand.has_unknown:
                return LogicValue.unknown(operand.width)
            return LogicValue.from_int(~operand.to_int(), operand.width)
        if op == "!":
            truth = operand.truth()
            if truth.has_unknown:
                return LogicValue.unknown(1)
            return LogicValue.from_int(0 if truth.to_int() else 1, 1)
        if op in ("&", "|", "^"):
            return self._eval_reduction(op, operand)
        raise EvalError(f"unsupported unary operator '{op}'")

    def _eval_reduction(self, op: str, operand: LogicValue) -> LogicValue:
        if operand.has_unknown:
            return LogicValue.unknown(1)
        value = operand.to_int()
        if op == "&":
            result = int(value == operand.mask)
        elif op == "|":
            result = int(value != 0)
        else:
            result = value.bit_count() & 1
        return LogicValue.from_int(result, 1)

    def _eval_binary(self, expr: ast.Binary) -> LogicValue:
        op = expr.op
        left = self.evaluate(expr.left)
        right = self.evaluate(expr.right)
        if op in ("&&", "||"):
            return self._eval_logical(op, left, right)
        width = max(left.width, right.width)
        if op in ("==", "!=", "===", "!=="):
            return self._eval_equality(op, left, right)
        if op in ("<", ">", "<=", ">="):
            return self._eval_relational(op, left, right)
        if left.has_unknown or right.has_unknown:
            result_width = width if op not in ("<<", ">>", "<<<", ">>>") else left.width
            return LogicValue.unknown(result_width)
        a, b = left.to_int(), right.to_int()
        if op == "+":
            return LogicValue.from_int(a + b, width)
        if op == "-":
            return LogicValue.from_int(a - b, width)
        if op == "*":
            return LogicValue.from_int(a * b, width)
        if op == "/":
            if b == 0:
                return LogicValue.unknown(width)
            return LogicValue.from_int(a // b, width)
        if op == "%":
            if b == 0:
                return LogicValue.unknown(width)
            return LogicValue.from_int(a % b, width)
        if op == "**":
            return LogicValue.from_int(a ** min(b, 64), width)
        if op == "&":
            return LogicValue.from_int(a & b, width)
        if op == "|":
            return LogicValue.from_int(a | b, width)
        if op in ("^",):
            return LogicValue.from_int(a ^ b, width)
        if op in ("~^", "^~"):
            return LogicValue.from_int(~(a ^ b), width)
        if op == "<<" or op == "<<<":
            return LogicValue.from_int(a << min(b, 1024), left.width)
        if op == ">>" or op == ">>>":
            return LogicValue.from_int(a >> min(b, 1024), left.width)
        raise EvalError(f"unsupported binary operator '{op}'")

    def _eval_logical(self, op: str, left: LogicValue, right: LogicValue) -> LogicValue:
        left_truth = left.truth()
        right_truth = right.truth()
        if op == "&&":
            if left_truth.is_false() or right_truth.is_false():
                return LogicValue.from_int(0, 1)
            if left_truth.has_unknown or right_truth.has_unknown:
                return LogicValue.unknown(1)
            return LogicValue.from_int(1, 1)
        # "||"
        if left_truth.is_true() or right_truth.is_true():
            return LogicValue.from_int(1, 1)
        if left_truth.has_unknown or right_truth.has_unknown:
            return LogicValue.unknown(1)
        return LogicValue.from_int(0, 1)

    def _eval_equality(self, op: str, left: LogicValue, right: LogicValue) -> LogicValue:
        if op in ("===", "!=="):
            width = max(left.width, right.width)
            same = left.resized(width).value == right.resized(width).value and (
                left.resized(width).xmask == right.resized(width).xmask
            )
            result = same if op == "===" else not same
            return LogicValue.from_int(int(result), 1)
        if left.has_unknown or right.has_unknown:
            return LogicValue.unknown(1)
        equal = left.to_int() == right.to_int()
        result = equal if op == "==" else not equal
        return LogicValue.from_int(int(result), 1)

    def _eval_relational(self, op: str, left: LogicValue, right: LogicValue) -> LogicValue:
        if left.has_unknown or right.has_unknown:
            return LogicValue.unknown(1)
        a, b = left.to_int(), right.to_int()
        results = {"<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b}
        return LogicValue.from_int(int(results[op]), 1)

    def _eval_ternary(self, expr: ast.Ternary) -> LogicValue:
        condition = self.evaluate(expr.condition).truth()
        if condition.has_unknown:
            if_true = self.evaluate(expr.if_true)
            if_false = self.evaluate(expr.if_false)
            width = max(if_true.width, if_false.width)
            if if_true.is_fully_known and if_false.is_fully_known and if_true.to_int() == if_false.to_int():
                return if_true.resized(width)
            return LogicValue.unknown(width)
        if condition.is_true():
            return self.evaluate(expr.if_true)
        return self.evaluate(expr.if_false)

    def _eval_bit_select(self, expr: ast.BitSelect) -> LogicValue:
        base = self.evaluate(expr.base)
        index = self.evaluate(expr.index)
        if index.has_unknown:
            return LogicValue.unknown(1)
        return base.bit(index.to_int())

    def _eval_part_select(self, expr: ast.PartSelect) -> LogicValue:
        base = self.evaluate(expr.base)
        msb = self.evaluate(expr.msb)
        lsb = self.evaluate(expr.lsb)
        if msb.has_unknown or lsb.has_unknown:
            return LogicValue.unknown(max(base.width, 1))
        return base.slice(msb.to_int(), lsb.to_int())

    def _eval_system_call(self, expr: ast.SystemCall) -> LogicValue:
        name = expr.name
        if name in ("$past", "$rose", "$fell", "$stable", "$changed"):
            if self._sampled_value_hook is None:
                raise EvalError(f"sampled-value function '{name}' outside assertion context")
            return self._sampled_value_hook(expr)
        if name == "$countones":
            operand = self.evaluate(expr.args[0])
            if operand.has_unknown:
                return LogicValue.unknown(32)
            return LogicValue.from_int(operand.to_int().bit_count(), 32)
        if name in ("$onehot", "$onehot0"):
            operand = self.evaluate(expr.args[0])
            if operand.has_unknown:
                return LogicValue.unknown(1)
            ones = operand.to_int().bit_count()
            ok = ones == 1 if name == "$onehot" else ones <= 1
            return LogicValue.from_int(int(ok), 1)
        if name == "$clog2":
            operand = self.evaluate(expr.args[0])
            if operand.has_unknown:
                return LogicValue.unknown(32)
            value = operand.to_int()
            result = 0
            while (1 << result) < value:
                result += 1
            return LogicValue.from_int(result, 32)
        if name in ("$signed", "$unsigned"):
            return self.evaluate(expr.args[0])
        raise EvalError(f"unsupported system function '{name}'")


def evaluate_expression(
    expr: ast.Expression,
    environment: Mapping[str, LogicValue],
    parameters: Optional[Mapping[str, int]] = None,
) -> LogicValue:
    """Convenience wrapper for one-off evaluations."""
    return Evaluator(environment, parameters).evaluate(expr)
