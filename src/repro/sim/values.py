"""4-state logic values for RTL simulation.

A :class:`LogicValue` is a fixed-width bit vector in which every bit is either
a known 0/1 or unknown (``x``).  High-impedance ``z`` is folded into ``x``:
for the designs in this project the distinction never matters, and collapsing
the two keeps the arithmetic simple and fast.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LogicValue:
    """An immutable fixed-width 4-state (collapsed to 3-state) vector.

    Attributes:
        value: the known bits (bits under ``xmask`` are meaningless and kept 0).
        xmask: bitmask of unknown bit positions.
        width: width in bits (>= 1).
    """

    value: int
    xmask: int
    width: int

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        mask = (1 << self.width) - 1
        object.__setattr__(self, "value", self.value & mask & ~self.xmask)
        object.__setattr__(self, "xmask", self.xmask & mask)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_int(cls, value: int, width: int = 32) -> "LogicValue":
        """Build a fully known value from a Python integer (two's-complement wrap)."""
        mask = (1 << width) - 1
        return cls(value=value & mask, xmask=0, width=width)

    @classmethod
    def unknown(cls, width: int = 1) -> "LogicValue":
        """Build an all-``x`` value."""
        mask = (1 << width) - 1
        return cls(value=0, xmask=mask, width=width)

    # ------------------------------------------------------------------ #
    # predicates and conversions
    # ------------------------------------------------------------------ #

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    @property
    def is_fully_known(self) -> bool:
        return self.xmask == 0

    @property
    def has_unknown(self) -> bool:
        return self.xmask != 0

    def to_int(self) -> int:
        """The known value; unknown bits read as 0."""
        return self.value

    def to_signed(self) -> int:
        """Interpret the known bits as a two's-complement signed integer."""
        if self.value & (1 << (self.width - 1)):
            return self.value - (1 << self.width)
        return self.value

    def is_true(self) -> bool:
        """Verilog truthiness: any known 1 bit makes the value true."""
        return self.value != 0

    def is_false(self) -> bool:
        """True when the value is known to be all zeros."""
        return self.value == 0 and self.xmask == 0

    def truth(self) -> "LogicValue":
        """Reduce to a 1-bit truth value (x if the truth cannot be decided)."""
        if self.value != 0:
            return ONE
        if self.xmask != 0:
            return LogicValue.unknown(1)
        return ZERO

    def resized(self, width: int) -> "LogicValue":
        """Zero-extend or truncate to ``width`` bits (x bits preserved where kept)."""
        return LogicValue(value=self.value, xmask=self.xmask, width=width)

    def bit(self, index: int) -> "LogicValue":
        """Extract a single bit as a 1-bit value; out-of-range reads return x."""
        if index < 0 or index >= self.width:
            return LogicValue.unknown(1)
        return LogicValue(
            value=(self.value >> index) & 1, xmask=(self.xmask >> index) & 1, width=1
        )

    def slice(self, msb: int, lsb: int) -> "LogicValue":
        """Extract bits ``[msb:lsb]``; out-of-range bits read as x."""
        if msb < lsb:
            raise ValueError(f"invalid slice [{msb}:{lsb}]")
        width = msb - lsb + 1
        if lsb >= self.width:
            return LogicValue.unknown(width)
        value = self.value >> lsb
        xmask = self.xmask >> lsb
        if msb >= self.width:
            # Bits beyond the declared width are unknown.
            extra = msb - self.width + 1
            xmask |= ((1 << extra) - 1) << (self.width - lsb)
        return LogicValue(value=value, xmask=xmask, width=width)

    def __str__(self) -> str:
        if self.is_fully_known:
            return f"{self.width}'d{self.value}"
        bits = []
        for index in reversed(range(self.width)):
            if (self.xmask >> index) & 1:
                bits.append("x")
            else:
                bits.append(str((self.value >> index) & 1))
        return f"{self.width}'b{''.join(bits)}"

    def __int__(self) -> int:
        return self.to_int()

    def equals(self, other: "LogicValue") -> bool:
        """Exact 4-state equality (used by tests): same width, bits and x positions."""
        return (
            self.width == other.width
            and self.value == other.value
            and self.xmask == other.xmask
        )


#: Convenience constants.
ZERO = LogicValue(value=0, xmask=0, width=1)
ONE = LogicValue(value=1, xmask=0, width=1)
X = LogicValue(value=0, xmask=1, width=1)


def concat(values: list[LogicValue]) -> LogicValue:
    """Concatenate values MSB-first (Verilog ``{a, b, c}`` ordering)."""
    total_width = sum(v.width for v in values)
    result_value = 0
    result_xmask = 0
    for item in values:
        result_value = (result_value << item.width) | item.value
        result_xmask = (result_xmask << item.width) | item.xmask
    return LogicValue(value=result_value, xmask=result_xmask, width=max(total_width, 1))


def replicate(count: int, value: LogicValue) -> LogicValue:
    """Replicate ``value`` ``count`` times (Verilog ``{count{value}}``)."""
    if count < 1:
        raise ValueError("replication count must be >= 1")
    return concat([value] * count)


def merge_bits(original: LogicValue, update: LogicValue, msb: int, lsb: int) -> LogicValue:
    """Write ``update`` into bit positions ``[msb:lsb]`` of ``original``."""
    if msb < lsb:
        raise ValueError(f"invalid write slice [{msb}:{lsb}]")
    slice_width = msb - lsb + 1
    slice_mask = ((1 << slice_width) - 1) << lsb
    resized = update.resized(slice_width)
    new_value = (original.value & ~slice_mask) | ((resized.value << lsb) & slice_mask)
    new_xmask = (original.xmask & ~slice_mask) | ((resized.xmask << lsb) & slice_mask)
    return LogicValue(value=new_value, xmask=new_xmask, width=original.width)
