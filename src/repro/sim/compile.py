"""The compiled simulation backend.

Instead of walking AST nodes for every evaluation (the
:class:`~repro.sim.engine.InterpSimulator` strategy), this backend lowers an
:class:`~repro.hdl.elaborate.ElaboratedDesign` **once** into Python closures:

* every expression becomes a closure ``fn(val, xm) -> (value, xmask, width)``
  operating directly on two flat integer arrays (one slot per signal) -- no
  per-node ``isinstance`` dispatch and no :class:`LogicValue` allocation on
  the hot path;
* every continuous assignment and procedural block becomes a *node* with a
  precomputed read-set and write-set;
* combinational settling is **dependency driven**: a signal write marks only
  the nodes that read that signal dirty, and the settle loop drains the
  dirty set in topologically-levelled order.  Quiet cycles re-run almost
  nothing, where the interpreter re-evaluates every assign and comb block
  on every settle iteration;
* the trace records per-cycle *diffs* (:class:`~repro.sim.trace.DiffTrace`)
  instead of copying the whole environment dict twice per cycle.

The backend is behaviourally identical to the interpreter: the differential
test suite asserts ``equals()``-identical traces cycle by cycle.  Designs
using constructs the compiler does not support raise :class:`CompileError`,
which the :func:`~repro.sim.engine.Simulator` factory turns into a fallback
to the interpreter.
"""

from __future__ import annotations

import operator
from heapq import heapify, heappop, heappush
from typing import Callable, Mapping, Optional

from repro.hdl import ast
from repro.hdl.elaborate import ElaboratedDesign, ProceduralBlock
from repro.sim.engine import SimulationError, SimulatorOptions, detect_clock
from repro.sim.trace import DiffTrace, TraceSample
from repro.sim.values import LogicValue

#: An expression closure: (values, xmasks) -> (value, xmask, width).
ExprFn = Callable[[list, list], tuple]

#: A statement closure: (values, xmasks, blocking, nonblocking) -> None.
StmtFn = Callable[[list, list, dict, dict], None]


class CompileError(Exception):
    """Raised when a design uses a construct the compiled backend rejects."""


def _merge_select_write(
    cur_v: int, cur_x: int, v: int, x: int, msb: int, lsb: int, sm: int
) -> tuple[int, int]:
    """(value, xmask) after writing ``v``/``x`` into bits [msb:lsb] of current.

    Mirrors :func:`repro.sim.values.merge_bits` plus the final resize to the
    signal mask ``sm``; shared by the procedural and continuous lowering so
    the tricky slice arithmetic exists exactly once.
    """
    if msb < lsb:
        raise SimulationError(f"invalid write slice [{msb}:{lsb}]")
    slice_w = msb - lsb + 1
    slice_m = ((1 << slice_w) - 1) << lsb
    rx = x & ((1 << slice_w) - 1)
    rv = v & ((1 << slice_w) - 1) & ~rx
    nv = (cur_v & ~slice_m) | ((rv << lsb) & slice_m)
    nx = ((cur_x & ~slice_m) | ((rx << lsb) & slice_m)) & sm
    return nv & sm & ~nx, nx


def _select_target_parts(
    target: ast.Expression,
) -> tuple[ast.Identifier, ast.Expression, ast.Expression]:
    """Destructure a bit/part-select assignment target into (base, msb, lsb)."""
    if isinstance(target, ast.BitSelect):
        base, msb_expr, lsb_expr = target.base, target.index, target.index
    else:
        base, msb_expr, lsb_expr = target.base, target.msb, target.lsb
    if not isinstance(base, ast.Identifier):
        raise CompileError("nested select targets are not supported")
    return base, msb_expr, lsb_expr


def _fast_logic_value(v: int, x: int, w: int) -> LogicValue:
    """Build a LogicValue from already-normalised fields, skipping validation.

    The compiled backend maintains the class invariants (masked to width,
    known bits cleared under the xmask) on every write, so re-normalising in
    ``__post_init__`` would be pure overhead on the per-cycle path.
    """
    value = LogicValue.__new__(LogicValue)
    object.__setattr__(value, "value", v)
    object.__setattr__(value, "xmask", x)
    object.__setattr__(value, "width", w)
    return value


# --------------------------------------------------------------------------- #
# expression compilation
# --------------------------------------------------------------------------- #


class _ExprCompiler:
    """Lowers expression trees to closures over the flat signal arrays."""

    def __init__(self, design: ElaboratedDesign, slots: dict[str, int]):
        self._design = design
        self._slots = slots
        self._parameters = design.parameters

    def compile(self, expr: ast.Expression) -> ExprFn:
        if isinstance(expr, ast.Number):
            return self._compile_number(expr)
        if isinstance(expr, ast.Identifier):
            return self._compile_identifier(expr)
        if isinstance(expr, ast.Unary):
            return self._compile_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._compile_binary(expr)
        if isinstance(expr, ast.Ternary):
            return self._compile_ternary(expr)
        if isinstance(expr, ast.BitSelect):
            return self._compile_bit_select(expr)
        if isinstance(expr, ast.PartSelect):
            return self._compile_part_select(expr)
        if isinstance(expr, ast.Concat):
            return self._compile_concat(expr)
        if isinstance(expr, ast.Replicate):
            return self._compile_replicate(expr)
        if isinstance(expr, ast.SystemCall):
            return self._compile_system_call(expr)
        raise CompileError(f"cannot compile expression of type {type(expr).__name__}")

    # -- leaves --------------------------------------------------------- #

    def _compile_number(self, expr: ast.Number) -> ExprFn:
        w = expr.width if expr.width is not None else 32
        m = (1 << w) - 1
        x = expr.xz_mask & m
        v = expr.value & m & ~x
        return lambda val, xm: (v, x, w)

    def _compile_identifier(self, expr: ast.Identifier) -> ExprFn:
        slot = self._slots.get(expr.name)
        if slot is not None:
            w = self._design.signals[expr.name].width
            return lambda val, xm, i=slot, w=w: (val[i], xm[i], w)
        if expr.name in self._parameters:
            v = self._parameters[expr.name] & 0xFFFFFFFF
            return lambda val, xm: (v, 0, 32)
        raise CompileError(f"unknown signal '{expr.name}'")

    # -- operators ------------------------------------------------------ #

    def _compile_unary(self, expr: ast.Unary) -> ExprFn:
        f = self.compile(expr.operand)
        op = expr.op
        if op == "+":
            return f
        if op == "-":

            def neg(val, xm):
                v, x, w = f(val, xm)
                m = (1 << w) - 1
                if x:
                    return (0, m, w)
                return ((-v) & m, 0, w)

            return neg
        if op == "~":

            def inv(val, xm):
                v, x, w = f(val, xm)
                m = (1 << w) - 1
                if x:
                    return (0, m, w)
                return (~v & m, 0, w)

            return inv
        if op == "!":

            def lnot(val, xm):
                v, x, w = f(val, xm)
                if v:
                    return (0, 0, 1)
                if x:
                    return (0, 1, 1)
                return (1, 0, 1)

            return lnot
        if op == "&":

            def red_and(val, xm):
                v, x, w = f(val, xm)
                if x:
                    return (0, 1, 1)
                return (int(v == (1 << w) - 1), 0, 1)

            return red_and
        if op == "|":

            def red_or(val, xm):
                v, x, w = f(val, xm)
                if x:
                    return (0, 1, 1)
                return (int(v != 0), 0, 1)

            return red_or
        if op == "^":

            def red_xor(val, xm):
                v, x, w = f(val, xm)
                if x:
                    return (0, 1, 1)
                return (v.bit_count() & 1, 0, 1)

            return red_xor
        raise CompileError(f"unsupported unary operator '{op}'")

    def _compile_binary(self, expr: ast.Binary) -> ExprFn:
        lf = self.compile(expr.left)
        rf = self.compile(expr.right)
        op = expr.op
        if op == "&&":

            def land(val, xm):
                v1, x1, _ = lf(val, xm)
                v2, x2, _ = rf(val, xm)
                if (v1 == 0 and x1 == 0) or (v2 == 0 and x2 == 0):
                    return (0, 0, 1)
                if (v1 == 0 and x1) or (v2 == 0 and x2):
                    return (0, 1, 1)
                return (1, 0, 1)

            return land
        if op == "||":

            def lor(val, xm):
                v1, x1, _ = lf(val, xm)
                v2, x2, _ = rf(val, xm)
                if v1 != 0 or v2 != 0:
                    return (1, 0, 1)
                if x1 or x2:
                    return (0, 1, 1)
                return (0, 0, 1)

            return lor
        if op in ("==", "!="):
            want = op == "=="

            def eq(val, xm):
                v1, x1, _ = lf(val, xm)
                v2, x2, _ = rf(val, xm)
                if x1 or x2:
                    return (0, 1, 1)
                return (int((v1 == v2) == want), 0, 1)

            return eq
        if op in ("===", "!=="):
            want = op == "==="

            def ceq(val, xm):
                v1, x1, _ = lf(val, xm)
                v2, x2, _ = rf(val, xm)
                return (int((v1 == v2 and x1 == x2) == want), 0, 1)

            return ceq
        if op in ("<", ">", "<=", ">="):
            cmp = {"<": operator.lt, ">": operator.gt, "<=": operator.le, ">=": operator.ge}[op]

            def rel(val, xm):
                v1, x1, _ = lf(val, xm)
                v2, x2, _ = rf(val, xm)
                if x1 or x2:
                    return (0, 1, 1)
                return (int(cmp(v1, v2)), 0, 1)

            return rel
        if op in ("<<", "<<<"):

            def shl(val, xm):
                v1, x1, w1 = lf(val, xm)
                v2, x2, _ = rf(val, xm)
                if x1 or x2:
                    return (0, (1 << w1) - 1, w1)
                return ((v1 << min(v2, 1024)) & ((1 << w1) - 1), 0, w1)

            return shl
        if op in (">>", ">>>"):

            def shr(val, xm):
                v1, x1, w1 = lf(val, xm)
                v2, x2, _ = rf(val, xm)
                if x1 or x2:
                    return (0, (1 << w1) - 1, w1)
                return (v1 >> min(v2, 1024), 0, w1)

            return shr
        arith = self._ARITH.get(op)
        if arith is None:
            raise CompileError(f"unsupported binary operator '{op}'")

        def binop(val, xm):
            v1, x1, w1 = lf(val, xm)
            v2, x2, w2 = rf(val, xm)
            w = w1 if w1 >= w2 else w2
            m = (1 << w) - 1
            if x1 or x2:
                return (0, m, w)
            r = arith(v1, v2)
            if r is None:  # division/modulo by zero
                return (0, m, w)
            return (r & m, 0, w)

        return binop

    _ARITH = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a // b if b else None,
        "%": lambda a, b: a % b if b else None,
        "**": lambda a, b: a ** min(b, 64),
        "&": lambda a, b: a & b,
        "|": lambda a, b: a | b,
        "^": lambda a, b: a ^ b,
        "~^": lambda a, b: ~(a ^ b),
        "^~": lambda a, b: ~(a ^ b),
    }

    def _compile_ternary(self, expr: ast.Ternary) -> ExprFn:
        cf = self.compile(expr.condition)
        tf = self.compile(expr.if_true)
        ff = self.compile(expr.if_false)

        def tern(val, xm):
            cv, cx, _ = cf(val, xm)
            if cv:
                return tf(val, xm)
            if not cx:
                return ff(val, xm)
            tv, tx, tw = tf(val, xm)
            fv, fx, fw = ff(val, xm)
            w = tw if tw >= fw else fw
            if tx == 0 and fx == 0 and tv == fv:
                return (tv, 0, w)
            return (0, (1 << w) - 1, w)

        return tern

    def _compile_bit_select(self, expr: ast.BitSelect) -> ExprFn:
        bf = self.compile(expr.base)
        idf = self.compile(expr.index)

        def bitsel(val, xm):
            bv, bx, bw = bf(val, xm)
            iv, ix, _ = idf(val, xm)
            if ix or iv >= bw:
                return (0, 1, 1)
            return ((bv >> iv) & 1, (bx >> iv) & 1, 1)

        return bitsel

    def _compile_part_select(self, expr: ast.PartSelect) -> ExprFn:
        bf = self.compile(expr.base)
        mf = self.compile(expr.msb)
        lf = self.compile(expr.lsb)

        def partsel(val, xm):
            bv, bx, bw = bf(val, xm)
            mv, mx, _ = mf(val, xm)
            lv, lx, _ = lf(val, xm)
            if mx or lx:
                return (0, (1 << bw) - 1, bw)
            if mv < lv:
                raise SimulationError(f"invalid slice [{mv}:{lv}]")
            w = mv - lv + 1
            m = (1 << w) - 1
            if lv >= bw:
                return (0, m, w)
            v = bv >> lv
            x = bx >> lv
            if mv >= bw:
                extra = mv - bw + 1
                x |= ((1 << extra) - 1) << (bw - lv)
            x &= m
            return (v & m & ~x, x, w)

        return partsel

    def _compile_concat(self, expr: ast.Concat) -> ExprFn:
        fns = [self.compile(part) for part in expr.parts]

        def cat(val, xm):
            v = 0
            x = 0
            tw = 0
            for f in fns:
                pv, px, pw = f(val, xm)
                v = (v << pw) | pv
                x = (x << pw) | px
                tw += pw
            return (v, x, max(tw, 1))

        return cat

    def _compile_replicate(self, expr: ast.Replicate) -> ExprFn:
        cf = self.compile(expr.count)
        vf = self.compile(expr.value)

        def rep(val, xm):
            cv, cx, _ = cf(val, xm)
            if cx:
                raise SimulationError("replication count is unknown")
            if cv < 1:
                raise SimulationError("replication count must be >= 1")
            pv, px, pw = vf(val, xm)
            v = 0
            x = 0
            for _ in range(cv):
                v = (v << pw) | pv
                x = (x << pw) | px
            return (v, x, max(pw * cv, 1))

        return rep

    def _compile_system_call(self, expr: ast.SystemCall) -> ExprFn:
        name = expr.name
        if name in ("$signed", "$unsigned"):
            return self.compile(expr.args[0])
        if not expr.args:
            raise CompileError(f"system function '{name}' without arguments")
        f = self.compile(expr.args[0])
        if name == "$countones":

            def countones(val, xm):
                v, x, _ = f(val, xm)
                if x:
                    return (0, 0xFFFFFFFF, 32)
                return (v.bit_count(), 0, 32)

            return countones
        if name in ("$onehot", "$onehot0"):
            exact = name == "$onehot"

            def onehot(val, xm):
                v, x, _ = f(val, xm)
                if x:
                    return (0, 1, 1)
                ones = v.bit_count()
                return (int(ones == 1 if exact else ones <= 1), 0, 1)

            return onehot
        if name == "$clog2":

            def clog2(val, xm):
                v, x, _ = f(val, xm)
                if x:
                    return (0, 0xFFFFFFFF, 32)
                r = 0
                while (1 << r) < v:
                    r += 1
                return (r, 0, 32)

            return clog2
        # Sampled-value functions ($past, $rose, ...) only appear inside
        # assertions, which the simulator never executes; the SVA checker
        # backend subclasses this compiler and lowers them to per-cycle
        # series (repro.sva.compile) before falling through to here.
        raise CompileError(f"unsupported system function '{name}'")


#: Public name of the expression lowering, the extension point the compiled
#: SVA checker (:mod:`repro.sva.compile`) builds on.
ExprCompiler = _ExprCompiler


# --------------------------------------------------------------------------- #
# statement compilation
# --------------------------------------------------------------------------- #


class _StmtCompiler:
    """Lowers procedural statements to closures over a working environment.

    The working environment is a pair of mutable arrays (``lv``, ``lx``)
    that starts as a copy of the global state.  Blocking assignments update
    it immediately (and are recorded in ``blocking``); non-blocking
    assignments are recorded in ``nba`` for the caller to commit, matching
    :class:`~repro.sim.executor.StatementExecutor` semantics.
    """

    def __init__(self, design: ElaboratedDesign, slots: dict[str, int], expr: _ExprCompiler):
        self._design = design
        self._slots = slots
        self._expr = expr

    def compile_body(self, statement: ast.Statement) -> list[StmtFn]:
        fns: list[StmtFn] = []
        self._compile_into(statement, fns)
        return fns

    def _compile_into(self, statement: ast.Statement, out: list[StmtFn]) -> None:
        if isinstance(statement, ast.Block):
            for sub in statement.statements:
                self._compile_into(sub, out)
        elif isinstance(statement, ast.Assign):
            out.append(self._compile_assign(statement))
        elif isinstance(statement, ast.If):
            out.append(self._compile_if(statement))
        elif isinstance(statement, ast.Case):
            out.append(self._compile_case(statement))
        elif isinstance(statement, (ast.SystemTaskCall, ast.NullStatement)):
            return
        else:
            raise CompileError(f"cannot compile statement {type(statement).__name__}")

    def _signal_slot(self, name: str) -> tuple[int, int]:
        """(slot, mask) of a signal; CompileError when undeclared."""
        slot = self._slots.get(name)
        if slot is None:
            raise CompileError(f"assignment to undeclared signal '{name}'")
        width = self._design.signals[name].width
        return slot, (1 << width) - 1

    def _compile_assign(self, statement: ast.Assign) -> StmtFn:
        vf = self._expr.compile(statement.value)
        blocking = statement.blocking
        target = statement.target
        if isinstance(target, ast.Identifier):
            slot, sm = self._signal_slot(target.name)

            def assign_id(lv, lx, blk, nba, vf=vf, slot=slot, sm=sm):
                v, x, _ = vf(lv, lx)
                nx = x & sm
                nv = v & sm & ~nx
                if blocking:
                    lv[slot] = nv
                    lx[slot] = nx
                    blk[slot] = (nv, nx)
                else:
                    nba[slot] = (nv, nx)

            return assign_id
        if isinstance(target, (ast.BitSelect, ast.PartSelect)):
            base, msb_expr, lsb_expr = _select_target_parts(target)
            slot, sm = self._signal_slot(base.name)
            mf = self._expr.compile(msb_expr)
            lf = self._expr.compile(lsb_expr)

            def assign_select(lv, lx, blk, nba):
                v, x, _ = vf(lv, lx)
                mv, mx, _ = mf(lv, lx)
                sv, sx, _ = lf(lv, lx)
                if mx or sx:
                    nv, nx = 0, sm
                else:
                    nv, nx = _merge_select_write(lv[slot], lx[slot], v, x, mv, sv, sm)
                if blocking:
                    lv[slot] = nv
                    lx[slot] = nx
                    blk[slot] = (nv, nx)
                else:
                    nba[slot] = (nv, nx)

            return assign_select
        if isinstance(target, ast.Concat):
            # (slot, width, shift) triples, MSB-first like the executor applies them.
            pieces: list[tuple[int, int, int]] = []
            offset = 0
            for part in reversed(target.parts):
                if not isinstance(part, ast.Identifier):
                    raise CompileError("concatenation targets must be simple identifiers")
                slot, sm = self._signal_slot(part.name)
                width = self._design.signals[part.name].width
                pieces.append((slot, width, offset))
                offset += width
            pieces.reverse()

            def assign_concat(lv, lx, blk, nba):
                v, x, _ = vf(lv, lx)
                for slot, width, shift in pieces:
                    m = (1 << width) - 1
                    nx = (x >> shift) & m
                    nv = (v >> shift) & m & ~nx
                    if blocking:
                        lv[slot] = nv
                        lx[slot] = nx
                        blk[slot] = (nv, nx)
                    else:
                        nba[slot] = (nv, nx)

            return assign_concat
        raise CompileError(f"unsupported assignment target {type(target).__name__}")

    def _compile_if(self, statement: ast.If) -> StmtFn:
        cf = self._expr.compile(statement.condition)
        then_fns = self.compile_body(statement.then_branch)
        else_fns = (
            self.compile_body(statement.else_branch)
            if statement.else_branch is not None
            else None
        )

        def if_stmt(lv, lx, blk, nba):
            cv, cx, _ = cf(lv, lx)
            if cv:
                for fn in then_fns:
                    fn(lv, lx, blk, nba)
            elif cx == 0 and else_fns is not None:
                for fn in else_fns:
                    fn(lv, lx, blk, nba)
            # Unknown condition: conservatively take neither branch.

        return if_stmt

    def _compile_case(self, statement: ast.Case) -> StmtFn:
        sf = self._expr.compile(statement.subject)
        variant = statement.variant
        items: list[tuple[list[ExprFn], list[StmtFn]]] = []
        default_fns: Optional[list[StmtFn]] = None
        for item in statement.items:
            if not item.labels:
                default_fns = self.compile_body(item.body)
                continue
            label_fns = [self._expr.compile(label) for label in item.labels]
            items.append((label_fns, self.compile_body(item.body)))

        def case_stmt(lv, lx, blk, nba):
            sv, sx, sw = sf(lv, lx)
            for label_fns, body_fns in items:
                for label_fn in label_fns:
                    labv, labx, labw = label_fn(lv, lx)
                    w = sw if sw >= labw else labw
                    if variant == "case":
                        if sx or labx:
                            hit = sx == labx and sv == labv
                        else:
                            hit = sv == labv
                    else:
                        care = ~labx & ((1 << w) - 1)
                        if variant == "casex":
                            care &= ~sx
                        hit = (sv & care) == (labv & care)
                    if hit:
                        for fn in body_fns:
                            fn(lv, lx, blk, nba)
                        return
            if default_fns is not None:
                for fn in default_fns:
                    fn(lv, lx, blk, nba)

        return case_stmt


# --------------------------------------------------------------------------- #
# node construction and levelization
# --------------------------------------------------------------------------- #


class _CompiledBlock:
    """A procedural block lowered to statement closures plus its trigger edges."""

    __slots__ = ("stmts", "edges", "line", "pure_nba", "reads")

    def __init__(self, stmts: list[StmtFn], edges: list[tuple[str, str]], line: int,
                 pure_nba: bool, reads: frozenset):
        self.stmts = stmts
        self.edges = edges  # [(signal, "posedge"|"negedge")]
        self.line = line
        #: True when the body contains no blocking assignment: the block
        #: never mutates its working environment, so it can safely read the
        #: live arrays instead of a pre-edge copy.
        self.pure_nba = pure_nba
        #: Signal names the body reads (conditions, RHS, select indices).
        self.reads = reads


def _assign_reads(assign: ast.ContinuousAssign) -> set[str]:
    reads = set(assign.value.identifiers())
    if isinstance(assign.target, (ast.BitSelect, ast.PartSelect)):
        # A select write merges into the current value, so it also *reads*
        # the target signal (and its index expressions).
        reads |= assign.target.identifiers()
    return reads


def _block_reads(body: ast.Statement) -> set[str]:
    reads: set[str] = set()
    for node in body.walk():
        if isinstance(node, ast.Assign):
            reads |= node.value.identifiers()
            if isinstance(node.target, (ast.BitSelect, ast.PartSelect)):
                reads |= node.target.identifiers()
        elif isinstance(node, ast.If):
            reads |= node.condition.identifiers()
        elif isinstance(node, ast.Case):
            reads |= node.subject.identifiers()
            for item in node.items:
                for label in item.labels:
                    reads |= label.identifiers()
    return reads


def _toposort(order: list[int], edges: dict[int, set[int]]) -> list[int]:
    """Kahn's algorithm; members of dependency cycles keep their input order."""
    incoming: dict[int, int] = {n: 0 for n in order}
    for src, dsts in edges.items():
        for dst in dsts:
            if dst in incoming:
                incoming[dst] += 1
    ready = [n for n in order if incoming[n] == 0]
    heapify(ready)
    result: list[int] = []
    while ready:
        n = heappop(ready)
        result.append(n)
        for dst in edges.get(n, ()):
            incoming[dst] -= 1
            if incoming[dst] == 0:
                heappush(ready, dst)
    if len(result) < len(order):  # combinational cycle: append in input order
        placed = set(result)
        result.extend(n for n in order if n not in placed)
    return result


def _relower_incompatibility(
    base: "CompiledDesign", design: ElaboratedDesign
) -> Optional[str]:
    """Why ``base``'s closures cannot be reused for ``design`` (None: they can).

    Reused closures capture slot indices, widths/masks and parameter values
    as constants, so incremental relowering requires the whole signal table
    and parameter environment to be identical; anything else falls back to a
    full recompile (correct, just slower).
    """
    names = sorted(design.signals)
    if base.names != names:
        return "signal table changed"
    if base.widths != [design.signals[n].width for n in names]:
        return "signal widths changed"
    if base.is_input != [design.signals[n].is_input for n in names]:
        return "port directions changed"
    if base.design.parameters != design.parameters:
        return "parameters changed"
    return None


class CompiledDesign:
    """One design lowered to closures, ready to instantiate simulators from.

    With a ``base`` (a previously compiled, signal-table-identical design --
    in practice the unpatched design a candidate repair mutates), lowering
    is *incremental*: every node whose content key
    (:mod:`repro.artifacts.canon`) is unchanged reuses the base's closures
    verbatim, and only the dirty cone -- the nodes the patch actually
    touched -- is relowered.  The dependency levels and settle schedule are
    recomputed from the new node graph either way, so an incremental lower
    is byte-identical to a full recompile by construction (and pinned so by
    ``tests/test_artifacts.py``).
    """

    def __init__(self, design: ElaboratedDesign, base: Optional["CompiledDesign"] = None):
        # Imported here (not at module top) to keep this module importable
        # before the repro.artifacts package exists in partial checkouts;
        # canon depends only on repro.hdl, so there is no cycle either way.
        from repro.artifacts.canon import (
            assign_node_key,
            block_node_key,
            initial_node_key,
        )

        self.design = design
        self.names: list[str] = sorted(design.signals)
        self.slots: dict[str, int] = {name: i for i, name in enumerate(self.names)}
        self.widths: list[int] = [design.signals[n].width for n in self.names]
        self.masks: list[int] = [(1 << w) - 1 for w in self.widths]
        self.is_input: list[bool] = [design.signals[n].is_input for n in self.names]

        #: Why an offered base was rejected (None: no base, or it was used).
        self.relower_fallback_reason: Optional[str] = None
        self.relower_nodes_reused = 0
        self.relower_nodes_total = 0
        if base is not None:
            self.relower_fallback_reason = _relower_incompatibility(base, design)
            if self.relower_fallback_reason is not None:
                base = None

        # Per-node reuse indexes: content key -> lowered state.  They make
        # this instance usable as the ``base`` of the next incremental
        # lower, whether it was itself lowered fully or incrementally.
        self._assign_index: dict[str, Callable] = {}
        self._comb_index: dict[str, Callable] = {}
        self._seq_index: dict[str, _CompiledBlock] = {}
        self._init_index: dict[str, list[StmtFn]] = {}
        base_assigns = base._assign_index if base is not None else {}
        base_combs = base._comb_index if base is not None else {}
        base_seqs = base._seq_index if base is not None else {}
        base_inits = base._init_index if base is not None else {}

        expr = _ExprCompiler(design, self.slots)
        stmt = _StmtCompiler(design, self.slots, expr)

        # -- settle nodes: continuous assigns + comb blocks ------------- #
        raw_nodes: list[tuple[Callable, set[str], set[str]]] = []
        for assign in design.continuous_assigns:
            key = assign_node_key(assign)
            runner = base_assigns.get(key)
            if runner is None:
                runner = self._make_assign_runner(assign, expr)
            else:
                self.relower_nodes_reused += 1
            self._assign_index[key] = runner
            writes = set(ast._target_names(assign.target))
            raw_nodes.append((runner, _assign_reads(assign), writes))
        for block in design.comb_blocks:
            key = block_node_key(block)
            runner = base_combs.get(key)
            if runner is None:
                runner = self._make_comb_runner(stmt.compile_body(block.body))
            else:
                self.relower_nodes_reused += 1
            self._comb_index[key] = runner
            writes = set(ast.assignment_targets(block.body))
            raw_nodes.append((runner, _block_reads(block.body), writes))

        # Topologically level the nodes: an edge src -> dst when src writes
        # a signal dst reads.  The settle heap pops lower ids first, so
        # levelled ids give single-pass settling for acyclic logic.
        writers: dict[str, list[int]] = {}
        for nid, (_, _, writes) in enumerate(raw_nodes):
            for name in writes:
                writers.setdefault(name, []).append(nid)
        # A signal with several writers needs every combinational writer to
        # observe the others' writes: contradictory continuous drivers then
        # keep re-triggering each other until the settle budget is exhausted
        # (the interpreter's "did not settle"), and a clocked write to a
        # comb-driven signal re-runs the combinational driver, which wins the
        # settle exactly like the interpreter's fixed-point loop.
        seq_written: set[str] = set()
        for block in design.seq_blocks:
            seq_written.update(ast.assignment_targets(block.body))
        for name, writer_ids in writers.items():
            if len(writer_ids) > 1 or name in seq_written:
                for nid in writer_ids:
                    raw_nodes[nid][1].add(name)
        dep_edges: dict[int, set[int]] = {}
        for nid, (_, reads, _) in enumerate(raw_nodes):
            for name in reads:
                for src in writers.get(name, ()):
                    if src != nid:
                        dep_edges.setdefault(src, set()).add(nid)
        level_order = _toposort(list(range(len(raw_nodes))), dep_edges)

        self.nodes: list[Callable] = [raw_nodes[nid][0] for nid in level_order]
        self.readers: list[list[int]] = [[] for _ in self.names]
        self.writer_nodes: list[list[int]] = [[] for _ in self.names]
        for new_id, old_id in enumerate(level_order):
            for name in raw_nodes[old_id][1]:
                slot = self.slots.get(name)
                if slot is not None:
                    self.readers[slot].append(new_id)
            for name in raw_nodes[old_id][2]:
                slot = self.slots.get(name)
                if slot is not None:
                    self.writer_nodes[slot].append(new_id)

        # -- clocked and initial blocks --------------------------------- #
        self.seq_blocks: list[_CompiledBlock] = []
        for block in design.seq_blocks:
            key = block_node_key(block)
            compiled = base_seqs.get(key)
            if compiled is None:
                compiled = self._compile_block(block, stmt)
            else:
                self.relower_nodes_reused += 1
            self._seq_index[key] = compiled
            self.seq_blocks.append(compiled)
        self.initial_bodies: list[list[StmtFn]] = []
        for initial in design.initial_blocks:
            key = initial_node_key(initial)
            body = base_inits.get(key)
            if body is None:
                body = stmt.compile_body(initial.body)
            else:
                self.relower_nodes_reused += 1
            self._init_index[key] = body
            self.initial_bodies.append(body)

        self.relower_nodes_total = (
            len(design.continuous_assigns)
            + len(design.comb_blocks)
            + len(design.seq_blocks)
            + len(design.initial_blocks)
        )
        if base is not None or self.relower_fallback_reason is not None:
            from repro.obs.metrics import get_registry

            registry = get_registry()
            registry.inc("relower.nodes_reused", self.relower_nodes_reused)
            registry.inc(
                "relower.nodes_lowered",
                self.relower_nodes_total - self.relower_nodes_reused,
            )

    # -- node runners ---------------------------------------------------- #

    def _make_assign_runner(self, assign: ast.ContinuousAssign, expr: _ExprCompiler) -> Callable:
        vf = expr.compile(assign.value)
        target = assign.target
        if isinstance(target, ast.Identifier):
            slot = self.slots.get(target.name)
            if slot is None:
                raise CompileError(f"assignment to undeclared signal '{target.name}'")
            sm = self.masks[slot]

            def run_id(sim, vf=vf, slot=slot, sm=sm):
                v, x, _ = vf(sim._val, sim._xm)
                nx = x & sm
                sim._write(slot, v & sm & ~nx, nx)

            return run_id
        if isinstance(target, (ast.BitSelect, ast.PartSelect)):
            base, msb_expr, lsb_expr = _select_target_parts(target)
            slot = self.slots.get(base.name)
            if slot is None:
                raise CompileError(f"assignment to undeclared signal '{base.name}'")
            sm = self.masks[slot]
            mf = expr.compile(msb_expr)
            lf = expr.compile(lsb_expr)

            def run_select(sim):
                val, xmv = sim._val, sim._xm
                v, x, _ = vf(val, xmv)
                mv, mx, _ = mf(val, xmv)
                sv, sx, _ = lf(val, xmv)
                if mx or sx:
                    sim._write(slot, 0, sm)
                    return
                nv, nx = _merge_select_write(val[slot], xmv[slot], v, x, mv, sv, sm)
                sim._write(slot, nv, nx)

            return run_select
        if isinstance(target, ast.Concat):
            pieces: list[tuple[int, int, int]] = []
            offset = 0
            for part in reversed(target.parts):
                if not isinstance(part, ast.Identifier):
                    raise CompileError("concatenation targets must be simple identifiers")
                slot = self.slots.get(part.name)
                if slot is None:
                    raise CompileError(f"assignment to undeclared signal '{part.name}'")
                width = self.widths[slot]
                pieces.append((slot, width, offset))
                offset += width
            pieces.reverse()

            def run_concat(sim):
                v, x, _ = vf(sim._val, sim._xm)
                for slot, width, shift in pieces:
                    m = (1 << width) - 1
                    nx = (x >> shift) & m
                    sim._write(slot, (v >> shift) & m & ~nx, nx)

            return run_concat
        raise CompileError(f"unsupported assignment target {type(target).__name__}")

    def _make_comb_runner(self, stmts: list[StmtFn]) -> Callable:
        def run_comb(sim):
            lv = sim._val.copy()
            lx = sim._xm.copy()
            blocking: dict[int, tuple[int, int]] = {}
            nba: dict[int, tuple[int, int]] = {}
            for fn in stmts:
                fn(lv, lx, blocking, nba)
            blocking.update(nba)
            write = sim._write
            for slot, (v, x) in blocking.items():
                write(slot, v, x)

        return run_comb

    def _compile_block(self, block: ProceduralBlock, stmt: _StmtCompiler) -> _CompiledBlock:
        stmts = stmt.compile_body(block.body)
        edges = [(item.signal, item.edge) for item in block.clock_edges()]
        pure_nba = not any(
            isinstance(node, ast.Assign) and node.blocking for node in block.body.walk()
        )
        return _CompiledBlock(
            stmts, edges, block.line, pure_nba, frozenset(_block_reads(block.body))
        )


def compile_design(
    design: ElaboratedDesign, base: Optional[CompiledDesign] = None
) -> CompiledDesign:
    """Lower ``design`` for the compiled backend (raises :class:`CompileError`).

    With ``base`` -- a previously compiled design sharing the same signal
    table and parameters, typically the unpatched design a candidate repair
    mutates -- only the nodes the patch touched are relowered; everything
    else reuses the base's closures (see :class:`CompiledDesign`).
    """
    return CompiledDesign(design, base=base)


# --------------------------------------------------------------------------- #
# the compiled simulator
# --------------------------------------------------------------------------- #


class CompiledSimulator:
    """Drop-in replacement for :class:`~repro.sim.engine.InterpSimulator`.

    Same public API and -- by construction plus differential testing -- the
    same cycle-level behaviour, built on the lowered design: flat integer
    state, dirty-set settling and a diff-based trace.
    """

    def __init__(
        self,
        design: ElaboratedDesign,
        options: Optional[SimulatorOptions] = None,
        compiled: Optional[CompiledDesign] = None,
    ):
        self._design = design
        self._options = options or SimulatorOptions()
        self._compiled = compiled if compiled is not None else compile_design(design)
        self._clock = self._options.clock or detect_clock(design)

        c = self._compiled
        self._names = list(c.names)
        self._slots = dict(c.slots)
        self._sig_width = list(c.widths)
        self._sig_mask = list(c.masks)
        self._readers: list[list[int]] = [list(r) for r in c.readers]
        self._writer_nodes: list[list[int]] = [list(w) for w in c.writer_nodes]
        self._nodes = c.nodes

        # The clock may be virtual (purely combinational designs): give it a
        # synthetic slot so the trace and value() behave like the engine's.
        if self._clock not in self._slots:
            self._slots[self._clock] = len(self._names)
            self._names.append(self._clock)
            self._sig_width.append(1)
            self._sig_mask.append(1)
            self._readers.append([])
            self._writer_nodes.append([])
        self._clock_slot = self._slots[self._clock]
        if self._sig_width[self._clock_slot] != 1:
            raise CompileError(f"clock '{self._clock}' is not a 1-bit signal")

        # Clock-edge trigger lists mirror InterpSimulator._fire_clock_edge /
        # _fire_async_edges: posedge/negedge of the active clock fire on
        # step(); every other edge is an asynchronous trigger.
        self._posedge_blocks: list[_CompiledBlock] = []
        self._negedge_blocks: list[_CompiledBlock] = []
        self._async_slots: list[int] = []
        async_index: dict[int, int] = {}
        self._async_triggers: list[tuple[_CompiledBlock, list[tuple[int, str]]]] = []
        for block in c.seq_blocks:
            triggers: list[tuple[int, str]] = []
            for signal, edge in block.edges:
                if signal == self._clock:
                    if edge == "posedge":
                        self._posedge_blocks.append(block)
                    else:
                        self._negedge_blocks.append(block)
                    continue
                slot = self._slots.get(signal)
                if slot is None:
                    continue
                if slot not in async_index:
                    async_index[slot] = len(self._async_slots)
                    self._async_slots.append(slot)
                triggers.append((async_index[slot], edge))
            if triggers:
                self._async_triggers.append((block, triggers))

        # -- mutable state ---------------------------------------------- #
        n = len(self._names)
        self._val: list[int] = [0] * n
        self._xm: list[int] = [0] * n
        self._dirty: list[bool] = [False] * len(self._nodes)
        self._heap: list[int] = []
        self._budget = self._options.max_settle_iterations * max(1, len(self._nodes))
        self._rec_changed: set[int] = set()
        self._input_lookup: dict[str, tuple[int, int]] = {}
        self._prev_async_v: list[int] = [0] * len(self._async_slots)
        self._prev_async_x: list[int] = [0] * len(self._async_slots)
        self._posedge_pure = all(block.pure_nba for block in self._posedge_blocks)
        self._negedge_pure = all(block.pure_nba for block in self._negedge_blocks)
        # The 0->1->0 clock pulse is unobservable (and therefore skippable)
        # when no combinational node and no clocked block reads the clock
        # signal itself; the per-cycle check on the current value keeps a
        # stimulus-driven clock exactly engine-identical.
        self._clock_pulse_observable = bool(self._readers[self._clock_slot]) or any(
            self._clock in block.reads for block in c.seq_blocks
        )
        self._cycle = 0

        self._initialise_state()
        self._shadow_v: list[int] = self._val.copy()
        self._shadow_x: list[int] = self._xm.copy()
        self._rec_changed.clear()
        base = {
            self._names[i]: LogicValue(
                value=self._val[i], xmask=self._xm[i], width=self._sig_width[i]
            )
            for i in range(n)
        }
        self._trace = DiffTrace(signals=sorted(design.signals), base=base)
        if self._options.record_columns:
            self._trace.enable_column_recording()

    # ------------------------------------------------------------------ #
    # public API (mirrors InterpSimulator)
    # ------------------------------------------------------------------ #

    @property
    def design(self) -> ElaboratedDesign:
        return self._design

    @property
    def clock(self) -> str:
        return self._clock

    @property
    def trace(self) -> DiffTrace:
        return self._trace

    @property
    def cycle(self) -> int:
        return self._cycle

    def value(self, name: str) -> LogicValue:
        """Current (post-edge, settled) value of a signal."""
        slot = self._slots.get(name)
        if slot is None:
            raise SimulationError(f"unknown signal '{name}'")
        return LogicValue(
            value=self._val[slot], xmask=self._xm[slot], width=self._sig_width[slot]
        )

    def peek(self, name: str) -> Optional[int]:
        """Current value as an int, or ``None`` when unknown."""
        slot = self._slots.get(name)
        if slot is None:
            raise SimulationError(f"unknown signal '{name}'")
        return None if self._xm[slot] else self._val[slot]

    def step(self, inputs: Optional[Mapping[str, int]] = None) -> TraceSample:
        """Simulate one full clock cycle with the given input values."""
        self._step(inputs or {})
        return self._trace[self._cycle - 1]

    def run(self, stimulus: list) -> DiffTrace:
        """Run one step per entry of ``stimulus`` and return the (diff) trace.

        Unlike :meth:`step` this never materialises trace samples, so a run
        whose trace is only partially inspected stays cheap.
        """
        step = self._step
        for inputs in stimulus:
            step(inputs)
        return self._trace

    # ------------------------------------------------------------------ #
    # initialisation
    # ------------------------------------------------------------------ #

    def _initialise_state(self) -> None:
        x_init = self._options.x_initial_state
        design_signals = self._design.signals
        for i, name in enumerate(self._names):
            signal = design_signals.get(name)
            if x_init and signal is not None and not signal.is_input:
                self._val[i] = 0
                self._xm[i] = self._sig_mask[i]
        for stmts in self._compiled.initial_bodies:
            nba: dict[int, tuple[int, int]] = {}
            for fn in stmts:
                fn(self._val, self._xm, {}, nba)
            for slot, (v, x) in nba.items():
                self._val[slot] = v
                self._xm[slot] = x
        # Everything is potentially stale: settle the whole design once.
        self._heap = list(range(len(self._nodes)))
        for nid in self._heap:
            self._dirty[nid] = True
        heapify(self._heap)
        self._settle()

    # ------------------------------------------------------------------ #
    # simulation phases
    # ------------------------------------------------------------------ #

    def _write(self, slot: int, v: int, x: int) -> None:
        if self._val[slot] == v and self._xm[slot] == x:
            return
        self._val[slot] = v
        self._xm[slot] = x
        self._rec_changed.add(slot)
        dirty = self._dirty
        heap = self._heap
        for nid in self._readers[slot]:
            if not dirty[nid]:
                dirty[nid] = True
                heappush(heap, nid)

    def _settle(self) -> None:
        heap = self._heap
        dirty = self._dirty
        nodes = self._nodes
        budget = self._budget
        execs = 0
        while heap:
            nid = heappop(heap)
            if not dirty[nid]:
                continue
            dirty[nid] = False
            execs += 1
            if execs > budget:
                raise SimulationError(
                    "combinational logic did not settle (possible combinational loop)"
                )
            nodes[nid](self)

    def _apply_inputs(self, inputs: Mapping[str, int]) -> None:
        # Stimulus vectors drive the same signals every cycle: the
        # name -> (slot, mask) resolution is cached across cycles.
        lookup = self._input_lookup
        val = self._val
        xm = self._xm
        rec_changed = self._rec_changed
        dirty = self._dirty
        heap = self._heap
        readers = self._readers
        for name, value in inputs.items():
            entry = lookup.get(name)
            if entry is None:
                if name not in self._design.signals:
                    raise SimulationError(f"unknown input signal '{name}'")
                slot = self._slots[name]
                entry = (slot, self._sig_mask[slot])
                lookup[name] = entry
            slot, m = entry
            if type(value) is int:
                v = value & m
                x = 0
            elif isinstance(value, LogicValue):
                x = value.xmask & m
                v = value.value & m & ~x
            else:
                v = int(value) & m
                x = 0
            # Inlined _write: this runs for every input on every cycle.
            if val[slot] != v or xm[slot] != x:
                val[slot] = v
                xm[slot] = x
                rec_changed.add(slot)
                for nid in readers[slot]:
                    if not dirty[nid]:
                        dirty[nid] = True
                        heappush(heap, nid)
                # A stimulus write to a signal that also has combinational
                # drivers must re-run those drivers: in the interpreter's
                # fixed-point settle the driver always wins over the forced
                # value, and the compiled backend must agree.
                for nid in self._writer_nodes[slot]:
                    if not dirty[nid]:
                        dirty[nid] = True
                        heappush(heap, nid)

    def _step(self, inputs: Mapping[str, int]) -> None:
        pav = self._prev_async_v
        pax = self._prev_async_x
        val = self._val
        xm = self._xm
        for i, slot in enumerate(self._async_slots):
            pav[i] = val[slot]
            pax[i] = xm[slot]
        self._apply_inputs(inputs)
        self._settle()
        self._fire_async_edges()
        # A pre-edge change is sampled from its own cycle on; a post-edge
        # change is first sampled one cycle later (matching DiffTrace).
        pre_diff = self._record_diff(self._cycle)
        self._fire_clock_edge()
        self._settle()
        post_diff = self._record_diff(self._cycle + 1)
        self._trace.append_diffs(pre_diff, post_diff)
        self._cycle += 1

    def _fire_async_edges(self) -> None:
        triggered: list[_CompiledBlock] = []
        for block, triggers in self._async_triggers:
            for async_idx, edge in triggers:
                pv = self._prev_async_v[async_idx]
                px = self._prev_async_x[async_idx]
                slot = self._async_slots[async_idx]
                cv, cx = self._val[slot], self._xm[slot]
                if px or cx:
                    continue
                before = pv & 1
                after = cv & 1
                if edge == "negedge":
                    fired = before == 1 and after == 0
                else:
                    fired = before == 0 and after == 1
                if fired:
                    triggered.append(block)
                    break
        if triggered:
            self._run_blocks(triggered)
            self._settle()

    def _fire_clock_edge(self) -> None:
        toggle = self._clock_pulse_observable or self._val[self._clock_slot] != 0
        if toggle:
            self._write(self._clock_slot, 1, 0)
        self._run_blocks(self._posedge_blocks, self._posedge_pure)
        if self._negedge_blocks:
            # Negedge-clocked blocks fire "half a cycle later": settle, then run.
            self._settle()
            self._run_blocks(self._negedge_blocks, self._negedge_pure)
        if toggle:
            self._write(self._clock_slot, 0, 0)

    def _run_blocks(
        self, blocks: list[_CompiledBlock], pure: Optional[bool] = None
    ) -> None:
        """Execute blocks against the pre-edge state; commit NBAs together."""
        if not blocks:
            return
        write = self._write
        if pure is None:
            pure = all(block.pure_nba for block in blocks)
        if pure:
            # Fast path for idiomatic RTL (only non-blocking assignments):
            # nothing mutates the working environment and nothing is
            # committed until every block has run, so all blocks can read
            # the live arrays directly -- no copies at all.
            val = self._val
            xm = self._xm
            nonblocking: dict[int, tuple[int, int]] = {}
            empty: dict[int, tuple[int, int]] = {}
            for block in blocks:
                for fn in block.stmts:
                    fn(val, xm, empty, nonblocking)
            rec_changed = self._rec_changed
            dirty = self._dirty
            heap = self._heap
            readers = self._readers
            for slot, (v, x) in nonblocking.items():
                # Inlined _write: the register-commit loop runs every cycle.
                if val[slot] != v or xm[slot] != x:
                    val[slot] = v
                    xm[slot] = x
                    rec_changed.add(slot)
                    for nid in readers[slot]:
                        if not dirty[nid]:
                            dirty[nid] = True
                            heappush(heap, nid)
            return
        base_v = self._val.copy()
        base_x = self._xm.copy()
        nonblocking = {}
        for block in blocks:
            lv = base_v.copy()
            lx = base_x.copy()
            blocking: dict[int, tuple[int, int]] = {}
            nba: dict[int, tuple[int, int]] = {}
            for fn in block.stmts:
                fn(lv, lx, blocking, nba)
            for slot, (v, x) in blocking.items():
                write(slot, v, x)
            nonblocking.update(nba)
        for slot, (v, x) in nonblocking.items():
            write(slot, v, x)

    def _record_diff(self, event_cycle: int) -> dict[str, LogicValue]:
        diff: dict[str, LogicValue] = {}
        shadow_v = self._shadow_v
        shadow_x = self._shadow_x
        val = self._val
        xm = self._xm
        names = self._names
        widths = self._sig_width
        column_events = self._trace._column_events
        for slot in self._rec_changed:
            v = val[slot]
            x = xm[slot]
            if shadow_v[slot] != v or shadow_x[slot] != x:
                shadow_v[slot] = v
                shadow_x[slot] = x
                diff[names[slot]] = _fast_logic_value(v, x, widths[slot])
                if column_events is not None:
                    # Straight into the column buffers: flat ints, no
                    # LogicValue unpacking when columns() is consumed later.
                    column_events.setdefault(names[slot], []).append((event_cycle, v, x))
        self._rec_changed.clear()
        return diff
