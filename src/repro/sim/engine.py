"""The cycle-based simulation engine.

The engine drives an :class:`~repro.hdl.elaborate.ElaboratedDesign` one clock
cycle at a time:

1. new input values are applied and combinational logic settles,
2. asynchronous edges (e.g. ``negedge rst_n``) trigger their blocks,
3. the preponed (pre-clock-edge) values are sampled into the trace --
   these are the values concurrent assertions observe,
4. the active clock edge triggers every clocked block, non-blocking
   updates are committed simultaneously, and combinational logic settles
   again.

This two-phase scheme reproduces the scheduling behaviour that matters for
the designs and assertions in this project without a full event queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.hdl import ast
from repro.hdl.elaborate import ElaboratedDesign, ProceduralBlock
from repro.sim.evaluator import EvalError, Evaluator
from repro.sim.executor import ExecutionError, StatementExecutor
from repro.sim.trace import Trace, TraceSample
from repro.sim.values import LogicValue

_MAX_SETTLE_ITERATIONS = 64


class SimulationError(Exception):
    """Raised when the design cannot be simulated (e.g. combinational loop)."""


@dataclass
class SimulatorOptions:
    """Behavioural knobs for the simulator."""

    clock: Optional[str] = None  # name of the clock signal; autodetected if None
    x_initial_state: bool = False  # initialise registers to x instead of 0
    max_settle_iterations: int = _MAX_SETTLE_ITERATIONS
    backend: str = "auto"  # "auto" | "compiled" | "interp"
    #: Compiled backend only: stream per-signal column change events (flat
    #: ints) into the DiffTrace while simulating, so ``trace.columns()`` --
    #: what the vectorised SVA checker consumes -- never has to unpack
    #: LogicValue diffs.  The interpreter ignores this (its plain Trace
    #: builds columns from samples).
    record_columns: bool = False


def detect_clock(design: ElaboratedDesign) -> str:
    """Pick the design's clock: sequential/assertion clocks first, then by name."""
    candidates = design.clock_candidates()
    if candidates:
        return candidates[0]
    for preferred in ("clk", "clock", "clk_i"):
        if preferred in design.signals:
            return preferred
    # Purely combinational design: synthesise a virtual clock.
    return "__virtual_clock"


class InterpSimulator:
    """Tree-walking cycle-based simulator for one elaborated design.

    This is the reference backend: it re-evaluates the AST directly and is
    kept both as a fallback for constructs the compiled backend rejects and
    as the oracle for differential testing (`tests/test_backend_differential`).
    Use the :func:`Simulator` factory unless you need this backend
    specifically.
    """

    def __init__(self, design: ElaboratedDesign, options: Optional[SimulatorOptions] = None):
        self._design = design
        self._options = options or SimulatorOptions()
        self._clock = self._options.clock or self._detect_clock()
        self._env: dict[str, LogicValue] = {}
        self._previous_env: dict[str, LogicValue] = {}
        self._trace = Trace(signals=sorted(design.signals))
        self._cycle = 0
        self._initialise_state()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    @property
    def design(self) -> ElaboratedDesign:
        return self._design

    @property
    def clock(self) -> str:
        return self._clock

    @property
    def trace(self) -> Trace:
        return self._trace

    @property
    def cycle(self) -> int:
        return self._cycle

    def value(self, name: str) -> LogicValue:
        """Current (post-edge, settled) value of a signal."""
        try:
            return self._env[name]
        except KeyError as exc:
            raise SimulationError(f"unknown signal '{name}'") from exc

    def peek(self, name: str) -> Optional[int]:
        """Current value as an int, or ``None`` when unknown."""
        value = self.value(name)
        return None if value.has_unknown else value.to_int()

    def step(self, inputs: Optional[Mapping[str, int]] = None) -> TraceSample:
        """Simulate one full clock cycle with the given input values.

        Args:
            inputs: mapping of input-port names to integer values for this
                cycle.  Unspecified inputs keep their previous value.

        Returns:
            The :class:`TraceSample` recorded for this cycle.
        """
        self._previous_env = dict(self._env)
        self._apply_inputs(inputs or {})
        self._settle()
        self._fire_async_edges()
        pre_edge = dict(self._env)
        self._fire_clock_edge()
        self._settle()
        sample = TraceSample(cycle=self._cycle, pre_edge=pre_edge, post_edge=dict(self._env))
        self._trace.append(sample)
        self._cycle += 1
        return sample

    def run(self, stimulus: list[Mapping[str, int]]) -> Trace:
        """Run one :meth:`step` per entry of ``stimulus`` and return the trace."""
        for inputs in stimulus:
            self.step(inputs)
        return self._trace

    # ------------------------------------------------------------------ #
    # initialisation
    # ------------------------------------------------------------------ #

    def _detect_clock(self) -> str:
        return detect_clock(self._design)

    def _initialise_state(self) -> None:
        for signal in self._design.signals.values():
            if self._options.x_initial_state and not signal.is_input:
                self._env[signal.name] = LogicValue.unknown(signal.width)
            else:
                self._env[signal.name] = LogicValue.from_int(0, signal.width)
        if self._clock not in self._env:
            self._env[self._clock] = LogicValue.from_int(0, 1)
        for initial in self._design.initial_blocks:
            executor = StatementExecutor(self._design, self._env)
            try:
                result = executor.run(initial.body)
            except ExecutionError as exc:
                raise SimulationError(str(exc)) from exc
            self._env.update(result.nonblocking_updates)
        self._previous_env = dict(self._env)
        self._settle()

    # ------------------------------------------------------------------ #
    # simulation phases
    # ------------------------------------------------------------------ #

    def _apply_inputs(self, inputs: Mapping[str, int]) -> None:
        for name, value in inputs.items():
            signal = self._design.signals.get(name)
            if signal is None:
                raise SimulationError(f"unknown input signal '{name}'")
            if isinstance(value, LogicValue):
                self._env[name] = value.resized(signal.width)
            else:
                self._env[name] = LogicValue.from_int(int(value), signal.width)

    def _settle(self) -> None:
        """Iterate combinational logic to a fixed point."""
        for _ in range(self._options.max_settle_iterations):
            changed = False
            evaluator = Evaluator(self._env, self._design.parameters)
            for assign in self._design.continuous_assigns:
                try:
                    value = evaluator.evaluate(assign.value)
                except EvalError as exc:
                    raise SimulationError(f"line {assign.line}: {exc}") from exc
                changed |= self._write_continuous(assign.target, value)
            for block in self._design.comb_blocks:
                executor = StatementExecutor(self._design, dict(self._env))
                try:
                    result = executor.run(block.body)
                except ExecutionError as exc:
                    raise SimulationError(str(exc)) from exc
                updates = dict(result.blocking_updates)
                updates.update(result.nonblocking_updates)
                for name, value in updates.items():
                    signal = self._design.signals.get(name)
                    resized = value.resized(signal.width) if signal else value
                    if not self._env.get(name, resized).equals(resized):
                        changed = True
                    self._env[name] = resized
            if not changed:
                return
        raise SimulationError(
            "combinational logic did not settle (possible combinational loop)"
        )

    def _write_continuous(self, target: ast.Expression, value: LogicValue) -> bool:
        executor = StatementExecutor(self._design, self._env)
        updates = executor.expand_target(target, value)
        changed = False
        for name, new_value in updates:
            signal = self._design.signals.get(name)
            resized = new_value.resized(signal.width) if signal else new_value
            if not self._env.get(name, resized).equals(resized):
                changed = True
            self._env[name] = resized
        return changed

    def _fire_async_edges(self) -> None:
        """Run clocked blocks whose non-clock (async) edge just occurred."""
        triggered: list[ProceduralBlock] = []
        for block in self._design.seq_blocks:
            for item in block.clock_edges():
                if item.signal == self._clock:
                    continue
                if self._edge_occurred(item.signal, item.edge):
                    triggered.append(block)
                    break
        if triggered:
            self._run_blocks(triggered)
            self._settle()

    def _fire_clock_edge(self) -> None:
        """Run every block sensitive to the active edge of the clock."""
        self._env[self._clock] = LogicValue.from_int(1, 1)
        triggered = [
            block
            for block in self._design.seq_blocks
            if any(
                item.signal == self._clock and item.edge == "posedge"
                for item in block.clock_edges()
            )
        ]
        # Blocks clocked on negedge of the clock fire "half a cycle later";
        # for cycle-level behaviour we run them after the posedge blocks.
        negedge_blocks = [
            block
            for block in self._design.seq_blocks
            if any(
                item.signal == self._clock and item.edge == "negedge"
                for item in block.clock_edges()
            )
        ]
        self._run_blocks(triggered)
        if negedge_blocks:
            self._settle()
            self._run_blocks(negedge_blocks)
        self._env[self._clock] = LogicValue.from_int(0, 1)

    def _run_blocks(self, blocks: list[ProceduralBlock]) -> None:
        """Execute blocks against the pre-edge state; commit NBAs together."""
        nonblocking: dict[str, LogicValue] = {}
        base_env = dict(self._env)
        for block in blocks:
            executor = StatementExecutor(self._design, dict(base_env))
            try:
                result = executor.run(block.body)
            except ExecutionError as exc:
                raise SimulationError(str(exc)) from exc
            for name, value in result.blocking_updates.items():
                signal = self._design.signals.get(name)
                self._env[name] = value.resized(signal.width) if signal else value
            nonblocking.update(result.nonblocking_updates)
        for name, value in nonblocking.items():
            signal = self._design.signals.get(name)
            self._env[name] = value.resized(signal.width) if signal else value

    def _edge_occurred(self, signal: str, edge: str) -> bool:
        previous = self._previous_env.get(signal)
        current = self._env.get(signal)
        if previous is None or current is None:
            return False
        if previous.has_unknown or current.has_unknown:
            return False
        before = previous.to_int() & 1
        after = current.to_int() & 1
        if edge == "negedge":
            return before == 1 and after == 0
        return before == 0 and after == 1


def Simulator(
    design: ElaboratedDesign,
    options: Optional[SimulatorOptions] = None,
    compiled=None,
):
    """Build a simulator for ``design``, choosing the fastest usable backend.

    With ``options.backend == "auto"`` (the default) the design is lowered by
    the compiled backend (:mod:`repro.sim.compile`); constructs the compiler
    does not support fall back to the tree-walking :class:`InterpSimulator`.
    ``"compiled"`` and ``"interp"`` force one backend (``"compiled"`` raises
    :class:`SimulationError` when the design cannot be compiled).

    ``compiled`` is an optional pre-lowered
    :class:`~repro.sim.compile.CompiledDesign` for this design (e.g. from the
    compiled-artifact cache): the compiled backend instantiates from it
    instead of lowering again.  The ``"interp"`` backend ignores it.

    Both backends expose the same API (``step``/``run``/``trace``/``value``/
    ``peek``) and produce `equals()`-identical traces.
    """
    options = options or SimulatorOptions()
    backend = options.backend
    if backend not in ("auto", "compiled", "interp"):
        raise ValueError(
            f"unknown simulator backend '{backend}' (expected 'auto', 'compiled' or 'interp')"
        )
    if backend == "interp":
        return InterpSimulator(design, options=options)
    # Imported lazily: repro.sim.compile imports from this module.
    from repro.sim.compile import CompiledSimulator, CompileError

    try:
        return CompiledSimulator(design, options=options, compiled=compiled)
    except CompileError as exc:
        if backend == "compiled":
            raise SimulationError(f"design cannot be compiled: {exc}") from exc
        return InterpSimulator(design, options=options)


def simulate(
    design: ElaboratedDesign,
    stimulus: list[Mapping[str, int]],
    options: Optional[SimulatorOptions] = None,
) -> Trace:
    """Convenience wrapper: build a simulator, run ``stimulus``, return the trace."""
    simulator = Simulator(design, options=options)
    return simulator.run(stimulus)
