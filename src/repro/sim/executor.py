"""Procedural statement execution for the RTL simulator.

The executor runs the body of an ``always`` block against a working
environment.  Blocking assignments update the working environment
immediately; non-blocking assignments are collected and applied by the
simulation engine after every triggered block has run (standard Verilog
scheduling semantics for the subset we support).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hdl import ast
from repro.hdl.elaborate import ElaboratedDesign
from repro.sim.evaluator import EvalError, Evaluator
from repro.sim.values import LogicValue, merge_bits


class ExecutionError(Exception):
    """Raised when a procedural statement cannot be executed."""


@dataclass
class ExecutionResult:
    """Effects produced by executing one procedural block."""

    blocking_updates: dict[str, LogicValue] = field(default_factory=dict)
    nonblocking_updates: dict[str, LogicValue] = field(default_factory=dict)


class StatementExecutor:
    """Executes statements from one procedural block."""

    def __init__(self, design: ElaboratedDesign, environment: dict[str, LogicValue]):
        self._design = design
        self._env = environment
        self._result = ExecutionResult()

    def run(self, statement: ast.Statement) -> ExecutionResult:
        """Execute ``statement``; the working environment reflects blocking updates."""
        self._execute(statement)
        return self._result

    # ------------------------------------------------------------------ #
    # statement dispatch
    # ------------------------------------------------------------------ #

    def _evaluator(self) -> Evaluator:
        return Evaluator(self._env, self._design.parameters)

    def _execute(self, statement: ast.Statement) -> None:
        if isinstance(statement, ast.Block):
            for sub in statement.statements:
                self._execute(sub)
        elif isinstance(statement, ast.Assign):
            self._execute_assign(statement)
        elif isinstance(statement, ast.If):
            self._execute_if(statement)
        elif isinstance(statement, ast.Case):
            self._execute_case(statement)
        elif isinstance(statement, (ast.SystemTaskCall, ast.NullStatement)):
            return
        elif isinstance(statement, ast.For):
            raise ExecutionError(
                "for-loops must be unrolled at elaboration before simulation"
            )
        else:  # pragma: no cover - defensive
            raise ExecutionError(f"cannot execute statement {type(statement).__name__}")

    def _execute_assign(self, statement: ast.Assign) -> None:
        try:
            value = self._evaluator().evaluate(statement.value)
        except EvalError as exc:
            raise ExecutionError(f"line {statement.line}: {exc}") from exc
        for name, new_value in self.expand_target(statement.target, value):
            if statement.blocking:
                self._env[name] = new_value
                self._result.blocking_updates[name] = new_value
            else:
                self._result.nonblocking_updates[name] = new_value

    def expand_target(
        self, target: ast.Expression, value: LogicValue
    ) -> list[tuple[str, LogicValue]]:
        """Resolve an assignment target into (signal, full-width new value) pairs.

        Public because the simulation engine uses the same expansion for
        continuous assignments (``assign lhs = rhs``) as the executor uses
        for procedural assignments.
        """
        if isinstance(target, ast.Identifier):
            signal = self._design.signals.get(target.name)
            width = signal.width if signal is not None else value.width
            return [(target.name, value.resized(width))]
        if isinstance(target, ast.BitSelect):
            return self._expand_select(target.base, target.index, target.index, value)
        if isinstance(target, ast.PartSelect):
            return self._expand_select(target.base, target.msb, target.lsb, value)
        if isinstance(target, ast.Concat):
            return self._expand_concat(target, value)
        raise ExecutionError(f"unsupported assignment target {type(target).__name__}")

    def _expand_select(
        self,
        base: ast.Expression,
        msb_expr: ast.Expression,
        lsb_expr: ast.Expression,
        value: LogicValue,
    ) -> list[tuple[str, LogicValue]]:
        if not isinstance(base, ast.Identifier):
            raise ExecutionError("nested select targets are not supported")
        name = base.name
        evaluator = self._evaluator()
        msb = evaluator.evaluate(msb_expr)
        lsb = evaluator.evaluate(lsb_expr)
        current = self._current_value(name)
        if msb.has_unknown or lsb.has_unknown:
            return [(name, LogicValue.unknown(current.width))]
        merged = merge_bits(current, value, msb.to_int(), lsb.to_int())
        return [(name, merged)]

    def _expand_concat(
        self, target: ast.Concat, value: LogicValue
    ) -> list[tuple[str, LogicValue]]:
        updates: list[tuple[str, LogicValue]] = []
        remaining = value
        # Concatenation targets assign MSB-first; walk right-to-left pulling low bits.
        offset = 0
        for part in reversed(target.parts):
            if not isinstance(part, ast.Identifier):
                raise ExecutionError("concatenation targets must be simple identifiers")
            signal = self._design.signals.get(part.name)
            width = signal.width if signal is not None else 1
            piece = LogicValue(
                value=remaining.value >> offset,
                xmask=remaining.xmask >> offset,
                width=width,
            )
            updates.append((part.name, piece))
            offset += width
        return list(reversed(updates))

    def _current_value(self, name: str) -> LogicValue:
        if name in self._env:
            return self._env[name]
        signal = self._design.signals.get(name)
        width = signal.width if signal is not None else 1
        return LogicValue.unknown(width)

    def _execute_if(self, statement: ast.If) -> None:
        try:
            condition = self._evaluator().evaluate_bool(statement.condition)
        except EvalError as exc:
            raise ExecutionError(f"line {statement.line}: {exc}") from exc
        if condition is None:
            # Unknown condition: conservatively take neither branch (registers
            # keep their value), matching the spirit of x-pessimism without
            # poisoning the whole design state.
            return
        if condition:
            self._execute(statement.then_branch)
        elif statement.else_branch is not None:
            self._execute(statement.else_branch)

    def _execute_case(self, statement: ast.Case) -> None:
        evaluator = self._evaluator()
        try:
            subject = evaluator.evaluate(statement.subject)
        except EvalError as exc:
            raise ExecutionError(f"line {statement.line}: {exc}") from exc
        default_item: Optional[ast.CaseItem] = None
        for item in statement.items:
            if not item.labels:
                default_item = item
                continue
            for label in item.labels:
                label_value = evaluator.evaluate(label)
                if _case_label_matches(subject, label_value, statement.variant):
                    self._execute(item.body)
                    return
        if default_item is not None:
            self._execute(default_item.body)


def _case_label_matches(subject: LogicValue, label: LogicValue, variant: str) -> bool:
    """Case label comparison with casez/casex wildcard semantics."""
    width = max(subject.width, label.width)
    subject = subject.resized(width)
    label = label.resized(width)
    if variant == "case":
        if subject.has_unknown or label.has_unknown:
            return subject.xmask == label.xmask and subject.value == label.value
        return subject.to_int() == label.to_int()
    # casez: label x/z bits are wildcards; casex: subject unknowns are wildcards too.
    care_mask = ~label.xmask
    if variant == "casex":
        care_mask &= ~subject.xmask
    care_mask &= (1 << width) - 1
    return (subject.value & care_mask) == (label.value & care_mask)


def execute_block(
    design: ElaboratedDesign,
    environment: dict[str, LogicValue],
    body: ast.Statement,
) -> ExecutionResult:
    """Execute one procedural block body against ``environment``."""
    return StatementExecutor(design, environment).run(body)
