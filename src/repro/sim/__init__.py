"""Cycle-accurate RTL simulation substrate.

The simulator executes elaborated designs (:class:`repro.hdl.ElaboratedDesign`)
cycle by cycle with 4-state values, records sampled traces for the SVA checker,
and provides stimulus generation (reset protocol, random and directed vectors).
Together with :mod:`repro.sva` it plays the role of the simulation half of the
paper's EDA-tool validation loop.
"""

from repro.sim.values import LogicValue, X, ZERO, ONE
from repro.sim.evaluator import Evaluator, EvalError
from repro.sim.engine import (
    InterpSimulator,
    SimulationError,
    Simulator,
    SimulatorOptions,
    simulate,
)
from repro.sim.compile import CompiledSimulator, CompileError, compile_design
from repro.sim.stimulus import Stimulus, StimulusGenerator, reset_sequence
from repro.sim.trace import DiffTrace, Trace, TraceSample
from repro.sim.vcd import vcd_string, write_vcd

__all__ = [
    "LogicValue",
    "X",
    "ZERO",
    "ONE",
    "Evaluator",
    "EvalError",
    "Simulator",
    "SimulatorOptions",
    "InterpSimulator",
    "CompiledSimulator",
    "CompileError",
    "compile_design",
    "simulate",
    "SimulationError",
    "Stimulus",
    "StimulusGenerator",
    "reset_sequence",
    "Trace",
    "DiffTrace",
    "TraceSample",
    "vcd_string",
    "write_vcd",
]
