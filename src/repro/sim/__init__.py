"""Cycle-accurate RTL simulation substrate.

The simulator executes elaborated designs (:class:`repro.hdl.ElaboratedDesign`)
cycle by cycle with 4-state values, records sampled traces for the SVA checker,
and provides stimulus generation (reset protocol, random and directed vectors).
Together with :mod:`repro.sva` it plays the role of the simulation half of the
paper's EDA-tool validation loop.
"""

from repro.sim.values import LogicValue, X, ZERO, ONE
from repro.sim.evaluator import Evaluator, EvalError
from repro.sim.engine import Simulator, SimulationError
from repro.sim.stimulus import Stimulus, StimulusGenerator, reset_sequence
from repro.sim.trace import Trace, TraceSample
from repro.sim.vcd import write_vcd

__all__ = [
    "LogicValue",
    "X",
    "ZERO",
    "ONE",
    "Evaluator",
    "EvalError",
    "Simulator",
    "SimulationError",
    "Stimulus",
    "StimulusGenerator",
    "reset_sequence",
    "Trace",
    "TraceSample",
    "write_vcd",
]
