"""Data structures describing corpus entries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.hdl.source import count_code_lines


@dataclass(frozen=True)
class PortSpec:
    """Human-readable description of one port, used for spec generation."""

    name: str
    direction: str
    width: int
    purpose: str

    def render(self) -> str:
        width_text = "1 bit" if self.width == 1 else f"{self.width} bits"
        return f"- {self.name} ({self.direction}, {width_text}): {self.purpose}"


@dataclass
class DesignArtifact:
    """One golden design produced by a corpus template.

    Attributes:
        name: unique module name.
        family: template family identifier (e.g. ``"counter"``).
        source: golden Verilog source (no assertions embedded yet).
        description: one-sentence functional description.
        ports: port documentation used to build the specification.
        behaviour: bullet list of behavioural statements for the specification.
        template_svas: optional hand-written SVA blocks contributed by the
            template (each block is property + assert text, ready to indent).
        parameters: the template parameters that produced this instance.
    """

    name: str
    family: str
    source: str
    description: str
    ports: list[PortSpec] = field(default_factory=list)
    behaviour: list[str] = field(default_factory=list)
    template_svas: list[str] = field(default_factory=list)
    parameters: dict[str, int | str] = field(default_factory=dict)

    @property
    def code_lines(self) -> int:
        """Number of non-blank, non-comment source lines (Table II length bins)."""
        return count_code_lines(self.source)


#: A template is a callable producing an artifact from (instance name, params).
TemplateFunction = Callable[..., DesignArtifact]


@dataclass(frozen=True)
class DesignFamily:
    """A registered design family with its parameter sweep."""

    name: str
    build: TemplateFunction
    description: str
    parameter_grid: tuple[dict[str, int | str], ...]

    def variants(self) -> int:
        return len(self.parameter_grid)


def length_bin(code_lines: int) -> str:
    """Map a code-line count to the paper's Table II length-bin label."""
    if code_lines <= 50:
        return "(0, 50]"
    if code_lines <= 100:
        return "(50, 100]"
    if code_lines <= 150:
        return "(100, 150]"
    if code_lines <= 200:
        return "(150, 200]"
    return "(200, +inf)"


LENGTH_BINS: tuple[str, ...] = (
    "(0, 50]",
    "(50, 100]",
    "(100, 150]",
    "(150, 200]",
    "(200, +inf)",
)
