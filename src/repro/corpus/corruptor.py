"""Syntax-error injection for the Verilog-PT pretraining split.

Stage 1 of the paper's pipeline keeps corpus entries that *fail* compilation
and pairs them with an analysis of the failure; that pair (plus the spec)
forms the Verilog-PT dataset.  The corruptor manufactures such entries from
golden designs by introducing realistic syntax/semantic errors, and records
the ground-truth explanation that the pipeline turns into the "analysis"
text.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.hdl.source import SourceFile, strip_comment


@dataclass(frozen=True)
class CorruptedSample:
    """A deliberately broken source file plus the explanation of the damage."""

    source: str
    corruption_kind: str
    line: int
    explanation: str


class SyntaxCorruptor:
    """Injects compile errors into otherwise valid Verilog source."""

    #: corruption kinds, with weights roughly matching how common each class of
    #: syntax error is in scraped Verilog corpora.
    _KINDS = (
        ("drop_semicolon", 4),
        ("drop_endmodule", 2),
        ("unbalanced_begin", 3),
        ("misspell_keyword", 3),
        ("undeclared_signal", 4),
        ("truncate_tail", 2),
        ("garble_operator", 2),
    )

    def __init__(self, seed: int = 0):
        self._random = random.Random(seed)

    def corrupt(self, source: str) -> CorruptedSample:
        """Return a corrupted variant of ``source`` with its explanation."""
        kinds = [kind for kind, weight in self._KINDS for _ in range(weight)]
        self._random.shuffle(kinds)
        for kind in kinds:
            sample = self._apply(kind, source)
            if sample is not None:
                return sample
        # Fallback that always works: drop the closing endmodule.
        return self._drop_endmodule(source) or CorruptedSample(
            source=source + "\nmodule trailing_garbage(;\n",
            corruption_kind="trailing_garbage",
            line=len(source.split("\n")) + 1,
            explanation="a malformed trailing module header makes the file unparseable",
        )

    # ------------------------------------------------------------------ #
    # individual corruptions
    # ------------------------------------------------------------------ #

    def _apply(self, kind: str, source: str) -> Optional[CorruptedSample]:
        handlers = {
            "drop_semicolon": self._drop_semicolon,
            "drop_endmodule": self._drop_endmodule,
            "unbalanced_begin": self._unbalanced_begin,
            "misspell_keyword": self._misspell_keyword,
            "undeclared_signal": self._undeclared_signal,
            "truncate_tail": self._truncate_tail,
            "garble_operator": self._garble_operator,
        }
        return handlers[kind](source)

    def _candidate_lines(self, source: str, predicate) -> list[int]:
        file = SourceFile(source)
        return [
            number
            for number in file.code_line_numbers()
            if predicate(strip_comment(file.line(number)))
        ]

    def _drop_semicolon(self, source: str) -> Optional[CorruptedSample]:
        candidates = self._candidate_lines(source, lambda line: line.rstrip().endswith(";"))
        if not candidates:
            return None
        line_number = self._random.choice(candidates)
        file = SourceFile(source)
        original = file.line(line_number)
        index = original.rfind(";")
        new_line = original[:index] + original[index + 1 :]
        return CorruptedSample(
            source=file.with_line_replaced(line_number, new_line).text,
            corruption_kind="drop_semicolon",
            line=line_number,
            explanation=(
                f"the statement on line {line_number} is missing its terminating semicolon, "
                "so the parser cannot tell where the statement ends"
            ),
        )

    def _drop_endmodule(self, source: str) -> Optional[CorruptedSample]:
        if "endmodule" not in source:
            return None
        index = source.rfind("endmodule")
        line = source[:index].count("\n") + 1
        return CorruptedSample(
            source=source[:index] + source[index + len("endmodule") :],
            corruption_kind="drop_endmodule",
            line=line,
            explanation="the module is never closed: the final 'endmodule' keyword is missing",
        )

    def _unbalanced_begin(self, source: str) -> Optional[CorruptedSample]:
        candidates = self._candidate_lines(
            source, lambda line: line.strip() == "end" or line.strip().startswith("end ")
        )
        if not candidates:
            return None
        line_number = self._random.choice(candidates)
        file = SourceFile(source)
        original = file.line(line_number)
        new_line = original.replace("end", "", 1)
        return CorruptedSample(
            source=file.with_line_replaced(line_number, new_line).text,
            corruption_kind="unbalanced_begin",
            line=line_number,
            explanation=(
                f"a begin/end block is unbalanced: the 'end' expected around line {line_number} "
                "was removed, so a later keyword appears in an illegal position"
            ),
        )

    def _misspell_keyword(self, source: str) -> Optional[CorruptedSample]:
        misspellings = {
            "always": "alway",
            "assign": "asign",
            "posedge": "posege",
            "endmodule": "endmodul",
            "module": "modul",
            "output": "ouput",
        }
        keywords = [k for k in misspellings if k in source]
        if not keywords:
            return None
        keyword = self._random.choice(keywords)
        index = source.find(keyword)
        line = source[:index].count("\n") + 1
        corrupted = source[:index] + misspellings[keyword] + source[index + len(keyword) :]
        return CorruptedSample(
            source=corrupted,
            corruption_kind="misspell_keyword",
            line=line,
            explanation=(
                f"the keyword '{keyword}' on line {line} is misspelled as "
                f"'{misspellings[keyword]}', which the compiler reads as an unexpected identifier"
            ),
        )

    def _undeclared_signal(self, source: str) -> Optional[CorruptedSample]:
        candidates = self._candidate_lines(
            source, lambda line: "assign" in line and "=" in line
        )
        if not candidates:
            return None
        line_number = self._random.choice(candidates)
        file = SourceFile(source)
        original = file.line(line_number)
        new_line = original.replace("=", "= undeclared_net_xyz +", 1)
        return CorruptedSample(
            source=file.with_line_replaced(line_number, new_line).text,
            corruption_kind="undeclared_signal",
            line=line_number,
            explanation=(
                f"line {line_number} references the signal 'undeclared_net_xyz' "
                "which is never declared in the module"
            ),
        )

    def _truncate_tail(self, source: str) -> Optional[CorruptedSample]:
        lines = source.split("\n")
        if len(lines) < 10:
            return None
        cut = self._random.randint(len(lines) // 2, len(lines) - 3)
        return CorruptedSample(
            source="\n".join(lines[:cut]),
            corruption_kind="truncate_tail",
            line=cut,
            explanation=(
                f"the file is truncated after line {cut}; open blocks and the module "
                "itself are never closed"
            ),
        )

    def _garble_operator(self, source: str) -> Optional[CorruptedSample]:
        candidates = self._candidate_lines(source, lambda line: "<=" in line)
        if not candidates:
            return None
        line_number = self._random.choice(candidates)
        file = SourceFile(source)
        original = file.line(line_number)
        new_line = original.replace("<=", "<==", 1)
        return CorruptedSample(
            source=file.with_line_replaced(line_number, new_line).text,
            corruption_kind="garble_operator",
            line=line_number,
            explanation=(
                f"line {line_number} uses the malformed operator '<==' which is not "
                "a legal Verilog assignment or comparison operator"
            ),
        )
