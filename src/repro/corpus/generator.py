"""Corpus generation: sweep the design families into a pool of golden designs.

The generator plays the role of the scraped Hugging Face corpus: it produces
a configurable number of Verilog samples of varying families, parameters and
code lengths, plus (via :class:`~repro.corpus.corruptor.SyntaxCorruptor`)
a share of samples that deliberately fail compilation, which Stage 1 of the
pipeline routes into the Verilog-PT pretraining split.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.corpus.corruptor import CorruptedSample, SyntaxCorruptor
from repro.corpus.metadata import DesignArtifact, DesignFamily
from repro.corpus.spec import build_spec
from repro.corpus.templates import all_families, family_by_name
from repro.runtime import FaultPlan, run_jobs


@dataclass
class CorpusConfig:
    """Size and randomness knobs for corpus generation."""

    seed: int = 2025
    design_count: int = 120
    corrupted_fraction: float = 0.2
    jitter_widths: bool = True
    #: Worker-pool size for the per-design build fan-out; <= 1 runs in-process.
    workers: int = 1
    #: Failure policy for build jobs: "raise" aborts on the first failure
    #: (historical behaviour), "quarantine" drops the failed design into
    #: :attr:`Corpus.skipped` and keeps generating.
    on_error: str = "raise"
    #: Per-design build timeout in seconds (None: unlimited).
    job_timeout: Optional[float] = None
    #: Executions charged to a build job before it is quarantined/raised.
    max_attempts: int = 1

    def corrupted_count(self) -> int:
        return max(1, int(self.design_count * self.corrupted_fraction))


@dataclass
class CorpusSample:
    """One corpus entry: a golden design plus its synthesised specification."""

    artifact: DesignArtifact
    spec: str

    @property
    def name(self) -> str:
        return self.artifact.name

    @property
    def source(self) -> str:
        return self.artifact.source


@dataclass
class Corpus:
    """The generated pool: compilable samples and deliberately broken ones."""

    samples: list[CorpusSample] = field(default_factory=list)
    corrupted: list[tuple[CorpusSample, CorruptedSample]] = field(default_factory=list)
    #: Designs whose build job was quarantined (``on_error="quarantine"``):
    #: one record per lost design with the structured failure summary.
    skipped: list[dict] = field(default_factory=list)

    def by_family(self) -> dict[str, list[CorpusSample]]:
        grouped: dict[str, list[CorpusSample]] = {}
        for sample in self.samples:
            grouped.setdefault(sample.artifact.family, []).append(sample)
        return grouped


class CorpusGenerator:
    """Generates the synthetic Verilog corpus."""

    #: integer parameters that can safely be jittered to diversify instances.
    _JITTERABLE = {"width": (4, 16), "depth": (4, 16), "divide_by": (3, 12), "stretch": (3, 8)}

    #: extra replication weight for families that produce longer designs, so the
    #: corpus covers the upper code-length bins of Table II.
    _FAMILY_WEIGHTS = {
        "multichannel_accumulator": 4,
        "pipelined_adder": 3,
        "status_datapath": 4,
        "alu": 2,
        "register_file": 2,
    }

    def __init__(self, config: CorpusConfig | None = None, fault_plan: FaultPlan | None = None,
                 tracer=None):
        self._config = config or CorpusConfig()
        self._random = random.Random(self._config.seed)
        self._families = all_families()
        #: Deterministic fault injection for the build jobs (tests only).
        self._fault_plan = fault_plan
        #: Out-of-band telemetry; never part of the corpus.
        self._tracer = tracer

    @property
    def families(self) -> list[DesignFamily]:
        return self._families

    def generate(self) -> Corpus:
        """Generate the full corpus according to the configuration.

        Instance planning and seed drawing stay serial (they share the
        generator's RNG stream), then the per-design builds -- the actual
        cost -- fan out through :func:`repro.runtime.run_jobs`.  Every job
        carries its own spec seed, drawn up front in instance order, so the
        corpus is byte-identical for any worker count.
        """
        corpus = Corpus()
        instances = self._plan_instances(self._config.design_count)
        jobs = [
            (family.name, params, f"{family.name}_{index:04d}",
             self._random.randint(0, 1_000_000))
            for index, (family, params) in enumerate(instances)
        ]
        if self._config.on_error == "quarantine":
            outcomes = run_jobs(
                jobs,
                _build_sample_job,
                workers=self._config.workers,
                on_error="quarantine",
                timeout=self._config.job_timeout,
                max_attempts=self._config.max_attempts,
                fault_plan=self._fault_plan,
                tracer=self._tracer,
            )
            corpus.samples = [outcome.result for outcome in outcomes if outcome.ok]
            corpus.skipped = [
                {"stage": "corpus", "name": job[2], **outcome.failure.summary()}
                for job, outcome in zip(jobs, outcomes)
                if not outcome.ok
            ]
        else:
            corpus.samples = run_jobs(
                jobs,
                _build_sample_job,
                workers=self._config.workers,
                timeout=self._config.job_timeout,
                max_attempts=self._config.max_attempts,
                fault_plan=self._fault_plan,
                tracer=self._tracer,
            )
        corruptor = SyntaxCorruptor(seed=self._config.seed + 1)
        victims = self._random.sample(
            corpus.samples, min(self._config.corrupted_count(), len(corpus.samples))
        )
        for sample in victims:
            corrupted = corruptor.corrupt(sample.source)
            corpus.corrupted.append((sample, corrupted))
        return corpus

    # ------------------------------------------------------------------ #
    # instance planning
    # ------------------------------------------------------------------ #

    def _plan_instances(self, count: int) -> list[tuple[DesignFamily, dict]]:
        """Pick (family, parameters) pairs, cycling the grids and jittering widths."""
        base: list[tuple[DesignFamily, dict]] = []
        for family in self._families:
            weight = self._FAMILY_WEIGHTS.get(family.name, 1)
            for params in family.parameter_grid:
                for _ in range(weight):
                    base.append((family, dict(params)))
        self._random.shuffle(base)
        instances: list[tuple[DesignFamily, dict]] = []
        cursor = 0
        while len(instances) < count:
            family, params = base[cursor % len(base)]
            params = dict(params)
            if cursor >= len(base) and self._config.jitter_widths:
                params = self._jitter(params)
            instances.append((family, params))
            cursor += 1
        return instances[:count]

    def _jitter(self, params: dict) -> dict:
        jittered = dict(params)
        for key, (low, high) in self._JITTERABLE.items():
            if key in jittered and isinstance(jittered[key], int):
                delta = self._random.choice((-2, -1, 1, 2))
                jittered[key] = max(low, min(high, jittered[key] + delta))
        return jittered


def _build_sample_job(job: tuple[str, dict, str, int]) -> CorpusSample:
    """Worker function: build one design and its spec (module-level so it
    pickles; the family is rebuilt from its registry name in the worker)."""
    family_name, params, name, spec_seed = job
    artifact = family_by_name(family_name).build(name, **params)
    return CorpusSample(artifact=artifact, spec=build_spec(artifact, seed=spec_seed))


def generate_corpus(config: CorpusConfig | None = None) -> Corpus:
    """Convenience wrapper: build a generator and run it."""
    return CorpusGenerator(config).generate()
