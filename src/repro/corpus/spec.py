"""Natural-language specification synthesis.

The paper uses GPT-4 to write a design specification for every corpus entry.
Here specifications are synthesised deterministically (but with seeded
phrasing variation) from the template metadata: the module's purpose, its
port list, parameter values, and a bullet list of behavioural statements.
The resulting text plays exactly the same role in the datasets: it is the
"Spec" field the repair model and the baselines read to understand design
intent.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.corpus.metadata import DesignArtifact

_INTRO_TEMPLATES = (
    "The module '{name}' implements {description}",
    "'{name}' is a synthesisable RTL module that implements {description}",
    "This design, named '{name}', realises {description}",
    "Module '{name}': {description}",
)

_PORT_HEADERS = (
    "Ports:",
    "Interface:",
    "Port list:",
)

_BEHAVIOUR_HEADERS = (
    "Function:",
    "Expected behaviour:",
    "Functional requirements:",
)

_RESET_SENTENCES = (
    "All state elements are cleared when the active-low reset rst_n is asserted.",
    "The asynchronous active-low reset rst_n returns every register to its reset value.",
    "Asserting rst_n low resets the internal state.",
)


def build_spec(artifact: DesignArtifact, seed: Optional[int] = None) -> str:
    """Build the specification text for one design artifact.

    Args:
        artifact: the design to describe.
        seed: seed controlling phrasing variation; ``None`` uses the module
            name so the same design always gets the same spec.
    """
    rng = random.Random(seed if seed is not None else hash(artifact.name) & 0xFFFF)
    sections: list[str] = []

    intro = rng.choice(_INTRO_TEMPLATES).format(
        name=artifact.name, description=artifact.description.rstrip(".") + "."
    )
    sections.append(intro)

    if artifact.parameters:
        rendered = ", ".join(f"{key} = {value}" for key, value in sorted(artifact.parameters.items()))
        sections.append(f"Parameters: {rendered}.")

    if artifact.ports:
        port_lines = [rng.choice(_PORT_HEADERS)]
        port_lines.extend(port.render() for port in artifact.ports)
        sections.append("\n".join(port_lines))

    if artifact.behaviour:
        behaviour_lines = [rng.choice(_BEHAVIOUR_HEADERS)]
        behaviour_lines.extend(f"- {sentence}" for sentence in artifact.behaviour)
        sections.append("\n".join(behaviour_lines))

    if any(port.name in ("rst_n", "resetn", "rst") for port in artifact.ports):
        sections.append(rng.choice(_RESET_SENTENCES))

    return "\n\n".join(sections)


def spec_keywords(spec: str) -> set[str]:
    """Lower-cased identifier-like tokens of a specification.

    Used by the repair model's spec-alignment features: overlap between the
    tokens of a candidate fix and the specification text is a (weak) signal
    that the fix matches the stated intent.
    """
    tokens: set[str] = set()
    word = []
    for ch in spec:
        if ch.isalnum() or ch == "_":
            word.append(ch.lower())
        else:
            if word:
                tokens.add("".join(word))
                word = []
    if word:
        tokens.add("".join(word))
    return {t for t in tokens if len(t) > 1 and not t.isdigit()}
